//! E4 — a scripted parallel-debugging session, reproducing the workflow of
//! the paper's IDE (Fig. IV / §III): multiple "code views", one per
//! thread, stepped independently, with variable inspection and a thread
//! timeline at the end.
//!
//! ```sh
//! cargo run --example debugger_session
//! ```

use std::time::Duration;
use tetra::{debugger::Debugger, BufferConsole, InterpConfig, Tetra};

const PROGRAM: &str = "\
def count(out [int], slot int, n int):
    i = 0
    while i < n:
        i += 1
        out[slot] = i

def main():
    out = [0, 0]
    parallel:
        count(out, 0, 4)
        count(out, 1, 4)
    print(out)
";

fn main() {
    println!("source under debug:\n{PROGRAM}");
    let program = Tetra::compile(PROGRAM).expect("compiles");
    let dbg = Debugger::new(true); // start paused, like an IDE debug session
    let console = BufferConsole::new();
    let interp = program.debug(
        InterpConfig { worker_threads: 2, ..InterpConfig::default() },
        console.clone(),
        dbg.clone(),
    );
    let runner = std::thread::spawn(move || interp.run());
    let wait = Duration::from_secs(20);

    // Main pauses at its first statement. Step it until the parallel block
    // has spawned the two children.
    assert!(dbg.wait_until(wait, |p| !p.is_empty()));
    let main_id = dbg.paused()[0].thread;
    println!("thread {main_id} (main) paused at line {}", dbg.paused()[0].line);
    for _ in 0..6 {
        dbg.step(main_id);
        if dbg.wait_until(Duration::from_millis(300), |p| {
            p.iter().filter(|t| t.thread != main_id).count() == 2
        }) {
            break;
        }
    }
    dbg.wait_until(wait, |p| p.iter().filter(|t| t.thread != main_id).count() == 2);
    let children: Vec<u32> =
        dbg.paused().iter().map(|p| p.thread).filter(|t| *t != main_id).collect();
    println!("\nparallel block spawned threads {children:?}; both paused:");
    for p in dbg.paused() {
        if p.thread != main_id {
            println!("  [thread {} view] before line {}", p.thread, p.line);
        }
    }

    // Step ONLY the first child a few statements — the second stays frozen.
    let (walked, frozen) = (children[0], children[1]);
    println!("\nstepping thread {walked} while thread {frozen} stays frozen:");
    for step in 1..=5 {
        dbg.step(walked);
        dbg.wait_until(wait, |p| p.iter().any(|t| t.thread == walked));
        if let Some(p) = dbg.paused().iter().find(|p| p.thread == walked) {
            let vars: Vec<String> = p.locals.iter().map(|(n, v)| format!("{n}={v}")).collect();
            println!("  step {step}: thread {walked} before line {} ({})", p.line, vars.join(", "));
        }
    }
    if let Some(p) = dbg.paused().iter().find(|p| p.thread == frozen) {
        println!("  thread {frozen} is still before line {} — untouched", p.line);
    }

    // Let everything finish and show the recorded timeline.
    dbg.resume_all();
    runner.join().unwrap().expect("program finishes");
    println!("\nprogram output: {}", console.output().trim_end());
}
