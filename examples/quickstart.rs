//! Quickstart: compile and run a Tetra program from Rust.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tetra::Tetra;

fn main() {
    // Tetra source: Python-ish syntax, static types with local inference,
    // and parallelism as a first-class statement.
    let source = r#"
def fib(n int) int:
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

def main():
    # Compute four Fibonacci numbers in four threads.
    results = fill(4, 0)
    parallel:
        results[0] = fib(18)
        results[1] = fib(19)
        results[2] = fib(20)
        results[3] = fib(21)
    print("fib(18..21) = ", results)

    # A parallel-for with a lock-protected accumulator.
    total = 0
    parallel for r in results:
        lock t:
            total += r
    print("sum = ", total)
"#;

    // 1. Compile: parse + type-check. Errors render with source carets.
    let program = match Tetra::compile(source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}", e.render());
            std::process::exit(1);
        }
    };

    // 2. Run on the real-thread interpreter, capturing output.
    let (output, stats) = program.run_captured(&[]).expect("program runs");
    print!("{output}");
    println!(
        "[interpreter: {} threads spawned, {} GC allocations, {} collections]",
        stats.threads_spawned, stats.gc.allocations, stats.gc.collections
    );

    // 3. The same program runs on the deterministic bytecode VM, which
    //    reports *virtual time* — reproducible speedup on any machine.
    let console = tetra::BufferConsole::new();
    let sim = program.simulate(console.clone()).expect("sim runs");
    print!("{}", console.output());
    println!(
        "[vm: {} instructions, {} virtual time units, {} threads]",
        sim.instructions, sim.virtual_elapsed, sim.threads
    );
}
