//! Demonstrates the pedagogy tooling: the Eraser-style race detector
//! catches the unlocked counter, the wait-for-graph detector reports the
//! classic two-lock deadlock (instead of hanging the terminal), and the
//! locked variant runs clean.
//!
//! ```sh
//! cargo run --example race_and_deadlock
//! ```

use tetra::{debugger::Debugger, programs, BufferConsole, InterpConfig, Tetra};

fn trace(title: &str, src: &str) {
    println!("=== {title} ===");
    let program = Tetra::compile(src).expect("compiles");
    let dbg = Debugger::tracer();
    let console = BufferConsole::new();
    let interp = program.debug(
        InterpConfig { worker_threads: 4, ..InterpConfig::default() },
        console.clone(),
        dbg.clone(),
    );
    let result = interp.run();
    print!("{}", console.output());
    match result {
        Ok(_) => {}
        Err(e) => println!("runtime error: {e}"),
    }
    let races = dbg.races();
    if races.is_empty() {
        println!("race detector: clean");
    } else {
        for r in races {
            println!("race detector: {}", r.message);
        }
    }
    println!();
}

fn main() {
    // 1. The racy counter: increments with no lock. The final count is
    //    often wrong AND the detector explains why.
    trace("racy counter (no lock)", &programs::racy_counter(200));

    // 2. The fixed counter: same program with `lock c:` — exact result,
    //    detector quiet.
    trace("locked counter", &programs::locked_counter(200));

    // 3. The deadlock: two threads take locks `a` and `b` in opposite
    //    orders. Tetra reports the wait-for cycle instead of freezing.
    trace("two-lock deadlock", programs::DEADLOCK);

    println!("done — compare the three reports above");
}
