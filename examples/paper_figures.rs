//! Runs the three code figures of the paper (§II) exactly as printed:
//! Fig. I (sequential factorial), Fig. II (parallel sum in two threads),
//! Fig. III (parallel max with a double-checked lock) — each under both
//! execution engines.
//!
//! ```sh
//! cargo run --example paper_figures
//! ```

use tetra::{programs, Tetra};

fn main() {
    let figures: [(&str, &str, &[&str]); 3] = [
        ("Figure I — sequential factorial", programs::FIG1_FACTORIAL, &["10"]),
        ("Figure II — parallel sum of [1 ... 100]", programs::FIG2_PARALLEL_SUM, &[]),
        ("Figure III — parallel max with lock", programs::FIG3_PARALLEL_MAX, &[]),
    ];
    for (title, src, input) in figures {
        println!("=== {title} ===");
        let program = Tetra::compile(src).expect("paper figures compile");
        // run_both executes the tree-walking interpreter AND the bytecode
        // VM, asserting identical output.
        match program.run_both(input) {
            Ok(output) => print!("{output}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        println!();
    }
    println!("(both engines produced identical output for every figure)");
}
