//! E5/E6/E8 — regenerate the paper's §IV evaluation tables in virtual
//! time: the primes and TSP workloads at T ∈ {1, 2, 4, 8}, plus the GIL
//! ablation that motivates the language (§I).
//!
//! ```sh
//! cargo run --release --example speedup_study
//! ```
//!
//! The paper reports ≈5× speedup at 8 cores (62.5 % efficiency) for both
//! workloads; the virtual-time model reproduces that shape deterministically
//! (see DESIGN.md §2 for the testbed substitution).

use tetra::experiments::{render_table, simulated_speedup, simulated_speedup_with};
use tetra::programs;
use tetra::vm::CostModel;

fn main() {
    let threads = [1usize, 2, 4, 8];

    let primes = programs::primes(20_000, 64);
    let rows = simulated_speedup(&primes, &threads).expect("primes sweep");
    print!(
        "{}",
        render_table("E5 — primes workload (paper: ~5x at 8 cores, 62.5% efficiency)", &rows)
    );
    println!();

    let tsp = programs::tsp(9);
    let rows = simulated_speedup(&tsp, &threads).expect("tsp sweep");
    print!("{}", render_table("E6 — travelling salesman workload (paper: ~5x at 8 cores)", &rows));
    println!();

    let gil = simulated_speedup_with(
        &programs::primes(5_000, 64),
        &threads,
        CostModel { gil: true, ..CostModel::default() },
    )
    .expect("gil sweep");
    print!(
        "{}",
        render_table("E8 — the same primes workload under a simulated GIL (paper §I)", &gil)
    );
    println!("\n(the GIL rows stay at ~1x: 'only one thread can actually run at a time')");
}
