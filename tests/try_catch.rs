//! The `try:` / `catch err:` error-handling extension (paper §VI future
//! work), tested across the whole stack and both engines.

use tetra::runtime::ErrorKind;
use tetra::{BufferConsole, Tetra};

fn run_both(src: &str) -> String {
    Tetra::compile(src)
        .unwrap_or_else(|e| panic!("compile:\n{}", e.render()))
        .run_both(&[])
        .unwrap_or_else(|e| panic!("{e}\n--- source ---\n{src}"))
}

#[test]
fn catches_divide_by_zero() {
    let src = "\
def main():
    x = 0
    try:
        y = 10 / x
        print(\"not reached\")
    catch err:
        print(\"caught: \", err)
    print(\"after\")
";
    let out = run_both(src);
    assert!(out.contains("caught: 10 / 0"), "{out}");
    assert!(out.contains("after"), "{out}");
    assert!(!out.contains("not reached"), "{out}");
}

#[test]
fn catches_index_key_and_conversion_errors() {
    let src = "\
def attempt(which int) string:
    try:
        if which == 0:
            a = [1]
            print(a[9])
        elif which == 1:
            d = {1: 1}
            print(d[2])
        else:
            n = int(\"nope\")
            print(n)
        return \"no error\"
    catch err:
        return err

def main():
    print(attempt(0))
    print(attempt(1))
    print(attempt(2))
";
    let out = run_both(src);
    assert!(out.contains("out of bounds"), "{out}");
    assert!(out.contains("not found"), "{out}");
    assert!(out.contains("cannot parse"), "{out}");
}

#[test]
fn catches_failed_assert_with_message() {
    let src = "\
def main():
    try:
        assert 1 > 2, \"one is not greater\"
    catch err:
        print(err)
";
    assert_eq!(run_both(src), "one is not greater\n");
}

#[test]
fn uncaught_errors_still_propagate() {
    let src = "\
def main():
    try:
        x = 1 / 0
    catch err:
        y = [1][5]
";
    let p = Tetra::compile(src).unwrap();
    let e = p.run_captured(&[]).unwrap_err();
    assert_eq!(e.kind, ErrorKind::IndexOutOfBounds, "handler errors are not self-caught");
    let e = p.simulate(BufferConsole::new()).unwrap_err();
    assert_eq!(e.kind, ErrorKind::IndexOutOfBounds);
}

#[test]
fn nested_try_unwinds_to_innermost() {
    let src = "\
def main():
    try:
        try:
            x = 1 / 0
        catch inner:
            print(\"inner: \", inner)
            y = [1][7]
    catch outer:
        print(\"outer: \", outer)
";
    let out = run_both(src);
    assert!(out.contains("inner: 1 / 0"), "{out}");
    assert!(out.contains("outer: index 7"), "{out}");
}

#[test]
fn catches_errors_from_called_functions() {
    let src = "\
def deep(n int) int:
    if n == 0:
        return 1 / 0
    return deep(n - 1)

def main():
    try:
        print(deep(5))
    catch err:
        print(\"caught from depth: \", err)
";
    let out = run_both(src);
    assert!(out.contains("caught from depth"), "{out}");
}

#[test]
fn catches_child_thread_error_at_the_join() {
    let src = "\
def main():
    try:
        parallel:
            print(1 / 0)
            print(\"sibling\")
    catch err:
        print(\"joined error: \", err)
    print(\"continues\")
";
    let out = run_both(src);
    assert!(out.contains("joined error: "), "{out}");
    assert!(out.contains("continues"), "{out}");
}

#[test]
fn catches_parallel_for_worker_error() {
    // Which failing worker's error reaches the catch is a scheduling
    // choice (the first error cancels the rest, and the work-stealing
    // pool's item-to-worker assignment is not static), so every worker
    // must fail with the *same* message for the output to be portable.
    let src = "\
def main():
    a = [1, 2, 3]
    try:
        parallel for i in [0 ... 9]:
            x = a[5]
    catch err:
        print(\"worker failed: \", err)
";
    let out = run_both(src);
    assert!(out.contains("worker failed: index 5 out of bounds"), "{out}");
}

#[test]
fn locks_are_released_when_unwinding() {
    // The error escapes a lock block inside the try; afterwards the same
    // lock must be acquirable again.
    let src = "\
def main():
    try:
        lock m:
            x = 1 / 0
    catch err:
        print(\"caught\")
    lock m:
        print(\"reacquired\")
";
    let out = run_both(src);
    assert_eq!(out, "caught\nreacquired\n");
}

#[test]
fn deadlock_is_catchable() {
    let src = "\
def left():
    lock a:
        sleep(20)
        lock b:
            pass

def right():
    lock b:
        sleep(20)
        lock a:
            pass

def main():
    try:
        parallel:
            left()
            right()
    catch err:
        print(\"recovered from: deadlock\")
    print(\"program continues\")
";
    // Both engines must catch it (the interpreter detects at acquire; the
    // VM detects when nothing is runnable).
    let p = Tetra::compile(src).unwrap();
    let (out, _) = p.run_captured(&[]).unwrap();
    assert!(out.contains("recovered from: deadlock"), "interp: {out}");
    assert!(out.contains("program continues"), "interp: {out}");
    let console = BufferConsole::new();
    p.simulate(console.clone()).unwrap();
    let out = console.output();
    assert!(out.contains("recovered from: deadlock"), "vm: {out}");
}

#[test]
fn break_out_of_try_inside_loop_is_sound() {
    // `break` jumps out of the try body structurally; a later error in the
    // same function must NOT land in the stale handler.
    let src = "\
def main():
    i = 0
    while i < 3:
        try:
            i += 1
            if i == 2:
                break
        catch err:
            print(\"stale handler: \", err)
    print(\"i = \", i)
    x = 0
    y = 10 / x
";
    let p = Tetra::compile(src).unwrap();
    let e1 = p.run_captured(&[]).unwrap_err();
    assert_eq!(e1.kind, ErrorKind::DivideByZero, "interp must not catch via stale handler");
    let console = BufferConsole::new();
    let e2 = p.simulate(console.clone()).unwrap_err();
    assert_eq!(e2.kind, ErrorKind::DivideByZero, "vm must not catch via stale handler");
    assert!(console.output().contains("i = 2"), "{}", console.output());
}

#[test]
fn return_inside_try_is_sound() {
    let src = "\
def f() int:
    try:
        return 42
    catch err:
        return -1

def main():
    print(f())
    x = 0
    try:
        y = 1 / x
    catch err:
        print(\"second try still works\")
";
    let out = run_both(src);
    assert!(out.contains("42"), "{out}");
    assert!(out.contains("second try still works"), "{out}");
}

#[test]
fn catch_variable_is_a_string() {
    let src = "\
def main():
    try:
        x = 1 / 0
    catch err:
        print(upper(err), \" / \", len(err) > 0)
";
    let out = run_both(src);
    assert!(out.contains("1 / 0"), "{out}");
    assert!(out.contains("true"), "{out}");
}

#[test]
fn type_errors_for_try() {
    // Catch variable conflicts with an existing non-string variable.
    let err = Tetra::compile(
        "def main():\n    e = 5\n    try:\n        pass\n    catch e:\n        pass\n",
    )
    .unwrap_err();
    assert!(err.to_string().contains("already has type int"), "{err}");
    // try without catch.
    let err = Tetra::compile("def main():\n    try:\n        pass\n    print(1)\n").unwrap_err();
    assert!(err.to_string().contains("catch"), "{err}");
    // catch alone.
    let err = Tetra::compile("def main():\n    catch e:\n        pass\n").unwrap_err();
    assert!(err.to_string().contains("without a preceding"), "{err}");
}

#[test]
fn try_returns_count_for_definite_return() {
    // Both arms return → function definitely returns.
    assert!(Tetra::compile(
        "def f() int:\n    try:\n        return 1\n    catch e:\n        return 2\ndef main():\n    f()\n"
    )
    .is_ok());
    // Handler missing a return → not definite.
    let err = Tetra::compile(
        "def f() int:\n    try:\n        return 1\n    catch e:\n        pass\ndef main():\n    f()\n",
    )
    .unwrap_err();
    assert!(err.to_string().contains("without returning"), "{err}");
}

#[test]
fn try_pretty_prints_and_round_trips() {
    let src = "\
def main():
    try:
        x = 1 / 0
    catch err:
        print(err)
";
    let parsed = tetra::parser::parse(src).unwrap();
    let printed = tetra::ast::pretty::to_source(&parsed);
    assert!(printed.contains("try:"), "{printed}");
    assert!(printed.contains("catch err:"), "{printed}");
    let reparsed = tetra::parser::parse(&printed).unwrap();
    assert_eq!(printed, tetra::ast::pretty::to_source(&reparsed));
}

#[test]
fn retry_loop_pattern_works() {
    // The classic teaching use: retry until input parses.
    let src = "\
def main():
    attempts = [\"abc\", \"-\", \"17\"]
    value = 0
    for raw in attempts:
        try:
            value = int(raw)
        catch err:
            print(\"bad input: \", raw)
    print(\"value = \", value)
";
    let out = run_both(src);
    assert_eq!(out, "bad input: abc\nbad input: -\nvalue = 17\n");
}
