//! E5–E8 shape tests: quick versions of the benchmark harness asserting
//! the *qualitative* results the paper reports (who wins, by roughly what
//! factor) — the full tables come from `cargo bench` / EXPERIMENTS.md.

use tetra::experiments::{simulated_speedup, simulated_speedup_with};
use tetra::vm::CostModel;
use tetra::{programs, BufferConsole, Tetra};

#[test]
fn e5_primes_speedup_shape() {
    // Paper §IV: "approximately 5X speedup when run on 8 cores which is a
    // 62.5% efficiency rate".
    let rows = simulated_speedup(&programs::primes(3_000, 64), &[1, 2, 4, 8]).unwrap();
    assert!(rows[1].speedup > 1.5, "T=2 must beat sequential: {rows:?}");
    assert!(rows[2].speedup > rows[1].speedup, "T=4 > T=2: {rows:?}");
    assert!(rows[3].speedup > rows[2].speedup, "T=8 > T=4: {rows:?}");
    assert!(
        (3.8..6.5).contains(&rows[3].speedup),
        "T=8 speedup should be near the paper's ~5x: {rows:?}"
    );
    assert!((0.45..0.85).contains(&rows[3].efficiency), "efficiency near 62.5%: {rows:?}");
}

#[test]
fn e6_tsp_speedup_shape() {
    let rows = simulated_speedup(&programs::tsp(8), &[1, 2, 4, 7]).unwrap();
    assert!(rows[1].speedup > 1.4, "{rows:?}");
    assert!(rows[3].speedup > rows[1].speedup, "{rows:?}");
    assert!(rows[3].speedup > 2.5, "TSP should parallelize well: {rows:?}");
}

#[test]
fn e7_lock_contention_costs_show_up() {
    // The fully-contended counter (every iteration locks the same name)
    // cannot scale like the embarrassingly parallel primes workload.
    let contended = simulated_speedup(&programs::locked_counter(600), &[1, 8]).unwrap();
    let parallel = simulated_speedup(&programs::primes(1_500, 64), &[1, 8]).unwrap();
    assert!(
        parallel[1].speedup > contended[1].speedup + 0.5,
        "primes {parallel:?} must out-scale the contended counter {contended:?}"
    );
}

#[test]
fn e7_vm_uses_fewer_dispatch_steps_than_interp_statements() {
    // The "native compiler" story (paper §VI): compiled code does less
    // work per statement. We compare instruction-level effort indirectly:
    // the VM's sim must complete in bounded instructions, while output
    // matches the interpreter exactly.
    let src = programs::primes(400, 4);
    let p = Tetra::compile(&src).unwrap();
    let out = p.run_both(&[]).unwrap();
    assert!(out.starts_with("primes below"), "{out}");
}

#[test]
fn e8_gil_flat_vs_tetra_rising() {
    let src = programs::primes(1_200, 32);
    let tetra_rows = simulated_speedup(&src, &[1, 8]).unwrap();
    let gil_rows =
        simulated_speedup_with(&src, &[1, 8], CostModel { gil: true, ..CostModel::default() })
            .unwrap();
    assert!(tetra_rows[1].speedup > 3.0, "Tetra at T=8 must show real speedup: {tetra_rows:?}");
    assert!(gil_rows[1].speedup < 1.3, "the GIL must pin speedup near 1x: {gil_rows:?}");
}

#[test]
fn primes_count_is_correct_at_benchmark_scale() {
    // π(20000) = 2262 — the harness must compute real primes, not noise.
    let p = Tetra::compile(&programs::primes(20_000, 16)).unwrap();
    let console = BufferConsole::new();
    p.simulate(console.clone()).unwrap();
    assert_eq!(console.output(), "primes below 20000: 2262\n");
}

#[test]
fn tsp_result_is_stable_across_thread_counts() {
    // Parallel decomposition must not change the optimum.
    let src = programs::tsp(7);
    let p = Tetra::compile(&src).unwrap();
    let mut answers = Vec::new();
    for workers in [1usize, 2, 6] {
        let console = BufferConsole::new();
        let cfg = tetra::VmConfig { workers, ..Default::default() };
        p.simulate_with(cfg, console.clone()).unwrap();
        answers.push(console.output());
    }
    assert!(answers.windows(2).all(|w| w[0] == w[1]), "{answers:?}");
    assert!(answers[0].starts_with("best tour: "), "{answers:?}");
}

#[test]
fn speedup_tables_render_for_the_docs() {
    let rows = simulated_speedup(&programs::primes(1_000, 16), &[1, 2]).unwrap();
    let table = tetra::experiments::render_table("smoke", &rows);
    assert!(table.contains("speedup"), "{table}");
    assert!(table.lines().count() >= 4, "{table}");
}
