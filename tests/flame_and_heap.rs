//! Flame-profiler and heap-profiler integration tests.
//!
//! Observability sessions are process-global, so every test here takes
//! `SESSION_GUARD` before beginning one (the harness runs tests on
//! parallel threads by default).

use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard};
use tetra::{BufferConsole, InterpConfig, Tetra, VmConfig};

static SESSION_GUARD: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    SESSION_GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn compile(src: &str) -> Tetra {
    Tetra::compile(src).unwrap_or_else(|e| panic!("compile:\n{}", e.render()))
}

/// Nested calls plus a parallel for, so call paths have real depth and
/// spawned workers must inherit the spawning path.
const CALLS_SRC: &str = "\
def leaf(i int) int:
    return i * i

def mid(n int) int:
    s = 0
    i = 0
    while i < n:
        s += leaf(i)
        i += 1
    return s

def main():
    total = 0
    parallel for i in [1 ... 4]:
        lock t:
            total += mid(10)
    print(total)
";

fn interp_trace(src: &str) -> tetra::obs::session::Trace {
    let program = compile(src);
    tetra::obs::session::begin(tetra::obs::session::Config::default());
    let result = program.run_with(InterpConfig::default(), BufferConsole::with_input(&[]));
    let trace = tetra::obs::session::end();
    result.expect("interp run failed");
    trace
}

fn vm_trace(src: &str) -> tetra::obs::session::Trace {
    let program = compile(src);
    tetra::obs::session::begin(tetra::obs::session::Config::default());
    let result = program.simulate_with(VmConfig::default(), BufferConsole::with_input(&[]));
    let trace = tetra::obs::session::end();
    result.expect("vm run failed");
    trace
}

#[test]
fn folded_totals_match_line_self_time() {
    let _guard = exclusive();
    let trace = interp_trace(CALLS_SRC);
    let folded = tetra::obs::flame::folded(&trace);
    assert!(!folded.is_empty(), "no flame samples collected");
    // Every nanosecond of statement self-time lands in exactly one folded
    // stack: the two views are different aggregations of the same samples.
    let folded_total: u64 = folded.values().sum();
    let line_total: u64 =
        tetra::obs::profile::line_stats(&trace).values().map(|(_count, self_ns)| self_ns).sum();
    assert_eq!(folded_total, line_total, "folded stacks and line stats must sum identically");
}

#[test]
fn interp_and_vm_produce_the_same_call_paths() {
    let _guard = exclusive();
    let interp: BTreeSet<String> =
        tetra::obs::flame::folded(&interp_trace(CALLS_SRC)).into_keys().collect();
    let vm: BTreeSet<String> =
        tetra::obs::flame::folded(&vm_trace(CALLS_SRC)).into_keys().collect();
    assert!(!interp.is_empty() && !vm.is_empty());
    // Counts differ (wall time vs virtual dispatch), but the *set* of call
    // paths is engine-independent: same program, same shadow stacks.
    assert_eq!(interp, vm, "engines disagree on the set of collapsed stacks");
    for path in ["main", "main;mid", "main;mid;leaf"] {
        assert!(interp.contains(path), "missing path {path} in {interp:?}");
    }
}

#[test]
fn heap_profile_attributes_sites_by_call_path() {
    let _guard = exclusive();
    let src = "\
def churn(n int) int:
    s = 0
    i = 0
    while i < n:
        t = fill(40, i)
        s += t[0]
        i += 1
    return s

def main():
    keep = fill(2000, 7)
    print(churn(50))
    print(keep[0])
";
    let program = compile(src);
    tetra::obs::session::begin(tetra::obs::session::Config::default());
    // Stress GC so a census (live-after-last-GC) is guaranteed to run.
    let mut cfg = InterpConfig::default();
    cfg.gc.stress = true;
    let result = program.run_with(cfg, BufferConsole::with_input(&[]));
    let trace = tetra::obs::session::end();
    result.expect("interp run failed");

    assert!(!trace.heap.is_empty(), "no allocation sites recorded");
    let churn_site = trace
        .heap
        .sites
        .iter()
        .find(|s| s.path(&trace.names) == "main;churn")
        .expect("no site attributed to main;churn");
    assert!(churn_site.allocs >= 50, "churn loop allocations undercounted: {churn_site:?}");
    // `keep` is allocated in main and stays live across every collection.
    let live_in_main =
        trace.heap.sites.iter().any(|s| s.path(&trace.names) == "main" && s.live_bytes > 0);
    assert!(live_in_main, "long-lived allocation in main has no live bytes: {:?}", trace.heap);
    // The rendered section names sites as function:line.
    let report = tetra::obs::profile::report(&trace, None);
    assert!(report.contains("heap allocation sites"), "{report}");
    assert!(report.contains("churn:"), "{report}");
}

#[test]
fn lock_contention_is_attributed_to_call_paths() {
    let _guard = exclusive();
    let trace = interp_trace(CALLS_SRC);
    let report = tetra::obs::profile::report(&trace, None);
    assert!(report.contains("lock contention by call path"), "{report}");
    // The `lock t:` sits directly in the parallel-for body, which runs
    // under the spawning path — `main`.
    let section = report.split("lock contention by call path").nth(1).unwrap_or("");
    assert!(section.contains("main"), "lock path missing from: {report}");
    // And the hot-path section names the deepest call chain.
    assert!(report.contains("hot paths"), "{report}");
    assert!(report.contains("main;mid;leaf") || report.contains("main;mid"), "{report}");
}
