//! GC torture tests: whole programs under collect-on-every-allocation
//! stress and under tiny heaps, sequential and parallel. A single missing
//! root anywhere in the engines shows up here as corrupted values.

use tetra::runtime::HeapConfig;
use tetra::{BufferConsole, InterpConfig, Tetra, VmConfig};

fn run_stress_interp(src: &str) -> (String, tetra::RunStats) {
    let p = Tetra::compile(src).unwrap_or_else(|e| panic!("{}", e.render()));
    let console = BufferConsole::new();
    let config = InterpConfig {
        gc: HeapConfig { stress: true, ..HeapConfig::default() },
        worker_threads: 4,
        ..InterpConfig::default()
    };
    let stats = p.run_with(config, console.clone()).unwrap_or_else(|e| panic!("{e}"));
    (console.output(), stats)
}

fn run_tiny_heap_interp(src: &str) -> (String, tetra::RunStats) {
    let p = Tetra::compile(src).unwrap();
    let console = BufferConsole::new();
    let config = InterpConfig {
        gc: HeapConfig {
            initial_threshold: 1 << 12,
            min_threshold: 1 << 10,
            ..HeapConfig::default()
        },
        worker_threads: 4,
        ..InterpConfig::default()
    };
    let stats = p.run_with(config, console.clone()).unwrap_or_else(|e| panic!("{e}"));
    (console.output(), stats)
}

fn run_stress_vm(src: &str) -> String {
    let p = Tetra::compile(src).unwrap();
    let console = BufferConsole::new();
    let cfg = VmConfig {
        gc: HeapConfig { stress: true, ..HeapConfig::default() },
        ..VmConfig::default()
    };
    p.simulate_with(cfg, console.clone()).unwrap_or_else(|e| panic!("{e}"));
    console.output()
}

const STRING_CHURN: &str = "\
def main():
    out = \"\"
    i = 0
    while i < 40:
        piece = str(i) + \"-\"
        out = out + piece
        i += 1
    print(len(out))
";

#[test]
fn string_churn_survives_stress_on_both_engines() {
    // 0-  ... 9- are 2+1 chars, 10- ... 39- are 3 chars → 10*2 + 30*3 + 40 dashes.
    let expected = format!("{}\n", 10 * 2 + 30 * 3);
    assert_eq!(run_stress_interp(STRING_CHURN).0, expected);
    assert_eq!(run_stress_vm(STRING_CHURN), expected);
}

#[test]
fn nested_containers_survive_stress() {
    let src = "\
def main():
    grid = []
    r = 0
    while r < 6:
        row = []
        c = 0
        while c < 6:
            append(row, r * 10 + c)
            c += 1
        append(grid, row)
        r += 1
    total = 0
    for row in grid:
        for v in row:
            total += v
    print(total)
";
    // This needs a typed empty array: give grid context via a helper.
    let src = src.replace("    grid = []", "    grid = fill(0, [0])");
    let src = src.replace("        row = []", "        row = fill(0, 0)");
    let expected = "990\n"; // sum over r,c in 0..6 of (10r + c) = 900 + 90
    assert_eq!(run_stress_interp(&src).0, expected);
    assert_eq!(run_stress_vm(&src), expected);
}

#[test]
fn parallel_allocation_storm_under_stress() {
    let src = "\
def main():
    results = fill(4, \"\")
    parallel for i in [0 ... 3]:
        s = \"\"
        j = 0
        while j < 25:
            s = s + str(i * 100 + j) + \".\"
            j += 1
        results[i] = s
    ok = true
    for r in results:
        if len(r) < 25:
            ok = false
    print(ok)
";
    assert_eq!(run_stress_interp(src).0, "true\n");
}

#[test]
fn tiny_heap_forces_many_collections_and_stays_correct() {
    let src = "\
def main():
    keep = fill(0, \"\")
    i = 0
    while i < 500:
        s = \"block-\" + str(i)
        if i % 100 == 0:
            append(keep, s)
        i += 1
    print(keep)
";
    let (out, stats) = run_tiny_heap_interp(src);
    assert_eq!(out, "[\"block-0\", \"block-100\", \"block-200\", \"block-300\", \"block-400\"]\n");
    assert!(stats.gc.collections >= 2, "tiny heap must collect: {:?}", stats.gc);
    assert!(stats.gc.objects_freed > 300, "{:?}", stats.gc);
}

#[test]
fn survivors_keep_identity_across_collections() {
    // A shared array mutated between forced collections must keep its
    // contents; gc() forces collections at program level.
    let src = "\
def main():
    a = [1, 2, 3]
    gc()
    append(a, 4)
    gc()
    b = a
    append(b, 5)
    gc()
    print(a, \" \", a == b)
";
    let (out, _) = run_stress_interp(src);
    assert_eq!(out, "[1, 2, 3, 4, 5] true\n");
}

#[test]
fn dict_contents_survive_collections() {
    let src = "\
def main():
    d = {\"k0\": \"v0\"}
    i = 1
    while i < 50:
        d[\"k\" + str(i)] = \"v\" + str(i)
        gc()
        i += 1
    print(len(d), \" \", d[\"k25\"])
";
    assert_eq!(run_stress_interp(src).0, "50 v25\n");
    assert_eq!(run_stress_vm(src), "50 v25\n");
}

#[test]
fn gc_stats_reported_through_run_stats() {
    let (_, stats) = run_stress_interp(STRING_CHURN);
    assert!(stats.gc.allocations > 80, "{:?}", stats.gc);
    assert!(stats.gc.collections > 80, "{:?}", stats.gc);
    assert!(stats.gc.objects_freed > 0, "{:?}", stats.gc);
}

#[test]
fn blocked_readers_do_not_stall_collection() {
    // One thread blocks on input (safe region) while another allocates
    // under stress; the program finishes once input arrives.
    let src = "\
def main():
    parallel:
        reader()
        churner()

def reader():
    s = read_string()
    print(\"read: \", s)

def churner():
    i = 0
    while i < 30:
        x = str(i) + \"!\"
        i += 1
    print(\"churned\")
";
    let p = Tetra::compile(src).unwrap();
    let console = BufferConsole::with_input(&["hello"]);
    let config = InterpConfig {
        gc: HeapConfig { stress: true, ..HeapConfig::default() },
        ..InterpConfig::default()
    };
    p.run_with(config, console.clone()).unwrap();
    let out = console.output();
    assert!(out.contains("read: hello"), "{out}");
    assert!(out.contains("churned"), "{out}");
}
