//! Failure-injection tests: programs that are *supposed* to go wrong must
//! fail loudly, precisely, and without hanging — the paper's whole
//! pedagogical point about races and deadlocks (§II, §III).

use std::sync::Arc;
use std::time::{Duration, Instant};
use tetra::runtime::ErrorKind;
use tetra::{debugger::Debugger, programs, BufferConsole, InterpConfig, Tetra};

fn expect_err(src: &str) -> tetra::RuntimeError {
    let p = Tetra::compile(src).unwrap_or_else(|e| panic!("{}", e.render()));
    p.run_captured(&[]).expect_err("program must fail")
}

#[test]
fn deadlock_is_detected_quickly_not_hung() {
    let start = Instant::now();
    let p = Tetra::compile(programs::DEADLOCK).unwrap();
    let err = p.run_captured(&[]).unwrap_err();
    assert_eq!(err.kind, ErrorKind::Deadlock);
    assert!(err.message.contains("lock `a`") && err.message.contains("lock `b`"), "{err}");
    assert!(start.elapsed() < Duration::from_secs(10), "detection must not stall");
}

#[test]
fn three_way_deadlock_cycle_is_detected() {
    let src = "\
def grab(first string, second string):
    if first == \"a\":
        lock a:
            sleep(30)
            grab2(second)
    elif first == \"b\":
        lock b:
            sleep(30)
            grab2(second)
    else:
        lock c:
            sleep(30)
            grab2(second)

def grab2(name string):
    if name == \"a\":
        lock a:
            pass
    elif name == \"b\":
        lock b:
            pass
    else:
        lock c:
            pass

def main():
    parallel:
        grab(\"a\", \"b\")
        grab(\"b\", \"c\")
        grab(\"c\", \"a\")
";
    let err = expect_err(src);
    assert_eq!(err.kind, ErrorKind::Deadlock);
}

#[test]
fn deadlock_on_vm_is_also_detected() {
    let p = Tetra::compile(programs::DEADLOCK).unwrap();
    let err = p.simulate(BufferConsole::new()).unwrap_err();
    assert_eq!(err.kind, ErrorKind::Deadlock);
}

#[test]
fn runtime_errors_in_worker_threads_surface_with_their_line() {
    let src = "\
def main():
    a = [1, 2, 3]
    parallel for i in [0 ... 9]:
        x = a[i]
";
    let err = expect_err(src);
    assert_eq!(err.kind, ErrorKind::IndexOutOfBounds);
    assert_eq!(err.line, 4);
}

#[test]
fn error_kinds_are_precise() {
    for (src, kind) in [
        ("def main():\n    print(1 / 0)\n", ErrorKind::DivideByZero),
        ("def main():\n    print([1][5])\n", ErrorKind::IndexOutOfBounds),
        ("def main():\n    d = {1: 1}\n    print(d[9])\n", ErrorKind::KeyNotFound),
        ("def main():\n    assert false\n", ErrorKind::AssertionFailed),
        ("def main():\n    x = 9223372036854775807\n    print(x + 1)\n", ErrorKind::Overflow),
        ("def main():\n    lock a:\n        lock a:\n            pass\n", ErrorKind::LockReentry),
        ("def main():\n    n = int(\"abc\")\n    print(n)\n", ErrorKind::Value),
        ("def main():\n    n = read_int()\n    print(n)\n", ErrorKind::Io),
    ] {
        let err = expect_err(src);
        assert_eq!(err.kind, kind, "{src}");
    }
}

#[test]
fn racy_counter_usually_loses_updates_and_is_always_flagged() {
    // The unlocked counter is the canonical first race a student writes.
    // Whatever count it produces, the lockset detector must flag it.
    let src = programs::racy_counter(2_000);
    let p = Tetra::compile(&src).unwrap();
    let dbg = Debugger::tracer();
    let console = BufferConsole::new();
    let interp = p.debug(
        InterpConfig { worker_threads: 8, ..InterpConfig::default() },
        console.clone(),
        dbg.clone(),
    );
    interp.run().unwrap();
    let races = dbg.races();
    assert!(
        races.iter().any(|r| r.name == "count"),
        "the race on `count` must be reported: {races:?}"
    );
    // The printed value is whatever the race produced — any int ≤ 2000.
    let out = console.output();
    let val: i64 = out.trim().parse().expect("an integer count");
    assert!(val <= 2000);
}

#[test]
fn cancelled_program_reports_cancellation() {
    let src = "\
def main():
    i = 0
    while i < 100000000:
        i += 1
";
    let p = Tetra::compile(src).unwrap();
    let dbg = Debugger::new(false);
    let interp = p.debug(InterpConfig::default(), BufferConsole::new(), dbg.clone());
    let dbg2 = Arc::clone(&dbg);
    let h = std::thread::spawn(move || interp.run());
    std::thread::sleep(Duration::from_millis(30));
    dbg2.stop();
    let err = h.join().unwrap().unwrap_err();
    assert_eq!(err.kind, ErrorKind::Cancelled);
}

#[test]
fn background_thread_errors_are_reported_at_exit() {
    let src = "\
def main():
    background:
        boom()
    print(\"main done\")

def boom():
    sleep(5)
    x = 1 / 0
";
    let p = Tetra::compile(src).unwrap();
    let (r, out) = {
        let console = BufferConsole::new();
        let r = p.run_with(InterpConfig::default(), console.clone());
        (r, console.output())
    };
    assert!(out.contains("main done"), "{out}");
    let err = r.unwrap_err();
    assert_eq!(err.kind, ErrorKind::DivideByZero);
}

#[test]
fn recursion_blowup_is_an_error_on_both_engines() {
    let src = "def f(x int) int:\n    return f(x + 1)\ndef main():\n    print(f(0))\n";
    let p = Tetra::compile(src).unwrap();
    let e1 = p.run_captured(&[]).unwrap_err();
    assert!(e1.message.contains("call depth"), "{e1}");
    let e2 = p.simulate(BufferConsole::new()).unwrap_err();
    assert!(e2.message.contains("call depth"), "{e2}");
}

#[test]
fn first_failing_child_error_wins_deterministically_on_vm() {
    // Two children fail differently; the VM's deterministic schedule must
    // always report the same one.
    let src = "\
def main():
    parallel:
        a = 1 / 0
        b = [1][9]
";
    let p = Tetra::compile(src).unwrap();
    let kinds: Vec<ErrorKind> =
        (0..3).map(|_| p.simulate(BufferConsole::new()).unwrap_err().kind).collect();
    assert!(kinds.windows(2).all(|w| w[0] == w[1]), "{kinds:?}");
}
