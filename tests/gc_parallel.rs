//! Stress suite for the sharded GC heap: parallel allocation storms under
//! collect-on-every-allocation stress, differential checks against
//! single-threaded runs (no lost or corrupted objects), heap-profiler
//! census consistency, and the parallel-mark worker plan.

use std::sync::{Mutex, MutexGuard};
use tetra::runtime::heap::{NoRoots, RootSink, RootSource};
use tetra::runtime::{Heap, HeapConfig, Value};
use tetra::{BufferConsole, InterpConfig, Tetra, VmConfig};

/// Observability sessions are process-global; serialize the tests that use
/// one (same pattern as tests/flame_and_heap.rs).
static SESSION_GUARD: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    SESSION_GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn run_interp(src: &str, threads: usize, stress: bool) -> (String, tetra::RunStats) {
    let p = Tetra::compile(src).unwrap_or_else(|e| panic!("{}", e.render()));
    let console = BufferConsole::new();
    let config = InterpConfig {
        gc: HeapConfig { stress, ..HeapConfig::default() },
        worker_threads: threads,
        ..InterpConfig::default()
    };
    let stats = p.run_with(config, console.clone()).unwrap_or_else(|e| panic!("{e}"));
    (console.output(), stats)
}

/// Workers build arrays and strings every iteration; the program folds them
/// into one deterministic line so any lost, doubled, or corrupted object
/// changes the output.
const ALLOC_STORM: &str = "\
def main():
    sums = fill(8, 0)
    texts = fill(8, \"\")
    parallel for i in [0 ... 7]:
        total = 0
        s = \"\"
        j = 0
        while j < 30:
            a = [i, j, i * j]
            total += a[0] + a[1] + a[2]
            s = s + str(a[2]) + \";\"
            j += 1
        sums[i] = total
        texts[i] = s
    grand = 0
    for v in sums:
        grand += v
    ok = true
    for t in texts:
        if len(t) < 30:
            ok = false
    print(grand, \" \", ok)
";

#[test]
fn parallel_alloc_storm_matches_single_threaded_run() {
    // The unstressed single-threaded run is the oracle; stress-mode runs at
    // 1 and 4 workers must produce byte-identical output (no lost objects).
    let (oracle, _) = run_interp(ALLOC_STORM, 1, false);
    let (seq_stress, _) = run_interp(ALLOC_STORM, 1, true);
    let (par_stress, stats) = run_interp(ALLOC_STORM, 4, true);
    assert_eq!(seq_stress, oracle);
    assert_eq!(par_stress, oracle);
    assert!(stats.gc.collections > 100, "stress mode must collect: {:?}", stats.gc);
    assert!(stats.gc.objects_freed > 0, "{:?}", stats.gc);
}

#[test]
fn allocator_counters_account_for_every_allocation() {
    let (_, stats) = run_interp(ALLOC_STORM, 4, true);
    // Every allocation is either a free-list pop or a one-chunk refill;
    // there is no third (locked) path for it to disappear into.
    assert_eq!(
        stats.gc.alloc_fast_path + stats.gc.segment_refills,
        stats.gc.allocations,
        "{:?}",
        stats.gc
    );
    assert!(stats.gc.alloc_fast_path > stats.gc.segment_refills, "{:?}", stats.gc);
}

#[test]
fn vm_survives_the_same_storm_under_stress() {
    let p = Tetra::compile(ALLOC_STORM).unwrap();
    let console = BufferConsole::new();
    let cfg = VmConfig {
        gc: HeapConfig { stress: true, ..HeapConfig::default() },
        ..VmConfig::default()
    };
    p.simulate_with(cfg, console.clone()).unwrap_or_else(|e| panic!("{e}"));
    let (oracle, _) = run_interp(ALLOC_STORM, 1, false);
    assert_eq!(console.output(), oracle);
}

#[test]
fn spawn_exit_churn_under_stress_terminates_cleanly() {
    // Repeated parallel-for waves spawn and retire mutators while stress
    // collections fire constantly — exercising mutator exit with the
    // gc_flag raised and pooled-segment reuse across waves.
    let src = "\
def main():
    r = 0
    while r < 6:
        parallel for i in [0 ... 5]:
            t = [i, r, i + r]
            x = t[0] + t[1] + t[2]
        r += 1
    print(\"done\")
";
    let (out, stats) = run_interp(src, 4, true);
    assert_eq!(out, "done\n");
    assert!(stats.threads_spawned > 6, "waves must spawn threads: {stats:?}");
}

#[test]
fn forced_gc_in_parallel_region_uses_multiple_mark_workers() {
    // The parallel-mark gate counts top-level root values, so main recurses
    // 40 frames deep with two string locals pinned per frame (80+ roots)
    // before blocking on the join. Workers then call gc(): at least two
    // mutators are registered at collection time, so with gc_threads=4 the
    // plan must exceed one worker.
    let src = "\
def grow(depth int) int:
    pad = \"p\" + str(depth)
    tail = \"q\" + str(depth)
    if depth > 0:
        return grow(depth - 1) + len(pad) + len(tail)
    parallel for i in [0 ... 3]:
        gc()
    return len(pad) + len(tail)
def main():
    print(grow(40))
";
    let p = Tetra::compile(src).unwrap();
    let console = BufferConsole::new();
    let config = InterpConfig {
        gc: HeapConfig { gc_threads: 4, ..HeapConfig::default() },
        worker_threads: 4,
        ..InterpConfig::default()
    };
    let stats = p.run_with(config, console.clone()).unwrap_or_else(|e| panic!("{e}"));
    // Sum of the two padding-string lengths over depths 0..=40.
    assert_eq!(console.output(), "226\n");
    assert!(stats.gc.mark_workers >= 2, "parallel mark never engaged: {:?}", stats.gc);
}

struct VecRoots(Vec<Value>);
impl RootSource for VecRoots {
    fn roots(&self, sink: &mut RootSink) {
        for v in &self.0 {
            sink.value(*v);
        }
    }
}

#[test]
fn heap_profiler_census_matches_live_bytes_exactly() {
    let _guard = exclusive();
    tetra::obs::session::begin(tetra::obs::session::Config {
        trace: false,
        metrics: false,
        heap_profile: true,
        ..Default::default()
    });
    let heap = Heap::new(HeapConfig::default());
    let m = heap.register_mutator();
    let mut kept = Vec::new();
    for i in 0..100i64 {
        // Two distinct sites (by line) so the census has several rows.
        tetra::obs::heapprof::set_site(0, 10 + (i % 2) as u32);
        let v = if i % 2 == 0 {
            heap.alloc_str(&m, &VecRoots(kept.clone()), format!("string number {i}"))
        } else {
            heap.alloc_array(&m, &VecRoots(kept.clone()), vec![Value::Int(i), Value::Int(i * i)])
        };
        if i % 4 == 0 {
            kept.push(v);
        }
    }
    heap.collect_now(&m, &VecRoots(kept.clone()));
    let stats = heap.stats();
    let trace = tetra::obs::session::end();
    drop(m);

    let census_objects: u64 = trace.heap.sites.iter().map(|s| s.live_objects).sum();
    let census_bytes: u64 = trace.heap.sites.iter().map(|s| s.live_bytes).sum();
    assert_eq!(stats.live_objects, kept.len() as u64);
    assert_eq!(
        census_objects, stats.live_objects,
        "census object count diverged from the heap: {:?}",
        trace.heap
    );
    assert_eq!(
        census_bytes, stats.live_bytes,
        "census byte total diverged from the heap: {:?}",
        trace.heap
    );
}

#[test]
fn gc_stats_phase_times_are_populated() {
    let heap = Heap::new(HeapConfig::default());
    let m = heap.register_mutator();
    let mut kept = Vec::new();
    for i in 0..200 {
        kept.push(heap.alloc_str(&m, &VecRoots(kept.clone()), format!("padding {i}")));
    }
    heap.collect_now(&m, &VecRoots(kept.clone()));
    let s = heap.stats();
    // Phase totals are reported in µs with a ceiling at the edge, so a real
    // collection always registers nonzero mark and sweep time, and the
    // phases cannot exceed the whole pause.
    assert!(s.mark_us >= 1, "{s:?}");
    assert!(s.sweep_us >= 1, "{s:?}");
    assert!(s.pause_total_us >= 1, "{s:?}");
    drop(m);
    let _ = NoRoots; // keep the shared-import surface exercised
}
