//! Integration tests for the semantics of the four parallel constructs
//! (paper §II and §IV), exercised through the public API.

use std::sync::Arc;
use tetra::{BufferConsole, InterpConfig, Tetra};

fn run(src: &str) -> String {
    let p = Tetra::compile(src).unwrap_or_else(|e| panic!("{}", e.render()));
    let (out, _) = p.run_captured(&[]).unwrap_or_else(|e| panic!("{e}"));
    out
}

#[test]
fn parallel_joins_before_continuing() {
    // The statement after the parallel block must observe every child's
    // effects — "the program will then wait for all n statements to finish
    // before moving on" (§II).
    let src = "\
def slow_set(a [int], i int, v int):
    sleep(10)
    a[i] = v

def main():
    a = [0, 0, 0]
    parallel:
        slow_set(a, 0, 1)
        slow_set(a, 1, 2)
        slow_set(a, 2, 3)
    print(a)
";
    assert_eq!(run(src), "[1, 2, 3]\n");
}

#[test]
fn background_does_not_block_the_parent() {
    // The parent's print must be reachable even though the background
    // thread sleeps; with join-on-exit the background output still appears.
    let src = "\
def main():
    t0 = time_ms()
    background:
        sleep(150)
        print(\"background done\")
    elapsed = time_ms() - t0
    assert elapsed < 100, \"background: block must not join\"
    print(\"parent continues\")
";
    let out = run(src);
    let parent_pos = out.find("parent continues").expect("parent printed");
    let bg_pos = out.find("background done").expect("background joined at exit");
    assert!(parent_pos < bg_pos, "parent must print first:\n{out}");
}

#[test]
fn parallel_for_runs_every_iteration_exactly_once() {
    let src = "\
def main():
    hits = fill(100, 0)
    parallel for i in [0 ... 99]:
        hits[i] += 1
    ok = true
    for h in hits:
        if h != 1:
            ok = false
    print(ok)
";
    assert_eq!(run(src), "true\n");
}

#[test]
fn parallel_for_worker_count_is_configurable() {
    let src = "\
def main():
    parallel for i in [1 ... 32]:
        pass
";
    let p = Tetra::compile(src).unwrap();
    for workers in [1usize, 2, 8] {
        let console = BufferConsole::new();
        let stats = p
            .run_with(InterpConfig { worker_threads: workers, ..InterpConfig::default() }, console)
            .unwrap();
        assert_eq!(stats.threads_spawned, 1 + workers.min(32) as u32, "workers={workers}");
    }
}

#[test]
fn induction_variable_does_not_leak_between_workers() {
    // Each worker keeps a private copy (§IV); concurrent workers must not
    // see each other's induction values. We check that the recorded value
    // for each slot equals its own index.
    let src = "\
def main():
    seen = fill(64, -1)
    parallel for i in [0 ... 63]:
        sleep(1)
        seen[i] = i
    ok = true
    j = 0
    while j < 64:
        if seen[j] != j:
            ok = false
        j += 1
    print(ok)
";
    assert_eq!(run(src), "true\n");
}

#[test]
fn shared_frame_writes_are_visible_across_threads() {
    // Fig. II's core property, distilled.
    let src = "\
def main():
    parallel:
        x = 10
        y = 20
        z = 30
    print(x + y + z)
";
    assert_eq!(run(src), "60\n");
}

#[test]
fn locks_serialize_compound_updates() {
    let src = "\
def main():
    counter = 0
    parallel for i in [1 ... 500]:
        lock guard:
            counter += 1
    print(counter)
";
    assert_eq!(run(src), "500\n");
}

#[test]
fn different_lock_names_do_not_exclude_each_other() {
    // Two counters under two different locks — both must be exact, and the
    // program must finish quickly (no accidental global serialization).
    let src = "\
def main():
    a = 0
    b = 0
    parallel for i in [1 ... 200]:
        lock la:
            a += 1
        lock lb:
            b += 1
    print(a, \" \", b)
";
    assert_eq!(run(src), "200 200\n");
}

#[test]
fn lock_released_on_error_path() {
    // A child thread errors inside a lock block; main must still be able
    // to take the same lock afterwards (via a second run of the program
    // logic — here: the error propagates but the registry was released).
    let src = "\
def main():
    failed = false
    parallel:
        boom()
    print(\"unreachable\")

def boom():
    lock m:
        x = 1 / 0
";
    let p = Tetra::compile(src).unwrap();
    let err = p.run_captured(&[]).unwrap_err();
    assert_eq!(err.kind, tetra::runtime::ErrorKind::DivideByZero);
}

#[test]
fn nested_parallelism_composes() {
    let src = "\
def quadrant(m [[int]], r int, base int):
    parallel:
        m[r][0] = base
        m[r][1] = base + 1

def main():
    m = [[0, 0], [0, 0]]
    parallel:
        quadrant(m, 0, 10)
        quadrant(m, 1, 20)
    print(m)
";
    assert_eq!(run(src), "[[10, 11], [20, 21]]\n");
}

#[test]
fn parallel_for_over_computed_sequences() {
    let src = "\
def main():
    rows = [[1, 2], [3, 4], [5, 6]]
    sums = fill(3, 0)
    parallel for r in [0 ... 2]:
        sums[r] = rows[r][0] + rows[r][1]
    print(sums)
";
    assert_eq!(run(src), "[3, 7, 11]\n");
}

#[test]
fn thread_id_builtin_distinguishes_threads() {
    let src = "\
def main():
    ids = fill(4, -1)
    parallel for i in [0 ... 3]:
        ids[i] = thread_id()
    sort(ids)
    distinct = 1
    j = 1
    while j < 4:
        if ids[j] != ids[j - 1]:
            distinct += 1
        j += 1
    print(distinct > 1)
";
    let p = Tetra::compile(src).unwrap();
    let console = BufferConsole::new();
    p.run_with(InterpConfig { worker_threads: 4, ..InterpConfig::default() }, console.clone())
        .unwrap();
    assert_eq!(console.output(), "true\n");
}

#[test]
fn gil_mode_preserves_semantics() {
    let src = "\
def main():
    total = 0
    parallel for i in [1 ... 300]:
        lock t:
            total += i
    print(total)
";
    let p = Tetra::compile(src).unwrap();
    let console = BufferConsole::new();
    p.run_with(InterpConfig { gil: true, ..InterpConfig::default() }, console.clone()).unwrap();
    assert_eq!(console.output(), "45150\n");
}

#[test]
fn detect_deadlocks_can_be_disabled_for_teaching() {
    // With detection off, the two-lock program really deadlocks; we only
    // verify the configuration plumbing here by NOT running that program,
    // but asserting re-entry remains an error (it has no observer to break
    // it) while the config knob exists.
    let src = "def main():\n    lock a:\n        lock a:\n            pass\n";
    let p = Tetra::compile(src).unwrap();
    let console = BufferConsole::new();
    let err = p
        .run_with(InterpConfig { detect_deadlocks: false, ..InterpConfig::default() }, console)
        .unwrap_err();
    assert_eq!(err.kind, tetra::runtime::ErrorKind::LockReentry);
}

#[test]
fn background_threads_can_outlive_the_function_that_spawned_them() {
    let src = "\
def launch(a [int]):
    background:
        set_later(a)

def set_later(a [int]):
    sleep(30)
    a[0] = 42

def main():
    a = [0]
    launch(a)
    print(\"launched\")
";
    // join_background (default) waits for the writer before returning.
    let p = Tetra::compile(src).unwrap();
    let console = BufferConsole::new();
    p.run_with(InterpConfig::default(), Arc::clone(&console) as _).unwrap();
    assert_eq!(console.output(), "launched\n");
}
