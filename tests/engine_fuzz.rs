//! Differential fuzzing of the two execution engines: proptest generates
//! random (but well-typed, terminating) Tetra programs; the interpreter
//! and the VM must agree on the outcome — identical output on success, or
//! the same error kind on failure (e.g. both overflow).

use proptest::prelude::*;
use tetra::runtime::ErrorKind;
use tetra::{BufferConsole, Tetra};

/// A generated integer expression over variables `a`..`e` (always
/// initialized) and the loop variable `k` when inside a loop.
#[derive(Debug, Clone)]
enum GenExpr {
    Lit(i64),
    Var(usize),
    LoopVar,
    Add(Box<GenExpr>, Box<GenExpr>),
    Sub(Box<GenExpr>, Box<GenExpr>),
    MulLit(Box<GenExpr>, i64),
    DivLit(Box<GenExpr>, i64),
    ModLit(Box<GenExpr>, i64),
}

impl GenExpr {
    fn render(&self, in_loop: bool) -> String {
        match self {
            GenExpr::Lit(v) => {
                if *v < 0 {
                    format!("({v})")
                } else {
                    v.to_string()
                }
            }
            GenExpr::Var(i) => var_name(*i).to_string(),
            GenExpr::LoopVar => {
                if in_loop {
                    "k".to_string()
                } else {
                    "1".to_string()
                }
            }
            GenExpr::Add(a, b) => format!("({} + {})", a.render(in_loop), b.render(in_loop)),
            GenExpr::Sub(a, b) => format!("({} - {})", a.render(in_loop), b.render(in_loop)),
            GenExpr::MulLit(a, l) => format!("({} * {})", a.render(in_loop), l),
            GenExpr::DivLit(a, l) => format!("({} / {})", a.render(in_loop), l),
            GenExpr::ModLit(a, l) => format!("({} % {})", a.render(in_loop), l),
        }
    }
}

fn var_name(i: usize) -> &'static str {
    ["a", "b", "c", "d", "e"][i % 5]
}

fn expr_strategy(depth: u32) -> BoxedStrategy<GenExpr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(GenExpr::Lit),
        (0usize..5).prop_map(GenExpr::Var),
        Just(GenExpr::LoopVar),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), 2i64..5).prop_map(|(a, l)| GenExpr::MulLit(Box::new(a), l)),
            (inner.clone(), 2i64..7).prop_map(|(a, l)| GenExpr::DivLit(Box::new(a), l)),
            (inner, 2i64..7).prop_map(|(a, l)| GenExpr::ModLit(Box::new(a), l)),
        ]
    })
    .boxed()
}

/// A generated statement.
#[derive(Debug, Clone)]
enum GenStmt {
    Assign(usize, GenExpr),
    AddAssign(usize, GenExpr),
    If(GenExpr, GenExpr, Vec<GenStmt>, Vec<GenStmt>),
    ForLoop(i64, i64, Vec<GenStmt>),
    ArraySet(usize, GenExpr),
    ArrayBump(usize, GenExpr),
}

fn stmt_strategy(depth: u32) -> BoxedStrategy<GenStmt> {
    let leaf = prop_oneof![
        (0usize..5, expr_strategy(2)).prop_map(|(v, e)| GenStmt::Assign(v, e)),
        (0usize..5, expr_strategy(2)).prop_map(|(v, e)| GenStmt::AddAssign(v, e)),
        (0usize..5, expr_strategy(2)).prop_map(|(i, e)| GenStmt::ArraySet(i, e)),
        (0usize..5, expr_strategy(2)).prop_map(|(i, e)| GenStmt::ArrayBump(i, e)),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            (
                expr_strategy(1),
                expr_strategy(1),
                prop::collection::vec(inner.clone(), 1..3),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(l, r, t, e)| GenStmt::If(l, r, t, e)),
            (0i64..5, 0i64..5, prop::collection::vec(inner, 1..3))
                .prop_map(|(lo, extra, body)| GenStmt::ForLoop(lo, lo + extra, body)),
        ]
    })
    .boxed()
}

fn render_block(stmts: &[GenStmt], indent: usize, in_loop: bool, out: &mut String) {
    let pad = "    ".repeat(indent);
    if stmts.is_empty() {
        out.push_str(&format!("{pad}pass\n"));
        return;
    }
    for s in stmts {
        match s {
            GenStmt::Assign(v, e) => {
                out.push_str(&format!("{pad}{} = {}\n", var_name(*v), e.render(in_loop)))
            }
            GenStmt::AddAssign(v, e) => {
                out.push_str(&format!("{pad}{} += {}\n", var_name(*v), e.render(in_loop)))
            }
            GenStmt::ArraySet(i, e) => {
                out.push_str(&format!("{pad}arr[{}] = {}\n", i % 5, e.render(in_loop)))
            }
            GenStmt::ArrayBump(i, e) => {
                out.push_str(&format!("{pad}arr[{}] += {}\n", i % 5, e.render(in_loop)))
            }
            GenStmt::If(l, r, then, els) => {
                out.push_str(&format!("{pad}if {} > {}:\n", l.render(in_loop), r.render(in_loop)));
                render_block(then, indent + 1, in_loop, out);
                if !els.is_empty() {
                    out.push_str(&format!("{pad}else:\n"));
                    render_block(els, indent + 1, in_loop, out);
                }
            }
            GenStmt::ForLoop(lo, hi, body) => {
                out.push_str(&format!("{pad}for k in [{lo} ... {hi}]:\n"));
                render_block(body, indent + 1, true, out);
            }
        }
    }
}

fn render_program(stmts: &[GenStmt]) -> String {
    let mut src = String::from(
        "def main():\n    a = 1\n    b = 2\n    c = 3\n    d = 4\n    e = 5\n    arr = [0, 0, 0, 0, 0]\n",
    );
    render_block(stmts, 1, false, &mut src);
    src.push_str("    print(a, \" \", b, \" \", c, \" \", d, \" \", e, \" \", arr)\n");
    src
}

/// Run one program under both engines and compare outcomes.
fn outcomes_agree(src: &str) -> Result<(), TestCaseError> {
    let p = match Tetra::compile(src) {
        Ok(p) => p,
        Err(e) => {
            return Err(TestCaseError::fail(format!(
                "generated program failed to compile: {e}\n{src}"
            )))
        }
    };
    let interp: Result<String, ErrorKind> =
        p.run_captured(&[]).map(|(out, _)| out).map_err(|e| e.kind);
    let console = BufferConsole::new();
    let vm: Result<String, ErrorKind> =
        p.simulate(console.clone()).map(|_| console.output()).map_err(|e| e.kind);
    prop_assert_eq!(
        &interp,
        &vm,
        "engines diverged on:\n{}\ninterp: {:?}\nvm: {:?}",
        src,
        interp,
        vm
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_sequential_programs_agree(
        stmts in prop::collection::vec(stmt_strategy(3), 1..8)
    ) {
        let src = render_program(&stmts);
        outcomes_agree(&src)?;
    }

    /// The same generated body, but executed inside a `parallel for` over a
    /// single-element sequence (so execution remains deterministic) — this
    /// pushes every generated statement through the thunk/outer-slot
    /// compilation path and the interpreter's worker path.
    #[test]
    fn generated_bodies_agree_inside_parallel_for(
        stmts in prop::collection::vec(stmt_strategy(2), 1..5)
    ) {
        let mut body = String::new();
        render_block(&stmts, 2, false, &mut body);
        let src = format!(
            "def main():\n    a = 1\n    b = 2\n    c = 3\n    d = 4\n    e = 5\n    arr = [0, 0, 0, 0, 0]\n    parallel for w in [7]:\n{body}    print(a, \" \", b, \" \", c, \" \", d, \" \", e, \" \", arr)\n"
        );
        outcomes_agree(&src)?;
    }

    /// Constant folding must never change behaviour — including which
    /// programs error (division by a folded-to-zero expression, overflow).
    #[test]
    fn folded_programs_behave_identically(
        stmts in prop::collection::vec(stmt_strategy(3), 1..8)
    ) {
        let src = render_program(&stmts);
        let p = Tetra::compile(&src).expect("original compiles");
        let (folded, _stats) = tetra::vm::fold_program(&p.typed().program);
        let folded_src = tetra::ast::pretty::to_source(&folded);
        let p2 = match Tetra::compile(&folded_src) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::fail(format!(
                "folded program failed to compile: {e}\n{folded_src}"
            ))),
        };
        let r1: Result<String, ErrorKind> =
            p.run_captured(&[]).map(|(o, _)| o).map_err(|e| e.kind);
        let r2: Result<String, ErrorKind> =
            p2.run_captured(&[]).map(|(o, _)| o).map_err(|e| e.kind);
        prop_assert_eq!(r1, r2, "folding changed behaviour:\n{}\nvs folded\n{}", src, folded_src);
    }

    /// Pretty-printing a generated program and re-parsing it must preserve
    /// behaviour exactly (parser/printer round-trip at the semantic level).
    #[test]
    fn pretty_printed_programs_behave_identically(
        stmts in prop::collection::vec(stmt_strategy(2), 1..6)
    ) {
        let src = render_program(&stmts);
        let parsed = tetra::parser::parse(&src).expect("generated source parses");
        let printed = tetra::ast::pretty::to_source(&parsed);
        let p1 = Tetra::compile(&src).expect("original compiles");
        let p2 = match Tetra::compile(&printed) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::fail(format!(
                "pretty output failed to compile: {e}\n{printed}"
            ))),
        };
        let r1: Result<String, ErrorKind> =
            p1.run_captured(&[]).map(|(o, _)| o).map_err(|e| e.kind);
        let r2: Result<String, ErrorKind> =
            p2.run_captured(&[]).map(|(o, _)| o).map_err(|e| e.kind);
        prop_assert_eq!(r1, r2, "pretty-printed program diverged:\n{}\nvs\n{}", src, printed);
    }
}
