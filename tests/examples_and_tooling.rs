//! Integration coverage for the shipped `.tet` examples and the developer
//! tooling surface (pretty printer, disassembler, timeline, stats).

use tetra::{BufferConsole, InterpConfig, Tetra};
use tetra_suite::{example_names, example_source};

#[test]
fn shipped_examples_run_with_expected_outputs() {
    let cases: &[(&str, &[&str], &str)] = &[
        ("factorial.tet", &["6"], "enter n: \n6! = 720\n"),
        ("parallel_sum.tet", &[], "5050\n"),
        ("parallel_max.tet", &[], "96\n"),
        ("counter.tet", &[], "200\n"),
        ("primes.tet", &[], "primes below 20000: 2262\n"),
        ("mergesort.tet", &[], "sorted: true, first: 0, last: 995\n"),
        ("matmul.tet", &[], "checksum: 27338\n"),
        ("skewed.tet", &[], "skewed total: 111656896\n"),
        ("background_logger.tet", &[], "events logged: true\n"),
    ];
    for (name, input, expected) in cases {
        let p = Tetra::compile(&example_source(name))
            .unwrap_or_else(|e| panic!("{name}: {}", e.render()));
        let (out, _) = p.run_captured(input).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(&out, expected, "{name}");
    }
}

#[test]
fn retry_input_example_recovers_from_bad_input() {
    let p = Tetra::compile(&example_source("retry_input.tet")).unwrap();
    let (out, _) = p.run_captured(&["oops", "still not", "42"]).unwrap();
    assert!(out.matches("not a number").count() == 2, "{out}");
    assert!(out.contains("got 42"), "{out}");
}

#[test]
fn deterministic_examples_agree_across_engines() {
    for name in ["mergesort.tet", "matmul.tet", "wordcount.tet", "parallel_sum.tet", "skewed.tet"] {
        let p = Tetra::compile(&example_source(name)).unwrap();
        p.run_both(&[]).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn wordcount_example_counts_correctly() {
    let p = Tetra::compile(&example_source("wordcount.tet")).unwrap();
    let (out, _) = p.run_captured(&[]).unwrap();
    assert!(out.contains("the: 3"), "{out}");
    assert!(out.contains("fox: 2"), "{out}");
    assert!(out.contains("dog: 1"), "{out}");
}

#[test]
fn montecarlo_example_estimates_pi() {
    // Uses random(): only the assertion inside the program (2.9 < pi < 3.4)
    // and a clean exit are checked.
    let p = Tetra::compile(&example_source("montecarlo_pi.tet")).unwrap();
    let (out, _) = p.run_captured(&[]).unwrap();
    assert!(out.starts_with("pi is roughly "), "{out}");
}

#[test]
fn deadlock_example_fails_with_deadlock() {
    let p = Tetra::compile(&example_source("deadlock.tet")).unwrap();
    let err = p.run_captured(&[]).unwrap_err();
    assert_eq!(err.kind, tetra::runtime::ErrorKind::Deadlock);
}

#[test]
fn race_example_is_flagged_by_the_detector() {
    let p = Tetra::compile(&example_source("race.tet")).unwrap();
    let dbg = tetra::debugger::Debugger::tracer();
    let interp = p.debug(
        InterpConfig { worker_threads: 4, ..InterpConfig::default() },
        BufferConsole::new(),
        dbg.clone(),
    );
    interp.run().unwrap();
    assert!(dbg.races().iter().any(|r| r.name == "count"));
}

#[test]
fn every_example_round_trips_through_the_pretty_printer() {
    for name in example_names() {
        let src = example_source(&name);
        let parsed = tetra::parser::parse(&src).unwrap();
        let printed = tetra::ast::pretty::to_source(&parsed);
        let reparsed = tetra::parser::parse(&printed)
            .unwrap_or_else(|e| panic!("{name} re-parse: {e}\n{printed}"));
        assert_eq!(
            printed,
            tetra::ast::pretty::to_source(&reparsed),
            "{name} must be a pretty-printer fixpoint"
        );
    }
}

#[test]
fn every_example_disassembles() {
    for name in example_names() {
        let p = Tetra::compile(&example_source(&name)).unwrap();
        let bc = p.bytecode();
        let asm = tetra::vm::disassemble(&bc);
        assert!(asm.contains("func"), "{name}: {asm}");
        assert!(bc.instruction_count() > 5, "{name}");
    }
}

#[test]
fn timeline_renders_for_the_max_example() {
    let p = Tetra::compile(&example_source("parallel_max.tet")).unwrap();
    let dbg = tetra::debugger::Debugger::tracer();
    let interp = p.debug(
        InterpConfig { worker_threads: 2, ..InterpConfig::default() },
        BufferConsole::new(),
        dbg.clone(),
    );
    interp.run().unwrap();
    let text = tetra::debugger::timeline::render(&dbg.events());
    assert!(text.contains("T0 (main)"), "{text}");
    assert!(text.contains("lock `largest`") || text.contains("wait lock"), "{text}");
}

#[test]
fn run_stats_expose_thread_and_lock_activity() {
    let p = Tetra::compile(&example_source("counter.tet")).unwrap();
    let console = BufferConsole::new();
    let stats =
        p.run_with(InterpConfig { worker_threads: 4, ..InterpConfig::default() }, console).unwrap();
    assert_eq!(stats.threads_spawned, 5, "main + 4 workers");
    assert_eq!(stats.lock_acquisitions.0, 200, "one acquisition per increment");
}

#[test]
fn tokens_ast_and_check_surfaces_work_on_examples() {
    let src = example_source("parallel_sum.tet");
    let toks = tetra::lexer::tokenize(&src).unwrap();
    assert!(toks.len() > 50);
    let parsed = tetra::parser::parse(&src).unwrap();
    let tree = tetra::ast::pretty::tree(&parsed);
    assert!(tree.contains("Parallel@"), "{tree}");
    let stats = tetra::ast::visit::ParallelStats::of(&parsed);
    assert_eq!(stats.parallel_blocks, 1);
}
