//! Cross-engine oracle tests: every program must behave identically under
//! the tree-walking interpreter and the bytecode VM — including
//! property-based tests over randomized workloads where the expected
//! answer is computed independently in Rust.

use proptest::prelude::*;
use tetra::Tetra;

fn run_both(src: &str) -> String {
    Tetra::compile(src)
        .unwrap_or_else(|e| panic!("compile:\n{}", e.render()))
        .run_both(&[])
        .unwrap_or_else(|e| panic!("{e}\n--- source ---\n{src}"))
}

#[test]
fn arithmetic_corner_cases_agree() {
    let src = "\
def main():
    print(7 / 2, \" \", -7 / 2, \" \", 7 % 3, \" \", -7 % 3)
    print(7.0 / 2, \" \", 2 * 3.5)
    print(1 + 2 * 3 - 4 / 2)
    print(-2 * -3)
    print(10 % 4 == 2 and not false)
";
    assert_eq!(run_both(src), "3 -3 1 -1\n3.5 7.0\n5\n6\ntrue\n");
}

#[test]
fn string_operations_agree() {
    let src = "\
def main():
    s = \"Hello\" + \", \" + \"World\"
    print(s, \" / \", len(s), \" / \", upper(s), \" / \", s[4])
    print(substr(s, 7, 5), \" \", find(s, \"World\"), \" \", replace(s, \"l\", \"L\"))
    parts = split(\"a-b-c\", \"-\")
    print(parts, \" -> \", join(parts, \"+\"))
";
    assert_eq!(
        run_both(src),
        "Hello, World / 12 / HELLO, WORLD / o\nWorld 7 HeLLo, WorLd\n[\"a\", \"b\", \"c\"] -> a+b+c\n"
    );
}

#[test]
fn containers_agree() {
    let src = "\
def main():
    a = [3, 1, 2]
    append(a, 9)
    sort(a)
    print(a, \" \", index_of(a, 9), \" \", contains(a, 5))
    d = {\"one\": 1}
    d[\"two\"] = 2
    ks = keys(d)
    sort(ks)
    print(ks, \" \", values(d), \" \", has_key(d, \"two\"))
    t = (1, \"x\", 2.5)
    print(t[2], \" \", t)
    m = [[1, 2], [3, 4]]
    m[1][0] = 99
    print(m)
";
    assert_eq!(
        run_both(src),
        "[1, 2, 3, 9] 3 false\n[\"one\", \"two\"] [1, 2] true\n2.5 (1, \"x\", 2.5)\n[[1, 2], [99, 4]]\n"
    );
}

#[test]
fn control_flow_agrees() {
    let src = "\
def classify(n int) string:
    if n < 0:
        return \"neg\"
    elif n == 0:
        return \"zero\"
    elif n < 10:
        return \"small\"
    else:
        return \"big\"

def main():
    for n in [-5, 0, 3, 42]:
        print(classify(n))
    i = 0
    evens = 0
    while i < 20:
        i += 1
        if i % 2 == 1:
            continue
        evens += 1
        if evens == 5:
            break
    print(i, \" \", evens)
";
    assert_eq!(run_both(src), "neg\nzero\nsmall\nbig\n10 5\n");
}

#[test]
fn recursion_and_math_agree() {
    let src = "\
def gcd(a int, b int) int:
    if b == 0:
        return a
    return gcd(b, a % b)

def main():
    print(gcd(1071, 462))
    print(pow(3, 7), \" \", abs(-9), \" \", min(2, 9), \" \", max(2, 9))
    print(floor(2.7), \" \", ceil(2.1), \" \", round(2.5))
    print(sqrt(144.0))
";
    assert_eq!(run_both(src), "21\n2187 9 2 9\n2 3 3\n12.0\n");
}

#[test]
fn parallel_constructs_agree() {
    let src = "\
def main():
    nums = fill(16, 0)
    parallel for i in [0 ... 15]:
        nums[i] = i * i
    total = 0
    for n in nums:
        total += n
    parallel:
        a = total * 2
        b = total + 1
    print(total, \" \", a, \" \", b)
";
    assert_eq!(run_both(src), "1240 2480 1241\n");
}

#[test]
fn widening_agrees() {
    let src = "\
def scale(x real, f real) real:
    return x * f

def main():
    v = 1.5
    v = 2
    print(v, \" \", v / 4)
    print(scale(3, 2))
    a = [1.0, 2.0]
    a[0] = 7
    print(a[0] / 2)
";
    assert_eq!(run_both(src), "2.0 0.5\n6.0\n3.5\n");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel locked sum over random arrays equals the Rust-computed sum
    /// on both engines.
    #[test]
    fn prop_parallel_sum_matches_sequential(nums in prop::collection::vec(-1000i64..1000, 1..60)) {
        let list = nums.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ");
        let expected: i64 = nums.iter().sum();
        let src = format!(
            "def main():\n    total = 0\n    parallel for x in [{list}]:\n        lock t:\n            total += x\n    print(total)\n"
        );
        prop_assert_eq!(run_both(&src), format!("{expected}\n"));
    }

    /// The paper's Fig. III max over random arrays (positive values so the
    /// `largest = 0` seed is valid) is correct on both engines.
    #[test]
    fn prop_parallel_max_matches_sequential(nums in prop::collection::vec(1i64..100_000, 1..40)) {
        let list = nums.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ");
        let expected = *nums.iter().max().unwrap();
        let src = format!(
            "\
def max(nums [int]) int:
    largest = 0
    parallel for num in nums:
        if num > largest:
            lock largest:
                if num > largest:
                    largest = num
    return largest

def main():
    print(max([{list}]))
"
        );
        prop_assert_eq!(run_both(&src), format!("{expected}\n"));
    }

    /// sort() agrees with Rust's sort on both engines.
    #[test]
    fn prop_sort_matches_rust(mut nums in prop::collection::vec(-50i64..50, 0..30)) {
        let list = nums.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ");
        let src = if nums.is_empty() {
            "def main():\n    a = [0]\n    pop(a)\n    sort(a)\n    print(a)\n".to_string()
        } else {
            format!("def main():\n    a = [{list}]\n    sort(a)\n    print(a)\n")
        };
        nums.sort();
        let expected = format!(
            "[{}]\n",
            nums.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ")
        );
        prop_assert_eq!(run_both(&src), expected);
    }

    /// Integer expression evaluation agrees between engines and with a
    /// direct Rust computation (checked arithmetic domain kept safe).
    #[test]
    fn prop_expression_eval(a in -1000i64..1000, b in 1i64..1000, c in -1000i64..1000) {
        let src = format!(
            "def main():\n    print(({a} + {b}) * 2 - {c} / {b} + {a} % {b})\n"
        );
        let expected = (a + b) * 2 - c / b + a % b;
        prop_assert_eq!(run_both(&src), format!("{expected}\n"));
    }

    /// String reversal via indexing agrees across engines.
    #[test]
    fn prop_string_chars(s in "[a-z]{0,12}") {
        let src = format!(
            "def main():\n    s = \"{s}\"\n    out = \"\"\n    for c in s:\n        out = c + out\n    print(out)\n"
        );
        let expected: String = s.chars().rev().collect();
        prop_assert_eq!(run_both(&src), format!("{expected}\n"));
    }
}
