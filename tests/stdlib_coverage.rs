//! Table-driven coverage of every builtin, from Tetra source, under BOTH
//! engines. Each case is a (snippet body, expected output) pair; the body
//! runs inside `main()`.

use tetra::Tetra;

fn run_snippet(body: &str) -> String {
    let indented: String = body.lines().map(|l| format!("    {l}\n")).collect();
    let src = format!("def main():\n{indented}");
    Tetra::compile(&src)
        .unwrap_or_else(|e| panic!("compile:\n{}\n--- source ---\n{src}", e.render()))
        .run_both(&[])
        .unwrap_or_else(|e| panic!("{e}\n--- source ---\n{src}"))
}

#[track_caller]
fn case(body: &str, expected: &str) {
    assert_eq!(run_snippet(body), expected, "snippet: {body}");
}

#[test]
fn core_and_len() {
    case("print(len(\"héllo\"))", "5\n");
    case("print(len([1, 2, 3]))", "3\n");
    case("print(len({1: 1, 2: 2}))", "2\n");
    case("print(len((1, 2, 3, 4)))", "4\n");
}

#[test]
fn math_builtins_behave() {
    case("print(abs(-7), \" \", abs(2.5))", "7 2.5\n");
    case("print(min(3, 9), \" \", max(3, 9))", "3 9\n");
    case("print(min(1.5, 1), \" \", max(1.5, 1))", "1.0 1.5\n");
    case("print(sqrt(81.0))", "9.0\n");
    case("print(pow(2, 16), \" \", pow(4.0, 0.5))", "65536 2.0\n");
    case("print(floor(3.9), \" \", ceil(3.1), \" \", round(3.5))", "3 4 4\n");
    case("print(floor(-1.5), \" \", ceil(-1.5))", "-2 -1\n");
    case("print(round(sin(0.0)), \" \", round(cos(0.0)))", "0 1\n");
    case("print(round(exp(0.0)), \" \", round(log(exp(1.0))))", "1 1\n");
    case("print(round(tan(0.0)))", "0\n");
}

#[test]
fn conversions_behave() {
    case("print(str(42) + \"!\")", "42!\n");
    case("print(str(2.5), \" \", str(true), \" \", str([1, 2]))", "2.5 true [1, 2]\n");
    case("print(int(\"123\") + 1)", "124\n");
    case("print(int(9.99), \" \", int(true), \" \", int(false))", "9 1 0\n");
    case("print(real(\"2.5\") * 2, \" \", real(3))", "5.0 3.0\n");
}

#[test]
fn string_builtins_behave() {
    case("print(upper(\"abc\"), lower(\"DEF\"))", "ABCdef\n");
    case("print(trim(\"  pad  \") + \"|\")", "pad|\n");
    case("print(substr(\"abcdef\", 1, 3))", "bcd\n");
    case("print(find(\"hello\", \"ll\"), \" \", find(\"hello\", \"z\"))", "2 -1\n");
    case("print(split(\"a:b:c\", \":\"))", "[\"a\", \"b\", \"c\"]\n");
    case("print(split(\"abc\", \"\"))", "[\"a\", \"b\", \"c\"]\n");
    case("print(join(split(\"x-y\", \"-\"), \"+\"))", "x+y\n");
    case("print(replace(\"banana\", \"na\", \"NA\"))", "baNANA\n");
    case(
        "print(starts_with(\"tetra\", \"tet\"), \" \", ends_with(\"tetra\", \"ra\"))",
        "true true\n",
    );
    case("print(contains(\"tetra\", \"etr\"))", "true\n");
}

#[test]
fn array_builtins_behave() {
    case("a = [2, 3]\nappend(a, 4)\ninsert(a, 0, 1)\nprint(a)", "[1, 2, 3, 4]\n");
    case("a = [1, 2, 3]\nprint(pop(a), \" \", a)", "3 [1, 2]\n");
    case("a = [9, 8, 7]\nprint(remove_at(a, 1), \" \", a)", "8 [9, 7]\n");
    case("a = [1, 2]\nclear(a)\nprint(a, \" \", len(a))", "[] 0\n");
    case("a = [3, 1, 2]\nsort(a)\nprint(a)", "[1, 2, 3]\n");
    case("a = [1, 2, 3]\nreverse(a)\nprint(a)", "[3, 2, 1]\n");
    case("a = [5, 6, 7]\nprint(index_of(a, 6), \" \", index_of(a, 9))", "1 -1\n");
    case("a = [1, 2]\nprint(contains(a, 2), \" \", contains(a, 5))", "true false\n");
    case("a = [1, 2]\nb = copy(a)\nappend(b, 3)\nprint(a, \" \", b)", "[1, 2] [1, 2, 3]\n");
    case("print(fill(3, \"x\"))", "[\"x\", \"x\", \"x\"]\n");
}

#[test]
fn aggregate_builtins_behave() {
    case("print(sum([1 ... 10]))", "55\n");
    case("print(sum([1.5, 2.5, 1]))", "5.0\n");
    case("print(min_of([5, 2, 9]), \" \", max_of([5, 2, 9]))", "2 9\n");
    case("print(min_of([\"pear\", \"apple\"]))", "apple\n");
    case("print(max_of([2.5, 7.0, 1.0]))", "7.0\n");
    // Aggregates inside try/catch: empty array errors are catchable.
    case(
        "a = [1]\npop(a)\ntry:\n    print(min_of(a))\ncatch err:\n    print(\"empty: \", err)",
        "empty: min_of() of an empty array\n",
    );
}

#[test]
fn user_sum_still_shadows_builtin_sum() {
    // Fig. II's guarantee: the user's `sum` wins over the builtin.
    let src = "\
def sum(nums [int]) int:
    return 777

def main():
    print(sum([1, 2, 3]))
";
    let out = Tetra::compile(src).unwrap().run_both(&[]).unwrap();
    assert_eq!(out, "777\n");
}

#[test]
fn dict_builtins_behave() {
    case("d = {\"b\": 2, \"a\": 1}\nprint(keys(d), \" \", values(d))", "[\"a\", \"b\"] [1, 2]\n");
    case("d = {1: \"x\"}\nprint(has_key(d, 1), \" \", has_key(d, 2))", "true false\n");
    case(
        "d = {1: \"x\", 2: \"y\"}\nprint(remove_key(d, 1), \" \", len(d), \" \", remove_key(d, 1))",
        "true 1 false\n",
    );
}

#[test]
fn runtime_service_builtins_behave() {
    case("gc()\nprint(\"collected\")", "collected\n");
    case("t = time_ms()\nprint(t >= 0)", "true\n");
    // thread_id in main: 0 under the interpreter; the VM reports 0 too.
    case("print(thread_id())", "0\n");
}

#[test]
fn random_builtins_are_in_range() {
    // Non-deterministic: assert properties, engine by engine.
    let src = "\
def main():
    r = random()
    assert r >= 0.0 and r < 1.0, \"random out of range\"
    n = rand_int(5, 10)
    assert n >= 5 and n <= 10, \"rand_int out of range\"
    print(\"ok\")
";
    let p = Tetra::compile(src).unwrap();
    let (out, _) = p.run_captured(&[]).unwrap();
    assert_eq!(out, "ok\n");
    let console = tetra::BufferConsole::new();
    p.simulate(console.clone()).unwrap();
    assert_eq!(console.output(), "ok\n");
}

#[test]
fn read_builtins_round_trip() {
    let src = "\
def main():
    i = read_int()
    r = read_real()
    s = read_string()
    b = read_bool()
    print(i, \" \", r, \" \", s, \" \", b)
";
    let p = Tetra::compile(src).unwrap();
    let input = &["7", "2.5", "words here", "true"];
    let (out, _) = p.run_captured(input).unwrap();
    assert_eq!(out, "7 2.5 words here true\n");
    let console = tetra::BufferConsole::with_input(input);
    p.simulate(console.clone()).unwrap();
    assert_eq!(console.output(), out);
}

#[test]
fn aggregates_compose_with_parallel_for() {
    // The idiomatic reduction: per-worker partials, then sum().
    let src = "\
def main():
    partials = fill(4, 0)
    parallel for w in [0 ... 3]:
        base = w * 250
        total = 0
        i = 1
        while i <= 250:
            total += base + i
            i += 1
        partials[w] = total
    print(sum(partials))
";
    let out = Tetra::compile(src).unwrap().run_both(&[]).unwrap();
    // sum(1..1000) + 250*(0+250+500+750)
    let expected: i64 =
        (1..=250).map(|i| [0, 250, 500, 750].iter().map(|b| b + i).sum::<i64>()).sum();
    assert_eq!(out, format!("{expected}\n"));
}
