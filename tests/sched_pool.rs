//! Scheduler-pool integration tests: load balancing on skewed loops,
//! pool-vs-`--no-pool` differentials (the pool must never change program
//! output), and nested-construct no-deadlock regressions.
//!
//! Observability sessions are process-global, so tests that read metrics
//! counters take `SESSION_GUARD` first (the harness runs tests on
//! parallel threads by default).

use proptest::prelude::*;
use std::sync::mpsc;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;
use tetra::{programs, BufferConsole, InterpConfig, RunStats, Tetra, VmConfig};

static SESSION_GUARD: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    SESSION_GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn compile(src: &str) -> Tetra {
    Tetra::compile(src).unwrap_or_else(|e| panic!("compile:\n{}", e.render()))
}

/// Run under the interpreter with an explicit pool setting, returning the
/// program output and the run stats (which carry the pool counters).
fn run_interp(src: &str, threads: usize, use_pool: bool) -> (String, RunStats) {
    let program = compile(src);
    let console = BufferConsole::new();
    let cfg = InterpConfig { worker_threads: threads, use_pool, ..InterpConfig::default() };
    let stats = program.run_with(cfg, console.clone()).unwrap_or_else(|e| panic!("run: {e}"));
    (console.output(), stats)
}

#[test]
fn skewed_workload_engages_stealing_and_balances() {
    let _guard = exclusive();
    let src = programs::skewed(64);
    let program = compile(&src);
    tetra::obs::session::begin(tetra::obs::session::Config { metrics: true, ..Default::default() });
    let console = BufferConsole::new();
    let cfg = InterpConfig { worker_threads: 4, use_pool: true, ..InterpConfig::default() };
    let stats = program.run_with(cfg, console.clone()).expect("skewed run");
    let trace = tetra::obs::session::end();

    // The last seeded range holds the quadratically heaviest items, so the
    // early-finishing workers must have stolen from it (or the helper must
    // have pitched in): the loop cannot have run as four static chunks.
    assert!(
        stats.pool.steals + stats.pool.submitter_tasks > 0,
        "no rebalancing on a 10x-skewed loop: {:?}",
        stats.pool
    );
    assert!(stats.pool.tasks_executed > 4, "ranges never split: {:?}", stats.pool);
    assert!(stats.pool.range_splits > 0, "adaptive splitting never ran: {:?}", stats.pool);

    // The same engagement must be visible to `tetra profile` through the
    // published obs counters.
    let tasks = trace.metrics.counters.get("pool.tasks").copied().unwrap_or(0);
    assert_eq!(tasks, stats.pool.tasks_executed, "obs counter mismatch");
    let steals = trace.metrics.counters.get("pool.steals").copied().unwrap_or(0);
    let submitter = trace.metrics.counters.get("pool.submitter_tasks").copied().unwrap_or(0);
    assert_eq!(steals + submitter, stats.pool.steals + stats.pool.submitter_tasks);

    // And the answer must still be right.
    let (expected, _) = run_interp(&src, 4, false);
    assert_eq!(console.output(), expected);
}

#[test]
fn no_pool_runs_produce_zero_pool_stats() {
    let (_, with_pool) = run_interp(&programs::skewed(16), 2, true);
    assert!(with_pool.pool.tasks_executed > 0);
    let (_, without) = run_interp(&programs::skewed(16), 2, false);
    assert_eq!(without.pool.tasks_executed, 0, "--no-pool must bypass the pool entirely");
    assert_eq!(without.pool.steals, 0);
}

/// Deterministic fixed programs whose output must be identical with and
/// without the pool, and with and without the VM's dynamic chunking.
#[test]
fn pool_and_no_pool_agree_on_fixed_corpus() {
    let corpus: Vec<String> = vec![
        programs::skewed(32),
        programs::locked_counter(200),
        programs::primes(500, 16),
        programs::FIG3_PARALLEL_MAX.to_string(),
        // An empty-range loop and a single-item loop (pool edge cases).
        "def main():\n    parallel for i in [1 ... 0]:\n        print(i)\n    print(\"done\")\n"
            .into(),
        "def main():\n    s = 0\n    parallel for i in [41]:\n        s = i + 1\n    print(s)\n"
            .into(),
    ];
    for src in &corpus {
        let (pooled, _) = run_interp(src, 4, true);
        let (spawned, _) = run_interp(src, 4, false);
        assert_eq!(pooled, spawned, "pool changed interpreter output for:\n{src}");

        let program = compile(src);
        let dyn_console = BufferConsole::new();
        let cfg = VmConfig { workers: 4, dynamic_chunking: true, ..VmConfig::default() };
        program.simulate_with(cfg, dyn_console.clone()).expect("vm dynamic");
        let static_console = BufferConsole::new();
        let cfg = VmConfig { workers: 4, dynamic_chunking: false, ..VmConfig::default() };
        program.simulate_with(cfg, static_console.clone()).expect("vm static");
        assert_eq!(
            dyn_console.output(),
            static_console.output(),
            "dynamic chunking changed VM output for:\n{src}"
        );
    }
}

#[test]
fn parallel_arms_beyond_the_worker_count_all_complete() {
    // Six arms on a two-worker pool: arms are threads semantically, so the
    // pool must escalate rather than queue them behind each other. Each
    // arm sleeps while holding its slot, so two-at-a-time execution would
    // take >300ms; mostly we care that it terminates with all effects.
    let src = "\
def main():
    hits = fill(6, 0)
    parallel:
        hits[0] = 1
        hits[1] = 1
        hits[2] = 1
        hits[3] = 1
        hits[4] = 1
        hits[5] = 1
    total = 0
    for h in hits:
        total += h
    print(total)
";
    let (out, _) = run_interp(src, 2, true);
    assert_eq!(out, "6\n");
}

#[test]
fn contending_arms_on_a_tiny_pool_all_run() {
    // Three arms contending on one lock with a ONE-worker pool: the two
    // arms beyond the pool's capacity must be escalated to spare threads
    // (not queued behind a blocked worker), or the lock handoffs — and the
    // deadlock-cycle detection exercised in tests/failure_injection.rs —
    // could never involve all arms at once.
    let src = "\
def main():
    stage = 0
    parallel:
        lock m:
            sleep(5)
            stage += 1
        lock m:
            sleep(5)
            stage += 1
        lock m:
            sleep(5)
            stage += 1
    print(stage)
";
    let (out, _) = run_interp(src, 1, true);
    assert_eq!(out, "3\n");
}

#[test]
fn nested_parallel_for_does_not_deadlock_the_pool() {
    // A parallel for inside a parallel for, on a small pool: the inner
    // submitters are pool workers, which must lend themselves as workers
    // (help-first) instead of parking. Run under a watchdog so a deadlock
    // fails the test instead of hanging the suite.
    let src = "\
def main():
    total = 0
    parallel for i in [1 ... 4]:
        parallel for j in [1 ... 8]:
            lock t:
                total += i * 10 + j
    print(total)
";
    let (tx, rx) = mpsc::channel();
    let src_owned = src.to_string();
    std::thread::spawn(move || {
        let (out, stats) = run_interp(&src_owned, 2, true);
        let _ = tx.send((out, stats));
    });
    let (out, stats) =
        rx.recv_timeout(Duration::from_secs(60)).expect("nested parallel for deadlocked the pool");
    // sum over i of (8*10*i + 36) = 80*(1+2+3+4) + 4*36 = 944.
    assert_eq!(out, "944\n");
    assert!(stats.pool.tasks_executed > 0);
}

#[test]
fn nested_parallel_arms_inside_parallel_for_complete() {
    let src = "\
def main():
    total = 0
    parallel for i in [1 ... 3]:
        parallel:
            lock t:
                total += i
            lock t:
                total += i
    print(total)
";
    let (tx, rx) = mpsc::channel();
    let src_owned = src.to_string();
    std::thread::spawn(move || {
        let _ = tx.send(run_interp(&src_owned, 2, true));
    });
    let (out, _) = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("nested parallel: inside parallel for deadlocked");
    assert_eq!(out, "12\n");
}

// ---------------------------------------------------------------------------
// Generated differential corpus: the pool must be invisible in program
// output. The generator mirrors tests/engine_fuzz.rs in miniature —
// deterministic arithmetic bodies run inside parallel constructs.

#[derive(Debug, Clone)]
enum MiniStmt {
    Assign(usize, i64),
    AddAssign(usize, i64),
    AddLoopVar(usize),
    ForLoop(i64, Vec<MiniStmt>),
}

fn var_name(i: usize) -> &'static str {
    ["a", "b", "c"][i % 3]
}

fn mini_stmt() -> BoxedStrategy<MiniStmt> {
    let leaf = prop_oneof![
        (0usize..3, -9i64..9).prop_map(|(v, k)| MiniStmt::Assign(v, k)),
        (0usize..3, -9i64..9).prop_map(|(v, k)| MiniStmt::AddAssign(v, k)),
        (0usize..3).prop_map(MiniStmt::AddLoopVar),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        (1i64..4, prop::collection::vec(inner, 1..3))
            .prop_map(|(n, body)| MiniStmt::ForLoop(n, body))
            .boxed()
    })
    .boxed()
}

fn render(stmts: &[MiniStmt], indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    if stmts.is_empty() {
        out.push_str(&format!("{pad}pass\n"));
        return;
    }
    for s in stmts {
        match s {
            MiniStmt::Assign(v, k) => out.push_str(&format!("{pad}{} = {}\n", var_name(*v), k)),
            MiniStmt::AddAssign(v, k) => out.push_str(&format!("{pad}{} += {}\n", var_name(*v), k)),
            MiniStmt::AddLoopVar(v) => out.push_str(&format!("{pad}{} += w\n", var_name(*v))),
            MiniStmt::ForLoop(n, body) => {
                out.push_str(&format!("{pad}for k in [1 ... {n}]:\n"));
                render(body, indent + 1, out);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated bodies inside a single-item `parallel for` (deterministic
    /// output): the pool path and the spawn path must print the same thing.
    #[test]
    fn generated_parallel_bodies_agree_with_and_without_pool(
        stmts in prop::collection::vec(mini_stmt(), 1..5)
    ) {
        let mut body = String::new();
        render(&stmts, 2, &mut body);
        let src = format!(
            "def main():\n    a = 1\n    b = 2\n    c = 3\n    \
             parallel for w in [7]:\n{body}    print(a, \" \", b, \" \", c)\n"
        );
        let (pooled, _) = run_interp(&src, 4, true);
        let (spawned, _) = run_interp(&src, 4, false);
        prop_assert_eq!(&pooled, &spawned, "pool changed output for:\n{}", src);
    }

    /// Order-independent accumulation over many items: every chunking —
    /// static spawn, pool, VM dynamic or static — must reach the same sum.
    #[test]
    fn generated_accumulations_agree_across_all_schedulers(
        n in 1i64..24,
        mult in 1i64..5,
    ) {
        let src = format!(
            "def main():\n    total = 0\n    parallel for i in [1 ... {n}]:\n        \
             lock t:\n            total += i * {mult}\n    print(total)\n"
        );
        let (pooled, _) = run_interp(&src, 3, true);
        let (spawned, _) = run_interp(&src, 3, false);
        prop_assert_eq!(&pooled, &spawned);
        let program = compile(&src);
        let c1 = BufferConsole::new();
        program
            .simulate_with(
                VmConfig { workers: 3, dynamic_chunking: true, ..VmConfig::default() },
                c1.clone(),
            )
            .expect("vm dynamic");
        let c2 = BufferConsole::new();
        program
            .simulate_with(
                VmConfig { workers: 3, dynamic_chunking: false, ..VmConfig::default() },
                c2.clone(),
            )
            .expect("vm static");
        prop_assert_eq!(c1.output(), c2.output());
        prop_assert_eq!(pooled, c2.output());
    }
}
