//! E1–E3: the paper's three code figures (§II), verbatim, executed under
//! both engines with outputs checked against what the paper's prose
//! promises.

use tetra::{programs, Tetra};

#[test]
fn e1_figure1_factorial_sequential() {
    let p = Tetra::compile(programs::FIG1_FACTORIAL).unwrap();
    // "a main function which handles I/O": prompt, read n, print n! .
    let out = p.run_both(&["5"]).unwrap();
    assert_eq!(out, "enter n: \n5! = 120\n");
    let out = p.run_both(&["0"]).unwrap();
    assert_eq!(out, "enter n: \n0! = 1\n");
    let out = p.run_both(&["12"]).unwrap();
    assert_eq!(out, "enter n: \n12! = 479001600\n");
}

#[test]
fn e2_figure2_parallel_sum_is_5050() {
    // "calculates the sum of the first 100 natural numbers in two threads"
    let p = Tetra::compile(programs::FIG2_PARALLEL_SUM).unwrap();
    assert_eq!(p.run_both(&[]).unwrap(), "5050\n");
}

#[test]
fn e2_parallel_block_actually_uses_two_threads() {
    let p = Tetra::compile(programs::FIG2_PARALLEL_SUM).unwrap();
    let (_, stats) = p.run_captured(&[]).unwrap();
    assert_eq!(stats.threads_spawned, 3, "main + the two parallel statements");
}

#[test]
fn e3_figure3_parallel_max_is_96() {
    let p = Tetra::compile(programs::FIG3_PARALLEL_MAX).unwrap();
    assert_eq!(p.run_both(&[]).unwrap(), "96\n");
}

#[test]
fn e3_lock_is_exercised() {
    let p = Tetra::compile(programs::FIG3_PARALLEL_MAX).unwrap();
    let (_, stats) = p.run_captured(&[]).unwrap();
    assert!(stats.lock_acquisitions.0 >= 1, "the lock block must be entered");
}

#[test]
fn e3_is_correct_for_adversarial_inputs() {
    // The double-checked lock must find the max wherever it hides.
    for nums in [
        "[5]",
        "[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]",
        "[10, 9, 8, 7, 6, 5, 4, 3, 2, 1]",
        "[7, 7, 7, 7]",
        "[0, 1000000, 3]",
    ] {
        let src = format!(
            "\
def max(nums [int]) int:
    largest = 0
    parallel for num in nums:
        if num > largest:
            lock largest:
                if num > largest:
                    largest = num
    return largest

def main():
    print(max({nums}))
"
        );
        let p = Tetra::compile(&src).unwrap();
        let expected: i64 = nums
            .trim_matches(['[', ']'])
            .split(',')
            .map(|s| s.trim().parse::<i64>().unwrap())
            .max()
            .unwrap();
        assert_eq!(p.run_both(&[]).unwrap(), format!("{expected}\n"), "input {nums}");
    }
}

#[test]
fn figure_sources_round_trip_through_the_pretty_printer() {
    for src in [programs::FIG1_FACTORIAL, programs::FIG2_PARALLEL_SUM, programs::FIG3_PARALLEL_MAX]
    {
        let parsed = tetra::parser::parse(src).unwrap();
        let printed = tetra::ast::pretty::to_source(&parsed);
        let reparsed = tetra::parser::parse(&printed).unwrap();
        assert_eq!(printed, tetra::ast::pretty::to_source(&reparsed));
        // And the pretty-printed program still runs identically.
        let p = Tetra::compile(&printed).unwrap();
        if !src.contains("read_int") {
            p.run_both(&[]).unwrap();
        }
    }
}
