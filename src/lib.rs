//! Support library for the tetra-rs integration tests and runnable
//! examples. The real system lives in the `crates/` workspace; see the
//! [`tetra`] facade crate.

/// Load one of the `.tet` example programs shipped in `examples/tetra/`.
pub fn example_source(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/tetra").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read example {}: {e}", path.display()))
}

/// Names of every shipped `.tet` example.
pub fn example_names() -> Vec<String> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/tetra");
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .expect("examples/tetra exists")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".tet"))
        .collect();
    names.sort();
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_shipped_examples_compile() {
        let names = example_names();
        assert!(names.len() >= 6, "expected the full example set, got {names:?}");
        for name in names {
            let src = example_source(&name);
            tetra::Tetra::compile(&src)
                .unwrap_or_else(|e| panic!("{name} does not compile:\n{}", e.render()));
        }
    }
}
