//! # tetra
//!
//! A from-scratch Rust implementation of **Tetra**, the educational
//! parallel programming language of Finlayson et al., *Introducing Tetra:
//! An Educational Parallel Programming System* (IPDPSW 2015).
//!
//! Tetra is a Python-like, statically typed, garbage-collected language in
//! which parallelism is a first-class language feature: `parallel:`,
//! `background:`, `parallel for` and `lock name:` blocks. This facade crate
//! ties the whole system together:
//!
//! | stage | crate |
//! |-------|-------|
//! | lexer (significant whitespace) | [`lexer`] |
//! | recursive-descent parser | [`parser`] |
//! | AST + types | [`ast`] |
//! | type checking & local inference | [`types`] |
//! | runtime: hand-rolled GC, frames, named locks | [`runtime`] |
//! | standard library | [`stdlib`] |
//! | tree-walking interpreter (real OS threads) | [`interp`] |
//! | bytecode compiler + deterministic VM / simulator | [`vm`] |
//! | parallel debugger engine + race detection | [`debugger`] |
//! | tracing, metrics & profiling | [`obs`] |
//!
//! ## Quickstart
//!
//! ```
//! use tetra::Tetra;
//!
//! let program = Tetra::compile(
//!     "def main():\n    parallel:\n        print(\"left\")\n        print(\"right\")\n",
//! ).unwrap();
//! let (output, _stats) = program.run_captured(&[]).unwrap();
//! assert!(output.contains("left") && output.contains("right"));
//! ```

pub use tetra_ast as ast;
pub use tetra_debugger as debugger;
pub use tetra_interp as interp;
pub use tetra_lexer as lexer;
pub use tetra_obs as obs;
pub use tetra_parser as parser;
pub use tetra_runtime as runtime;
pub use tetra_stdlib as stdlib;
pub use tetra_types as types;
pub use tetra_vm as vm;

pub mod experiments;
pub mod programs;

use std::sync::Arc;
pub use tetra_interp::{InterpConfig, RunStats};
use tetra_lexer::Diagnostic;
pub use tetra_runtime::{BufferConsole, ConsoleRef, GcStats, HeapConfig, RuntimeError, StdConsole};
use tetra_types::TypedProgram;
pub use tetra_vm::{SimStats, VmConfig};

/// One or more front-end diagnostics, with the source retained so they can
/// be rendered with carets.
#[derive(Debug, Clone)]
pub struct CompileError {
    pub diagnostics: Vec<Diagnostic>,
    source: String,
}

impl CompileError {
    /// Render every diagnostic against the source, rustc-style.
    pub fn render(&self) -> String {
        self.diagnostics.iter().map(|d| d.render(&self.source)).collect::<Vec<_>>().join("\n\n")
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CompileError {}

/// A compiled (parsed + type-checked) Tetra program, ready to run under
/// either engine.
#[derive(Debug)]
pub struct Tetra {
    typed: TypedProgram,
    source: String,
}

impl Tetra {
    /// Parse and type-check Tetra source.
    pub fn compile(source: &str) -> Result<Tetra, CompileError> {
        let program = tetra_parser::parse(source)
            .map_err(|d| CompileError { diagnostics: vec![d], source: source.to_string() })?;
        let typed = tetra_types::check(program)
            .map_err(|diagnostics| CompileError { diagnostics, source: source.to_string() })?;
        Ok(Tetra { typed, source: source.to_string() })
    }

    /// The checked program (AST + type tables).
    pub fn typed(&self) -> &TypedProgram {
        &self.typed
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Run under the real-thread interpreter with the process console.
    pub fn run(&self) -> Result<RunStats, RuntimeError> {
        self.run_with(InterpConfig::default(), Arc::new(StdConsole))
    }

    /// Run under the real-thread interpreter with explicit configuration
    /// and console.
    pub fn run_with(
        &self,
        config: InterpConfig,
        console: ConsoleRef,
    ) -> Result<RunStats, RuntimeError> {
        let interp = tetra_interp::Interp::new(self.typed.clone(), config, console);
        interp.run()
    }

    /// Run with scripted input, capturing output — the convenience most
    /// tests and examples use.
    pub fn run_captured(&self, input: &[&str]) -> Result<(String, RunStats), RuntimeError> {
        let console = BufferConsole::with_input(input);
        let stats = self.run_with(InterpConfig::default(), console.clone())?;
        Ok((console.output(), stats))
    }

    /// Run under a debugger hook (per-thread stepping, tracing, race
    /// detection). The returned interpreter is not yet running — call
    /// [`tetra_interp::Interp::run`], typically from another thread.
    pub fn debug(
        &self,
        config: InterpConfig,
        console: ConsoleRef,
        hook: Arc<dyn tetra_interp::hooks::DebugHook>,
    ) -> tetra_interp::Interp {
        tetra_interp::Interp::with_hook(self.typed.clone(), config, console, hook)
    }

    /// Compile to bytecode (the future-work "native compiler" path).
    pub fn bytecode(&self) -> tetra_vm::CompiledProgram {
        tetra_vm::compile(&self.typed)
    }

    /// Constant-fold the program (semantics-preserving, error-preserving)
    /// and return the optimized program plus fold statistics.
    pub fn optimized(&self) -> Result<(Tetra, tetra_vm::FoldStats), CompileError> {
        let (folded, stats) = tetra_vm::fold_program(&self.typed.program);
        let typed = tetra_types::check(folded)
            .map_err(|diagnostics| CompileError { diagnostics, source: self.source.clone() })?;
        Ok((Tetra { typed, source: self.source.clone() }, stats))
    }

    /// Run deterministically on the VM scheduler with default settings.
    pub fn simulate(&self, console: ConsoleRef) -> Result<SimStats, RuntimeError> {
        self.simulate_with(VmConfig::default(), console)
    }

    /// Run deterministically on the VM scheduler.
    pub fn simulate_with(
        &self,
        config: VmConfig,
        console: ConsoleRef,
    ) -> Result<SimStats, RuntimeError> {
        let program = self.bytecode();
        tetra_vm::run(&program, config, console)
    }

    /// Run the program under BOTH engines with the same input and assert
    /// they produce identical output (the cross-engine oracle used by the
    /// integration suite). Returns the common output.
    pub fn run_both(&self, input: &[&str]) -> Result<String, EngineMismatch> {
        let (interp_out, _) =
            self.run_captured(input).map_err(|e| EngineMismatch::Runtime("interpreter", e))?;
        let console = BufferConsole::with_input(input);
        self.simulate(console.clone()).map_err(|e| EngineMismatch::Runtime("vm", e))?;
        let vm_out = console.output();
        if interp_out != vm_out {
            return Err(EngineMismatch::Diverged { interp: interp_out, vm: vm_out });
        }
        Ok(interp_out)
    }
}

/// Failure modes of [`Tetra::run_both`].
#[derive(Debug)]
pub enum EngineMismatch {
    Runtime(&'static str, RuntimeError),
    Diverged { interp: String, vm: String },
}

impl std::fmt::Display for EngineMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineMismatch::Runtime(engine, e) => write!(f, "{engine}: {e}"),
            EngineMismatch::Diverged { interp, vm } => {
                write!(f, "engines diverged:\n--- interpreter ---\n{interp}\n--- vm ---\n{vm}")
            }
        }
    }
}

impl std::error::Error for EngineMismatch {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_and_run_captured() {
        let p = Tetra::compile("def main():\n    print(21 * 2)\n").unwrap();
        let (out, stats) = p.run_captured(&[]).unwrap();
        assert_eq!(out, "42\n");
        assert_eq!(stats.threads_spawned, 1);
    }

    #[test]
    fn compile_error_renders_with_caret() {
        let err = Tetra::compile("def main():\n    x = 1 +\n").unwrap_err();
        let rendered = err.render();
        assert!(rendered.contains("^"), "{rendered}");
        assert!(rendered.contains("expected an expression"), "{rendered}");
    }

    #[test]
    fn type_errors_are_collected() {
        let err = Tetra::compile("def main():\n    x = 1 + \"a\"\n    y = nope()\n").unwrap_err();
        assert_eq!(err.diagnostics.len(), 2);
    }

    #[test]
    fn both_engines_agree_on_paper_figures() {
        for (src, input) in [
            (programs::FIG1_FACTORIAL, &["6"][..]),
            (programs::FIG2_PARALLEL_SUM, &[][..]),
            (programs::FIG3_PARALLEL_MAX, &[][..]),
        ] {
            let p = Tetra::compile(src).unwrap();
            let out = p.run_both(input).unwrap_or_else(|e| panic!("{e}"));
            assert!(!out.is_empty());
        }
    }

    #[test]
    fn figure_outputs_match_paper() {
        let p = Tetra::compile(programs::FIG2_PARALLEL_SUM).unwrap();
        assert_eq!(p.run_both(&[]).unwrap(), "5050\n");
        let p = Tetra::compile(programs::FIG3_PARALLEL_MAX).unwrap();
        assert_eq!(p.run_both(&[]).unwrap(), "96\n");
    }

    #[test]
    fn primes_workload_agrees_across_engines() {
        let src = programs::primes(500, 8);
        let p = Tetra::compile(&src).unwrap();
        let out = p.run_both(&[]).unwrap();
        assert_eq!(out, "primes below 500: 95\n");
    }

    #[test]
    fn tsp_workload_agrees_across_engines() {
        let src = programs::tsp(6);
        let p = Tetra::compile(&src).unwrap();
        let out = p.run_both(&[]).unwrap();
        assert!(out.starts_with("best tour: "), "{out}");
    }

    #[test]
    fn loop_var_shadowing_in_parallel_for_is_worker_private_in_both_engines() {
        // A sequential `for v` inside a `parallel for` body rebinds `v` in
        // the worker's private frame each iteration — it must never store
        // through to an outer `v`, in either engine. (The VM compiler used
        // to resolve the loop variable across the worker-scope boundary and
        // emit a shared StoreOuter here.)
        let src = "\
def main():
    v = 100
    total = 0
    parallel for i in [1 ... 4]:
        s = 0
        for v in [1 ... 3]:
            s = s + v
        lock acc:
            total = total + s
    print(v)
    print(total)
";
        let p = Tetra::compile(src).unwrap();
        assert_eq!(p.run_both(&[]).unwrap(), "100\n24\n");
    }

    #[test]
    fn deadlock_program_is_detected_not_hung() {
        let p = Tetra::compile(programs::DEADLOCK).unwrap();
        let err = p.run_captured(&[]).unwrap_err();
        assert_eq!(err.kind, tetra_runtime::ErrorKind::Deadlock);
    }

    #[test]
    fn bytecode_is_inspectable() {
        let p = Tetra::compile(programs::FIG3_PARALLEL_MAX).unwrap();
        let bc = p.bytecode();
        assert!(bc.instruction_count() > 20);
        assert!(tetra_vm::disassemble(&bc).contains("parallel.for"));
    }
}
