//! The experiment harness: regenerates the numbers of the paper's
//! evaluation (§IV) — see DESIGN.md §3 for the experiment index.
//!
//! Speedup is measured two ways:
//! * **virtual time** on the deterministic VM scheduler (the documented
//!   substitution for the paper's 8-core testbed — reproducible anywhere);
//! * **wall clock** on the real-thread interpreter (meaningful only on a
//!   multi-core host; reported as-is for honesty).

use crate::{CompileError, Tetra};
use tetra_runtime::{BufferConsole, RuntimeError};
use tetra_vm::{CostModel, VmConfig};

/// One row of a speedup table (the paper's headline numbers are the T=8
/// row: ≈5× speedup, 62.5 % efficiency).
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    pub threads: usize,
    /// Virtual elapsed time (simulation units) or wall nanoseconds.
    pub elapsed: u64,
    pub speedup: f64,
    pub efficiency: f64,
}

/// Render rows the way the CLI and EXPERIMENTS.md print them.
pub fn render_table(title: &str, rows: &[SpeedupRow]) -> String {
    let mut out = format!("{title}\n  T    elapsed       speedup   efficiency\n");
    for r in rows {
        out.push_str(&format!(
            "  {:<4} {:<13} {:<9.2} {:.1}%\n",
            r.threads,
            r.elapsed,
            r.speedup,
            r.efficiency * 100.0
        ));
    }
    out
}

fn rows_from(elapsed: Vec<(usize, u64)>) -> Vec<SpeedupRow> {
    let base = elapsed.first().map(|(_, e)| *e).unwrap_or(1).max(1);
    elapsed
        .into_iter()
        .map(|(threads, e)| {
            let speedup = base as f64 / e.max(1) as f64;
            SpeedupRow { threads, elapsed: e, speedup, efficiency: speedup / threads as f64 }
        })
        .collect()
}

/// Virtual-time speedup sweep: run `src` under the deterministic scheduler
/// with each worker count (the first entry is the baseline, normally 1).
pub fn simulated_speedup(src: &str, threads: &[usize]) -> Result<Vec<SpeedupRow>, ExperimentError> {
    simulated_speedup_with(src, threads, CostModel::default())
}

/// Like [`simulated_speedup`] with a custom cost model (GIL ablation,
/// contention sensitivity sweeps).
pub fn simulated_speedup_with(
    src: &str,
    threads: &[usize],
    cost: CostModel,
) -> Result<Vec<SpeedupRow>, ExperimentError> {
    let program = Tetra::compile(src)?;
    let mut elapsed = Vec::with_capacity(threads.len());
    for &t in threads {
        let console = BufferConsole::new();
        let cfg = VmConfig { workers: t, cost: cost.clone(), ..VmConfig::default() };
        let stats = program.simulate_with(cfg, console)?;
        elapsed.push((t, stats.virtual_elapsed));
    }
    Ok(rows_from(elapsed))
}

/// Wall-clock speedup sweep on the real-thread interpreter.
pub fn wallclock_speedup(src: &str, threads: &[usize]) -> Result<Vec<SpeedupRow>, ExperimentError> {
    let program = Tetra::compile(src)?;
    let mut elapsed = Vec::with_capacity(threads.len());
    for &t in threads {
        let console = BufferConsole::new();
        let config = crate::InterpConfig { worker_threads: t, ..crate::InterpConfig::default() };
        let start = std::time::Instant::now();
        program.run_with(config, console)?;
        elapsed.push((t, start.elapsed().as_nanos() as u64));
    }
    Ok(rows_from(elapsed))
}

/// Errors from the harness.
#[derive(Debug)]
pub enum ExperimentError {
    Compile(CompileError),
    Runtime(RuntimeError),
}

impl From<CompileError> for ExperimentError {
    fn from(e: CompileError) -> Self {
        ExperimentError::Compile(e)
    }
}

impl From<RuntimeError> for ExperimentError {
    fn from(e: RuntimeError) -> Self {
        ExperimentError::Runtime(e)
    }
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Compile(e) => write!(f, "{e}"),
            ExperimentError::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    #[test]
    fn primes_speedup_has_paper_shape() {
        // E5: speedup grows with T and lands near the paper's ≈5× at T=8
        // (62.5 % efficiency). Small limit keeps the test fast; the curve
        // shape is limit-independent.
        let src = programs::primes(2_000, 64);
        let rows = simulated_speedup(&src, &[1, 2, 4, 8]).unwrap();
        assert!((rows[1].speedup - 2.0).abs() < 0.4, "T=2: {:?}", rows);
        assert!(rows[2].speedup > 3.0, "T=4: {:?}", rows);
        assert!(
            rows[3].speedup > 3.8 && rows[3].speedup < 6.5,
            "T=8 should be near the paper's 5x: {:?}",
            rows
        );
        assert!(
            rows[3].efficiency > 0.45 && rows[3].efficiency < 0.85,
            "efficiency near 62.5%: {:?}",
            rows
        );
    }

    #[test]
    fn gil_ablation_is_flat() {
        // E8: with a global interpreter lock no speedup is possible.
        let src = programs::primes(800, 32);
        let cost = CostModel { gil: true, ..CostModel::default() };
        let rows = simulated_speedup_with(&src, &[1, 4, 8], cost).unwrap();
        for r in &rows[1..] {
            assert!((0.75..1.25).contains(&r.speedup), "GIL must pin speedup at ~1x: {rows:?}");
        }
    }

    #[test]
    fn render_table_formats_rows() {
        let rows = vec![SpeedupRow { threads: 8, elapsed: 100, speedup: 5.0, efficiency: 0.625 }];
        let t = render_table("primes", &rows);
        assert!(t.contains("primes"), "{t}");
        assert!(t.contains("62.5%"), "{t}");
    }
}
