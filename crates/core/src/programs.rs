//! The Tetra programs used throughout the evaluation — including the two
//! workloads of the paper's §IV measurement ("one which calculates the
//! first million primes, and one which solves an instance of the travelling
//! salesman problem") and the paper's three code figures.

/// Fig. I — the sequential factorial program (verbatim from the paper).
pub const FIG1_FACTORIAL: &str = "\
# a simple factorial function
def fact(x int) int:
    if x == 0:
        return 1
    else:
        return x * fact(x - 1)

# a main function which handles I/O
def main():
    print(\"enter n: \")
    n = read_int()
    print(n, \"! = \", fact(n))
";

/// Fig. II — the two-thread parallel sum (verbatim from the paper).
pub const FIG2_PARALLEL_SUM: &str = "\
# sum a range of numbers
def sumr(nums [int], a int, b int) int:
    total = 0
    i = a
    while i <= b:
        total += nums[i]
        i += 1
    return total

# sum an array of numbers in parallel
def sum(nums [int]) int:
    mid = len(nums) / 2
    parallel:
        a = sumr(nums, 0, mid - 1)
        b = sumr(nums, mid, len(nums) - 1)
    return a + b

# print the sum of 1 through 100
def main():
    print(sum([1 ... 100]))
";

/// Fig. III — parallel max with a double-checked lock (verbatim).
pub const FIG3_PARALLEL_MAX: &str = "\
# find the max of an array
def max(nums [int]) int:
    largest = 0
    parallel for num in nums:
        if num > largest:
            lock largest:
                if num > largest:
                    largest = num
    return largest

# run it on some numbers
def main():
    nums = [18, 32, 96, 48, 60]
    print(max(nums))
";

/// §IV primes workload: count primes below `limit` by trial division,
/// split across a `parallel for` over candidate blocks. The paper computes
/// "the first million primes"; the benchmark harness scales `limit` to the
/// time budget — the *shape* of the speedup curve is limit-independent.
pub fn primes(limit: i64, blocks: i64) -> String {
    format!(
        "\
# count primes in [lo, hi) by trial division
def count_block(lo int, hi int) int:
    count = 0
    n = lo
    while n < hi:
        if is_prime(n):
            count += 1
        n += 1
    return count

def is_prime(n int) bool:
    if n < 2:
        return false
    if n < 4:
        return true
    if n % 2 == 0:
        return false
    d = 3
    while d * d <= n:
        if n % d == 0:
            return false
        d += 2
    return true

def main():
    limit = {limit}
    blocks = {blocks}
    per = limit / blocks + 1
    counts = fill(blocks, 0)
    parallel for b in [0 ... blocks - 1]:
        lo = b * per
        hi = min(lo + per, limit)
        counts[b] = count_block(lo, hi)
    total = 0
    for c in counts:
        total += c
    print(\"primes below \", limit, \": \", total)
"
    )
}

/// §IV travelling-salesman workload: exhaustive branch-and-bound over a
/// deterministic pseudo-random distance matrix, parallelized over the
/// first-hop city (one `parallel for` iteration per subtree, as the
/// natural Tetra decomposition). `n` is the city count (n! growth — keep
/// it small).
pub fn tsp(n: i64) -> String {
    format!(
        "\
# deterministic LCG so every run and engine sees the same matrix
def make_matrix(n int) [[int]]:
    m = fill(n, [0])
    seed = 12345
    i = 0
    while i < n:
        row = fill(n, 0)
        j = 0
        while j < n:
            seed = (seed * 1103515245 + 12345) % 2147483648
            if i == j:
                row[j] = 0
            else:
                row[j] = seed % 90 + 10
            j += 1
        m[i] = row
        i += 1
    return m

# best tour cost from `city` having visited `visited`, current cost `cost`
def solve(m [[int]], visited [bool], city int, cost int, remaining int, best int) int:
    if cost >= best:
        return best
    if remaining == 0:
        total = cost + m[city][0]
        if total < best:
            return total
        return best
    next = 1
    while next < len(visited):
        if not visited[next]:
            visited[next] = true
            best = solve(m, visited, next, cost + m[city][next], remaining - 1, best)
            visited[next] = false
        next += 1
    return best

def subtree(m [[int]], first int, n int) int:
    visited = fill(n, false)
    visited[0] = true
    visited[first] = true
    return solve(m, visited, first, m[0][first], n - 2, 1000000)

def main():
    n = {n}
    m = make_matrix(n)
    results = fill(n, 1000000)
    parallel for first in [1 ... n - 1]:
        results[first] = subtree(m, first, n)
    best = 1000000
    for r in results:
        if r < best:
            best = r
    print(\"best tour: \", best)
"
    )
}

/// E10 skewed-loop workload: item `i` costs ~i² inner iterations, so a
/// static contiguous chunking serializes on the last (heaviest) chunk
/// while the work-stealing pool / the VM's dynamic chunking balance the
/// tail. `n` is the item count.
pub fn skewed(n: i64) -> String {
    format!(
        "\
# quadratic per-item work: sum 1 through i*i
def work(i int) int:
    s = 0
    j = 1
    while j <= i * i:
        s += j
        j += 1
    return s

def main():
    n = {n}
    results = fill(n, 0)
    parallel for i in [1 ... n]:
        results[i - 1] = work(i)
    total = 0
    for r in results:
        total += r
    print(\"skewed total: \", total)
"
    )
}

/// E7 lock-contention microbenchmark: `iters` locked increments spread
/// over the workers.
pub fn locked_counter(iters: i64) -> String {
    format!(
        "\
def main():
    count = 0
    parallel for i in [1 ... {iters}]:
        lock c:
            count += 1
    print(count)
"
    )
}

/// The unlocked, racy variant (race-detector demos and the E7 ablation).
pub fn racy_counter(iters: i64) -> String {
    format!(
        "\
def main():
    count = 0
    parallel for i in [1 ... {iters}]:
        count += 1
    print(count)
"
    )
}

/// A guaranteed deadlock: two threads take two locks in opposite orders.
/// Used by the debugger demos and failure-injection tests.
pub const DEADLOCK: &str = "\
def left():
    lock a:
        sleep(20)
        lock b:
            pass

def right():
    lock b:
        sleep(20)
        lock a:
            pass

def main():
    parallel:
        left()
        right()
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_parse_and_check() {
        for (name, src) in [
            ("fig1", FIG1_FACTORIAL.to_string()),
            ("fig2", FIG2_PARALLEL_SUM.to_string()),
            ("fig3", FIG3_PARALLEL_MAX.to_string()),
            ("primes", primes(1000, 4)),
            ("tsp", tsp(6)),
            ("locked", locked_counter(10)),
            ("racy", racy_counter(10)),
            ("deadlock", DEADLOCK.to_string()),
        ] {
            let parsed =
                tetra_parser::parse(&src).unwrap_or_else(|e| panic!("{name} parse: {e}\n{src}"));
            tetra_types::check(parsed).unwrap_or_else(|e| panic!("{name} check: {e:?}"));
        }
    }
}
