//! Model-based property testing of the garbage collector: a random
//! sequence of operations (allocate-and-keep, allocate garbage, drop a
//! root, mutate an array, force a collection) is executed against the real
//! heap while a Rust-side model tracks what every kept value must contain.
//! After every collection, reality must match the model exactly.

use proptest::prelude::*;
use tetra_runtime::{Heap, HeapConfig, Object, RootSink, RootSource, Value};

#[derive(Debug, Clone)]
enum Op {
    /// Allocate a string and keep it rooted.
    KeepString(u8),
    /// Allocate a string and immediately forget it.
    Garbage(u8),
    /// Allocate an array holding copies of the current roots.
    KeepArrayOfRoots,
    /// Drop the i-th root (modulo live roots).
    DropRoot(u8),
    /// Push an int into the i-th kept array, if any.
    PushIntoArray(u8, i8),
    /// Force a full collection.
    Collect,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::KeepString),
        any::<u8>().prop_map(Op::Garbage),
        Just(Op::KeepArrayOfRoots),
        any::<u8>().prop_map(Op::DropRoot),
        (any::<u8>(), any::<i8>()).prop_map(|(i, v)| Op::PushIntoArray(i, v)),
        Just(Op::Collect),
    ]
}

/// The Rust-side expectation for one rooted value.
#[derive(Debug, Clone)]
enum Model {
    Str(String),
    /// Expected (recursive) display of the array.
    Array(Vec<ModelElem>),
}

#[derive(Debug, Clone)]
enum ModelElem {
    Int(i64),
    Str(String),
    /// Nested arrays are aliased (the same object may also be a root and
    /// grow later), so only the type is checked here; contents are checked
    /// through their own root entry.
    Array,
}

struct Roots(Vec<Value>);
impl RootSource for Roots {
    fn roots(&self, sink: &mut RootSink) {
        for v in &self.0 {
            sink.value(*v);
        }
    }
}

fn check(values: &[Value], models: &[Model]) {
    assert_eq!(values.len(), models.len());
    for (v, m) in values.iter().zip(models) {
        match m {
            Model::Str(expected) => {
                assert_eq!(v.as_str(), Some(expected.as_str()), "string root corrupted");
            }
            Model::Array(elems) => {
                let Value::Obj(r) = v else { panic!("array root lost its object") };
                let Object::Array(items) = r.object() else { panic!("array root changed type") };
                let items = items.lock();
                assert_eq!(items.len(), elems.len(), "array length corrupted");
                for (item, elem) in items.iter().zip(elems) {
                    match elem {
                        ModelElem::Int(expected) => {
                            assert_eq!(item.as_int(), Some(*expected), "int element corrupted")
                        }
                        ModelElem::Str(expected) => {
                            assert_eq!(
                                item.as_str(),
                                Some(expected.as_str()),
                                "string element corrupted"
                            )
                        }
                        ModelElem::Array => {
                            let Value::Obj(r) = item else { panic!("nested array lost") };
                            let Object::Array(_) = r.object() else {
                                panic!("nested array changed type")
                            };
                        }
                    }
                }
            }
        }
    }
}

fn run_ops(ops: &[Op], stress: bool) {
    let heap = Heap::new(HeapConfig {
        initial_threshold: 1 << 12,
        min_threshold: 1 << 10,
        stress,
        ..HeapConfig::default()
    });
    let m = heap.register_mutator();
    let mut values: Vec<Value> = Vec::new();
    let mut models: Vec<Model> = Vec::new();
    let mut counter = 0u64;
    for op in ops {
        match op {
            Op::KeepString(seed) => {
                counter += 1;
                let text = format!("kept-{seed}-{counter}");
                let v = heap.alloc_str(&m, &Roots(values.clone()), text.clone());
                values.push(v);
                models.push(Model::Str(text));
            }
            Op::Garbage(seed) => {
                counter += 1;
                let _ =
                    heap.alloc_str(&m, &Roots(values.clone()), format!("garbage-{seed}-{counter}"));
            }
            Op::KeepArrayOfRoots => {
                let contents: Vec<Value> = values.clone();
                let elems: Vec<ModelElem> = models
                    .iter()
                    .map(|mm| match mm {
                        Model::Str(s) => ModelElem::Str(s.clone()),
                        Model::Array(_) => ModelElem::Array,
                    })
                    .collect();
                let v = heap.alloc_array(&m, &Roots(values.clone()), contents);
                values.push(v);
                models.push(Model::Array(elems));
            }
            Op::DropRoot(i) => {
                if !values.is_empty() {
                    let idx = *i as usize % values.len();
                    values.remove(idx);
                    models.remove(idx);
                }
            }
            Op::PushIntoArray(i, x) => {
                let arrays: Vec<usize> = models
                    .iter()
                    .enumerate()
                    .filter(|(_, mm)| matches!(mm, Model::Array(_)))
                    .map(|(idx, _)| idx)
                    .collect();
                if !arrays.is_empty() {
                    let idx = arrays[*i as usize % arrays.len()];
                    if let Value::Obj(r) = values[idx] {
                        if let Object::Array(items) = r.object() {
                            items.lock().push(Value::Int(*x as i64));
                        }
                    }
                    if let Model::Array(elems) = &mut models[idx] {
                        elems.push(ModelElem::Int(*x as i64));
                    }
                }
            }
            Op::Collect => {
                heap.collect_now(&m, &Roots(values.clone()));
                check(&values, &models);
            }
        }
    }
    heap.collect_now(&m, &Roots(values.clone()));
    check(&values, &models);
    // Everything unrooted must eventually be freed: drop all roots and
    // collect; only then is the heap empty.
    values.clear();
    heap.collect_now(&m, &Roots(values));
    assert_eq!(heap.stats().live_objects, 0, "heap must drain after dropping all roots");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn heap_matches_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        run_ops(&ops, false);
    }

    #[test]
    fn heap_matches_model_under_stress(ops in prop::collection::vec(op_strategy(), 1..40)) {
        run_ops(&ops, true);
    }
}

#[test]
fn model_smoke() {
    run_ops(
        &[
            Op::KeepString(1),
            Op::KeepArrayOfRoots,
            Op::Garbage(2),
            Op::Collect,
            Op::PushIntoArray(0, 7),
            Op::DropRoot(0),
            Op::Collect,
            Op::KeepArrayOfRoots,
            Op::Collect,
        ],
        true,
    );
}

/// Forcing collections must record wall-clock pause time: `pause_total_us`
/// and `pause_max_us` round up to at least 1µs per real collection, so both
/// are nonzero whenever `collections` is.
#[test]
fn collections_record_pause_times() {
    let heap = Heap::new(HeapConfig {
        initial_threshold: 1 << 12,
        min_threshold: 1 << 10,
        ..HeapConfig::default()
    });
    let m = heap.register_mutator();
    let mut roots: Vec<Value> = Vec::new();
    for i in 0..64 {
        let v = heap.alloc_str(&m, &Roots(roots.clone()), format!("pause-{i}"));
        roots.push(v);
    }
    for _ in 0..4 {
        heap.collect_now(&m, &Roots(roots.clone()));
    }
    let stats = heap.stats();
    assert!(stats.collections >= 4, "collect_now must count: {stats:?}");
    assert!(stats.pause_total_us > 0, "total GC pause time must be recorded: {stats:?}");
    assert!(stats.pause_max_us > 0, "max GC pause time must be recorded: {stats:?}");
    assert!(
        stats.pause_total_us >= stats.pause_max_us,
        "total pause must dominate the max single pause: {stats:?}"
    );
}
