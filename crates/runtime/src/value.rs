//! Runtime values and heap objects.
//!
//! Tetra values are small copyable handles: scalars are stored inline and
//! compound values (`string`, `[T]`, `{K: V}`, tuples) live on the
//! garbage-collected [`crate::heap::Heap`] behind a [`GcRef`].

use parking_lot::Mutex;
use std::collections::HashMap;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, Ordering};

/// A Tetra runtime value. `Copy`-cheap (16 bytes) so it can be passed around
/// and stored in frames freely.
#[derive(Debug, Clone, Copy)]
pub enum Value {
    /// The unit value `none`.
    None,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Real(f64),
    /// Boolean.
    Bool(bool),
    /// A heap object (string, array, dict or tuple).
    Obj(GcRef),
}

impl Value {
    /// The Tetra-visible type name, used in runtime error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::None => "none",
            Value::Int(_) => "int",
            Value::Real(_) => "real",
            Value::Bool(_) => "bool",
            Value::Obj(r) => match r.object() {
                Object::Str(_) => "string",
                Object::Array(_) => "array",
                Object::Dict(_) => "dict",
                Object::Tuple(_) => "tuple",
            },
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Real(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Borrow the string contents if this is a string object.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Obj(r) => match r.object() {
                Object::Str(s) => Some(s.as_str()),
                _ => None,
            },
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<GcRef> {
        match self {
            Value::Obj(r) => Some(*r),
            _ => None,
        }
    }

    /// Structural equality, matching Tetra's `==`: scalars by value, strings
    /// and tuples by content, arrays and dicts element-wise.
    pub fn tetra_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::None, Value::None) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Real(a), Value::Real(b)) => a == b,
            (Value::Int(a), Value::Real(b)) | (Value::Real(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Obj(a), Value::Obj(b)) => {
                if a.ptr == b.ptr {
                    return true;
                }
                match (a.object(), b.object()) {
                    (Object::Str(x), Object::Str(y)) => x == y,
                    (Object::Tuple(x), Object::Tuple(y)) => {
                        x.len() == y.len() && x.iter().zip(y.iter()).all(|(u, v)| u.tetra_eq(v))
                    }
                    (Object::Array(x), Object::Array(y)) => {
                        let x = x.lock();
                        let y = y.lock();
                        x.len() == y.len() && x.iter().zip(y.iter()).all(|(u, v)| u.tetra_eq(v))
                    }
                    (Object::Dict(x), Object::Dict(y)) => {
                        let x = x.lock();
                        let y = y.lock();
                        x.len() == y.len()
                            && x.iter().all(|(k, v)| y.get(k).is_some_and(|w| v.tetra_eq(w)))
                    }
                    _ => false,
                }
            }
            _ => false,
        }
    }

    /// Render the value the way Tetra's `print` does.
    pub fn display(&self) -> String {
        match self {
            Value::None => "none".to_string(),
            Value::Int(v) => v.to_string(),
            Value::Real(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    format!("{v}")
                }
            }
            Value::Bool(v) => v.to_string(),
            Value::Obj(r) => match r.object() {
                Object::Str(s) => s.clone(),
                Object::Array(items) => {
                    let items = items.lock();
                    let parts: Vec<String> = items.iter().map(|v| v.display_quoted()).collect();
                    format!("[{}]", parts.join(", "))
                }
                Object::Dict(map) => {
                    let map = map.lock();
                    let mut parts: Vec<String> = map
                        .iter()
                        .map(|(k, v)| format!("{}: {}", k.display(), v.display_quoted()))
                        .collect();
                    parts.sort(); // deterministic output for tests & students
                    format!("{{{}}}", parts.join(", "))
                }
                Object::Tuple(items) => {
                    let parts: Vec<String> = items.iter().map(|v| v.display_quoted()).collect();
                    format!("({})", parts.join(", "))
                }
            },
        }
    }

    /// Like [`Value::display`] but quotes strings — used for elements inside
    /// containers, mirroring Python's repr-in-containers behaviour.
    fn display_quoted(&self) -> String {
        match self {
            Value::Obj(r) => match r.object() {
                Object::Str(s) => format!("\"{s}\""),
                _ => self.display(),
            },
            _ => self.display(),
        }
    }

    /// Convert into a dictionary key, if the value is hashable.
    pub fn to_dict_key(&self) -> Option<DictKey> {
        match self {
            Value::Int(v) => Some(DictKey::Int(*v)),
            Value::Bool(v) => Some(DictKey::Bool(*v)),
            Value::Obj(r) => match r.object() {
                Object::Str(s) => Some(DictKey::Str(s.clone())),
                _ => None,
            },
            _ => None,
        }
    }
}

/// A hashable dictionary key. Strings are copied out of the heap so keys
/// need no GC tracing.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DictKey {
    Int(i64),
    Bool(bool),
    Str(String),
}

impl DictKey {
    pub fn display(&self) -> String {
        match self {
            DictKey::Int(v) => v.to_string(),
            DictKey::Bool(v) => v.to_string(),
            DictKey::Str(s) => format!("\"{s}\""),
        }
    }
}

/// A heap object. Arrays and dicts are internally synchronized because Tetra
/// threads genuinely share them (paper §IV: interpreter threads share data
/// structures); strings and tuples are immutable and need no locks.
pub enum Object {
    Str(String),
    Array(Mutex<Vec<Value>>),
    Dict(Mutex<HashMap<DictKey, Value>>),
    Tuple(Vec<Value>),
}

impl Object {
    /// Construct an array object from a vector.
    pub fn array(items: Vec<Value>) -> Object {
        Object::Array(Mutex::new(items))
    }

    /// Construct a dict object from a map.
    pub fn dict(map: HashMap<DictKey, Value>) -> Object {
        Object::Dict(Mutex::new(map))
    }

    /// Approximate heap footprint in bytes, used for the GC trigger.
    pub fn size_estimate(&self) -> usize {
        let inner = match self {
            Object::Str(s) => s.capacity(),
            Object::Array(v) => v.lock().capacity() * std::mem::size_of::<Value>(),
            Object::Dict(m) => m.lock().capacity() * 48,
            Object::Tuple(v) => v.len() * std::mem::size_of::<Value>(),
        };
        inner + std::mem::size_of::<GcBox>()
    }

    /// Invoke `f` on every value directly reachable from this object.
    /// Callers must not be holding the object's internal lock.
    pub fn trace_children(&self, f: &mut dyn FnMut(Value)) {
        match self {
            Object::Str(_) => {}
            Object::Array(items) => {
                for v in items.lock().iter() {
                    f(*v);
                }
            }
            Object::Dict(map) => {
                for v in map.lock().values() {
                    f(*v);
                }
            }
            Object::Tuple(items) => {
                for v in items.iter() {
                    f(*v);
                }
            }
        }
    }
}

impl std::fmt::Debug for Object {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Object::Str(s) => write!(f, "Str({s:?})"),
            Object::Array(_) => write!(f, "Array"),
            Object::Dict(_) => write!(f, "Dict"),
            Object::Tuple(t) => write!(f, "Tuple(len={})", t.len()),
        }
    }
}

/// The GC's per-object header + payload. Objects are boxed individually so
/// their addresses are stable; the heap keeps a side list for sweeping.
pub struct GcBox {
    pub(crate) mark: AtomicBool,
    /// Bytes charged against the heap budget when this object was
    /// allocated. Mutations may grow the object afterwards (arrays), so the
    /// sweep must subtract this recorded figure, not a fresh estimate.
    pub(crate) size: usize,
    /// Packed allocation site (`tetra_obs::heapprof::pack_site`): the
    /// call-path node and line that allocated this object, 0 when heap
    /// profiling was off. Read by the sweep's live-object census.
    pub(crate) site: u64,
    pub(crate) obj: Object,
}

/// A handle to a live heap object.
///
/// # Safety invariant
/// A `GcRef` may only be dereferenced while the object is reachable from
/// some GC root (frame, published root set, or another live object). The
/// interpreter and VM maintain this by rooting every value they hold across
/// potential GC points; see DESIGN.md §4.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct GcRef {
    pub(crate) ptr: NonNull<GcBox>,
}

// SAFETY: GcBox contents are either immutable (Str, Tuple) or internally
// synchronized (Array, Dict behind Mutex); the mark bit is atomic.
unsafe impl Send for GcRef {}
unsafe impl Sync for GcRef {}

impl GcRef {
    /// Access the underlying object.
    pub fn object(&self) -> &Object {
        // SAFETY: per the type-level invariant the object is live.
        unsafe { &self.ptr.as_ref().obj }
    }

    pub(crate) fn set_mark(&self, m: bool) -> bool {
        // Returns the previous mark so tracing can skip visited nodes.
        unsafe { self.ptr.as_ref() }.mark.swap(m, Ordering::Relaxed)
    }

    /// A stable identity for the object (used by the race detector and
    /// debugger displays).
    pub fn addr(&self) -> usize {
        self.ptr.as_ptr() as usize
    }
}

impl std::fmt::Debug for GcRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GcRef({:p} -> {:?})", self.ptr, self.object())
    }
}
