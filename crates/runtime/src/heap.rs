//! The hand-rolled stop-the-world mark-sweep garbage collector.
//!
//! The paper sells Tetra as a garbage-collected language ("provides garbage
//! collection and is designed to be as simple as possible", §I) whose
//! interpreter threads *share* runtime data structures (§IV). That forces a
//! concurrent-mutator design:
//!
//! * Objects are individually boxed; the heap keeps a side list for sweeping.
//! * Every interpreter/VM thread registers as a **mutator** and polls a
//!   [`Heap::poll`] safepoint at each statement.
//! * When an allocation trips the threshold, the allocating thread becomes
//!   the collector: it raises the `gc_flag`, publishes its own roots, and
//!   waits until every other mutator is **parked** at a safepoint or inside
//!   a **safe region** (a blocking operation: Tetra `lock` waits, thread
//!   joins, console reads — these publish roots first so the GC never waits
//!   on a blocked thread).
//! * Roots are published as plain values (temporaries/operand stacks) plus
//!   shared frame handles; frames are traced at mark time so concurrent
//!   mutation between publications cannot hide objects.
//! * Mark is an explicit worklist (no recursion), sweep frees unmarked
//!   boxes, and the threshold doubles over the live size.
//!
//! Invariants callers must maintain (see DESIGN.md §4):
//! 1. never poll / allocate / enter a safe region while holding an object or
//!    frame lock;
//! 2. every value held across a potential GC point is reachable from the
//!    thread's [`RootSource`];
//! 3. the closure run inside [`Heap::safe_region`] must not mutate the
//!    thread's published roots.

use crate::env::FrameRef;
use crate::value::{GcBox, GcRef, Object, Value};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Ceiling conversion so any nonzero pause registers as at least 1µs.
fn ns_to_us_ceil(ns: u64) -> u64 {
    ns.div_ceil(1000)
}

/// Tunables for the collector.
#[derive(Debug, Clone)]
pub struct HeapConfig {
    /// Collect whenever estimated live bytes exceed this (grows after GC).
    pub initial_threshold: usize,
    /// Lower bound for the adaptive threshold.
    pub min_threshold: usize,
    /// Collect on *every* allocation — a torture mode used by tests to
    /// surface missing-root bugs immediately.
    pub stress: bool,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            initial_threshold: 1 << 20, // 1 MiB
            min_threshold: 1 << 16,
            stress: false,
        }
    }
}

/// Counters exposed through `tetra run --gc-stats` and asserted by tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcStats {
    pub allocations: u64,
    pub collections: u64,
    pub objects_freed: u64,
    pub live_objects: u64,
    pub live_bytes: u64,
    /// Total stop-the-world pause time, microseconds (rounded up so any
    /// real collection registers as at least 1µs).
    pub pause_total_us: u64,
    /// Longest single pause, microseconds (rounded up likewise).
    pub pause_max_us: u64,
}

/// Sink filled by a [`RootSource`]: direct values plus shared frames that
/// the collector traces at mark time.
#[derive(Default)]
pub struct RootSink {
    pub values: Vec<Value>,
    pub frames: Vec<FrameRef>,
}

impl RootSink {
    pub fn value(&mut self, v: Value) {
        self.values.push(v);
    }

    pub fn frame(&mut self, f: &FrameRef) {
        self.frames.push(f.clone());
    }
}

/// Anything that can enumerate a thread's GC roots on demand: the
/// interpreter's environment chain and temporaries, or the VM's operand
/// stack and locals.
pub trait RootSource {
    fn roots(&self, sink: &mut RootSink);
}

/// A root source with nothing to report (tests, trivial mutators).
pub struct NoRoots;

impl RootSource for NoRoots {
    fn roots(&self, _sink: &mut RootSink) {}
}

/// Root source that chains an extra set of values in front of another
/// source — used to root an object's children during the collection its own
/// allocation triggered.
struct WithPending<'a> {
    inner: &'a dyn RootSource,
    pending: &'a Object,
}

impl RootSource for WithPending<'_> {
    fn roots(&self, sink: &mut RootSink) {
        self.inner.roots(sink);
        self.pending.trace_children(&mut |v| sink.values.push(v));
    }
}

#[derive(Default)]
struct Slot {
    parked: bool,
    safe_region: bool,
    values: Vec<Value>,
    frames: Vec<FrameRef>,
}

#[derive(Default)]
struct Ctrl {
    gc_requested: bool,
    epoch: u64,
    next_id: u32,
    slots: HashMap<u32, Slot>,
}

/// The shared garbage-collected heap.
pub struct Heap {
    objects: Mutex<Vec<NonNull<GcBox>>>,
    bytes: AtomicUsize,
    threshold: AtomicUsize,
    stress: AtomicBool,
    min_threshold: usize,
    gc_flag: AtomicBool,
    ctrl: Mutex<Ctrl>,
    /// Collector waits here for mutators to park.
    cv_mutators: Condvar,
    /// Parked mutators wait here for the collection to finish.
    cv_resume: Condvar,
    allocations: AtomicU64,
    collections: AtomicU64,
    objects_freed: AtomicU64,
    pause_ns_total: AtomicU64,
    pause_ns_max: AtomicU64,
}

// SAFETY: the raw pointers in `objects` are only dereferenced under the
// documented STW protocol; GcBox payloads are Sync (see value.rs).
unsafe impl Send for Heap {}
unsafe impl Sync for Heap {}

impl Heap {
    pub fn new(config: HeapConfig) -> Arc<Heap> {
        Arc::new(Heap {
            objects: Mutex::new(Vec::new()),
            bytes: AtomicUsize::new(0),
            threshold: AtomicUsize::new(config.initial_threshold.max(config.min_threshold)),
            stress: AtomicBool::new(config.stress),
            min_threshold: config.min_threshold,
            gc_flag: AtomicBool::new(false),
            ctrl: Mutex::new(Ctrl::default()),
            cv_mutators: Condvar::new(),
            cv_resume: Condvar::new(),
            allocations: AtomicU64::new(0),
            collections: AtomicU64::new(0),
            objects_freed: AtomicU64::new(0),
            pause_ns_total: AtomicU64::new(0),
            pause_ns_max: AtomicU64::new(0),
        })
    }

    /// Turn allocation-stress collection on or off at runtime.
    pub fn set_stress(&self, on: bool) {
        self.stress.store(on, Ordering::Relaxed);
    }

    /// Register the calling execution thread as a mutator. The world cannot
    /// stop until this mutator parks, so drop the guard (or keep it inside
    /// safe regions) whenever the thread blocks.
    pub fn register_mutator(self: &Arc<Self>) -> MutatorGuard {
        let mut ctrl = self.ctrl.lock();
        let id = ctrl.next_id;
        ctrl.next_id += 1;
        ctrl.slots.insert(id, Slot::default());
        MutatorGuard { heap: Arc::clone(self), id }
    }

    /// Register a mutator on behalf of a thread that is about to be spawned.
    /// The slot starts in the safe-region state with `roots` published, so a
    /// collection may proceed before the new thread first polls.
    pub fn register_spawned(self: &Arc<Self>, roots: &dyn RootSource) -> MutatorGuard {
        let mut sink = RootSink::default();
        roots.roots(&mut sink);
        let mut ctrl = self.ctrl.lock();
        let id = ctrl.next_id;
        ctrl.next_id += 1;
        ctrl.slots.insert(
            id,
            Slot { parked: false, safe_region: true, values: sink.values, frames: sink.frames },
        );
        MutatorGuard { heap: Arc::clone(self), id }
    }

    /// Called by a freshly spawned thread whose mutator was created with
    /// [`Heap::register_spawned`]: leaves the initial safe-region state
    /// (waiting out any in-progress collection first) so the thread's roots
    /// are tracked live from here on.
    pub fn exit_spawn_region(&self, m: &MutatorGuard) {
        let mut ctrl = self.ctrl.lock();
        while ctrl.gc_requested {
            self.cv_resume.wait(&mut ctrl);
        }
        if let Some(slot) = ctrl.slots.get_mut(&m.id) {
            slot.safe_region = false;
            slot.values.clear();
            slot.frames.clear();
        }
    }

    /// Cheap safepoint: parks the thread iff a collection has been requested.
    #[inline]
    pub fn poll(&self, m: &MutatorGuard, roots: &dyn RootSource) {
        if self.gc_flag.load(Ordering::Acquire) {
            self.park(m, roots);
        }
    }

    /// Allocate an object, possibly running a collection first.
    pub fn alloc(&self, m: &MutatorGuard, roots: &dyn RootSource, obj: Object) -> GcRef {
        debug_assert_eq!(m.heap_ptr(), self as *const _, "mutator belongs to another heap");
        self.allocations.fetch_add(1, Ordering::Relaxed);
        let size = obj.size_estimate();
        let stressed = self.stress.load(Ordering::Relaxed);
        if stressed
            || self.bytes.load(Ordering::Relaxed) + size > self.threshold.load(Ordering::Relaxed)
        {
            let with_pending = WithPending { inner: roots, pending: &obj };
            self.collect(m, &with_pending);
        } else if self.gc_flag.load(Ordering::Acquire) {
            // Another thread is collecting; help it by parking (the pending
            // object's children must be visible to that collection too).
            let with_pending = WithPending { inner: roots, pending: &obj };
            self.park(m, &with_pending);
        }
        // Attribute the allocation to the mutator's current (call path,
        // line) site; returns 0 (recording nothing) when heap profiling
        // is off.
        let site = tetra_obs::heapprof::record_alloc(size);
        let boxed = Box::new(GcBox { mark: AtomicBool::new(false), size, site, obj });
        let ptr = NonNull::from(Box::leak(boxed));
        self.objects.lock().push(ptr);
        self.bytes.fetch_add(size, Ordering::Relaxed);
        GcRef { ptr }
    }

    /// Convenience: allocate a string value.
    pub fn alloc_str(
        &self,
        m: &MutatorGuard,
        roots: &dyn RootSource,
        s: impl Into<String>,
    ) -> Value {
        Value::Obj(self.alloc(m, roots, Object::Str(s.into())))
    }

    /// Convenience: allocate an array value.
    pub fn alloc_array(
        &self,
        m: &MutatorGuard,
        roots: &dyn RootSource,
        items: Vec<Value>,
    ) -> Value {
        Value::Obj(self.alloc(m, roots, Object::array(items)))
    }

    /// Run a blocking operation inside a GC safe region: the thread's roots
    /// are published first so collections proceed while `f` blocks.
    pub fn safe_region<T>(
        &self,
        m: &MutatorGuard,
        roots: &dyn RootSource,
        f: impl FnOnce() -> T,
    ) -> T {
        let mut sink = RootSink::default();
        roots.roots(&mut sink);
        {
            let mut ctrl = self.ctrl.lock();
            let slot = ctrl.slots.get_mut(&m.id).expect("mutator deregistered");
            slot.safe_region = true;
            slot.values = sink.values;
            slot.frames = sink.frames;
            // A collector may be waiting for this thread to stop running.
            self.cv_mutators.notify_all();
        }
        let result = f();
        let mut ctrl = self.ctrl.lock();
        while ctrl.gc_requested {
            self.cv_resume.wait(&mut ctrl);
        }
        if let Some(slot) = ctrl.slots.get_mut(&m.id) {
            slot.safe_region = false;
            slot.values.clear();
            slot.frames.clear();
        }
        result
    }

    /// Force a collection immediately (exposed for tests and `gc()` builtin).
    pub fn collect_now(&self, m: &MutatorGuard, roots: &dyn RootSource) {
        self.collect(m, roots);
    }

    pub fn stats(&self) -> GcStats {
        GcStats {
            allocations: self.allocations.load(Ordering::Relaxed),
            collections: self.collections.load(Ordering::Relaxed),
            objects_freed: self.objects_freed.load(Ordering::Relaxed),
            live_objects: self.objects.lock().len() as u64,
            live_bytes: self.bytes.load(Ordering::Relaxed) as u64,
            pause_total_us: ns_to_us_ceil(self.pause_ns_total.load(Ordering::Relaxed)),
            pause_max_us: ns_to_us_ceil(self.pause_ns_max.load(Ordering::Relaxed)),
        }
    }

    // ---- internals ---------------------------------------------------------

    /// Park at a safepoint until the in-progress collection finishes.
    #[cold]
    fn park(&self, m: &MutatorGuard, roots: &dyn RootSource) {
        let mut sink = RootSink::default();
        roots.roots(&mut sink);
        let mut ctrl = self.ctrl.lock();
        if !ctrl.gc_requested {
            return; // raced with the end of the collection
        }
        let epoch = ctrl.epoch;
        {
            let slot = ctrl.slots.get_mut(&m.id).expect("mutator deregistered");
            slot.parked = true;
            slot.values = sink.values;
            slot.frames = sink.frames;
        }
        self.cv_mutators.notify_all();
        while ctrl.gc_requested && ctrl.epoch == epoch {
            self.cv_resume.wait(&mut ctrl);
        }
        if let Some(slot) = ctrl.slots.get_mut(&m.id) {
            slot.parked = false;
            slot.values.clear();
            slot.frames.clear();
        }
    }

    /// Become the collector (or park if someone else already is).
    fn collect(&self, m: &MutatorGuard, roots: &dyn RootSource) {
        let mut sink = RootSink::default();
        roots.roots(&mut sink);
        let mut ctrl = self.ctrl.lock();
        if ctrl.gc_requested {
            // Someone else is collecting: behave like park().
            let epoch = ctrl.epoch;
            {
                let slot = ctrl.slots.get_mut(&m.id).expect("mutator deregistered");
                slot.parked = true;
                slot.values = sink.values;
                slot.frames = sink.frames;
            }
            self.cv_mutators.notify_all();
            while ctrl.gc_requested && ctrl.epoch == epoch {
                self.cv_resume.wait(&mut ctrl);
            }
            if let Some(slot) = ctrl.slots.get_mut(&m.id) {
                slot.parked = false;
                slot.values.clear();
                slot.frames.clear();
            }
            return;
        }
        ctrl.gc_requested = true;
        self.gc_flag.store(true, Ordering::Release);
        // Pause accounting always runs (it feeds GcStats); the obs spans
        // below are no-ops without an active tracing session.
        let collection = self.collections.load(Ordering::Relaxed) as u32 + 1;
        let pause_start = Instant::now();
        let obs_pause = tetra_obs::now_ns();
        {
            let slot = ctrl.slots.get_mut(&m.id).expect("mutator deregistered");
            slot.parked = true;
            slot.values = sink.values;
            slot.frames = sink.frames;
        }
        // Wait for every other mutator to park or block in a safe region.
        let obs_stw = tetra_obs::now_ns();
        while ctrl.slots.iter().any(|(id, s)| *id != m.id && !s.parked && !s.safe_region) {
            self.cv_mutators.wait(&mut ctrl);
        }
        tetra_obs::gc_phase(tetra_obs::GC_TID, tetra_obs::GcPhase::StwWait, collection, obs_stw);

        // ---- world is stopped: mark ----
        let obs_mark = tetra_obs::now_ns();
        let mut worklist: Vec<Value> = Vec::new();
        let mut seen_frames = std::collections::HashSet::new();
        for slot in ctrl.slots.values() {
            worklist.extend_from_slice(&slot.values);
            for f in &slot.frames {
                if seen_frames.insert(Arc::as_ptr(f) as usize) {
                    f.trace(&mut |v| worklist.push(v));
                }
            }
        }
        while let Some(v) = worklist.pop() {
            if let Value::Obj(r) = v {
                if !r.set_mark(true) {
                    r.object().trace_children(&mut |child| worklist.push(child));
                }
            }
        }

        tetra_obs::gc_phase(tetra_obs::GC_TID, tetra_obs::GcPhase::Mark, collection, obs_mark);

        // ---- sweep ----
        let obs_sweep = tetra_obs::now_ns();
        let mut freed = 0u64;
        let mut freed_bytes = 0usize;
        // Live-after-GC census per allocation site, taken while the sweep
        // already walks every object. Only populated under --heap-profile.
        let profiling = tetra_obs::heap_profile_enabled();
        let mut census: std::collections::HashMap<u64, (u64, u64)> =
            std::collections::HashMap::new();
        {
            let mut objects = self.objects.lock();
            objects.retain(|ptr| {
                // SAFETY: pointers in the list are live boxes we created.
                let gc_box = unsafe { ptr.as_ref() };
                if gc_box.mark.swap(false, Ordering::Relaxed) {
                    if profiling && gc_box.site != 0 {
                        let entry = census.entry(gc_box.site).or_insert((0, 0));
                        entry.0 += 1;
                        entry.1 += gc_box.size as u64;
                    }
                    true
                } else {
                    freed += 1;
                    freed_bytes += gc_box.size;
                    // SAFETY: unreachable (no roots found it), so nothing can
                    // dereference it after this point.
                    drop(unsafe { Box::from_raw(ptr.as_ptr()) });
                    false
                }
            });
        }
        if profiling {
            tetra_obs::heapprof::record_census(&census);
        }
        let live = self.bytes.fetch_sub(freed_bytes, Ordering::Relaxed) - freed_bytes;
        self.threshold.store((live * 2).max(self.min_threshold), Ordering::Relaxed);
        self.objects_freed.fetch_add(freed, Ordering::Relaxed);
        self.collections.fetch_add(1, Ordering::Relaxed);
        tetra_obs::gc_phase(tetra_obs::GC_TID, tetra_obs::GcPhase::Sweep, collection, obs_sweep);
        tetra_obs::gc_phase(tetra_obs::GC_TID, tetra_obs::GcPhase::Pause, collection, obs_pause);
        let pause_ns = pause_start.elapsed().as_nanos() as u64;
        self.pause_ns_total.fetch_add(pause_ns, Ordering::Relaxed);
        self.pause_ns_max.fetch_max(pause_ns, Ordering::Relaxed);

        // ---- resume the world ----
        ctrl.gc_requested = false;
        ctrl.epoch += 1;
        self.gc_flag.store(false, Ordering::Release);
        if let Some(slot) = ctrl.slots.get_mut(&m.id) {
            slot.parked = false;
            slot.values.clear();
            slot.frames.clear();
        }
        self.cv_resume.notify_all();
    }

    fn deregister(&self, id: u32) {
        let mut ctrl = self.ctrl.lock();
        ctrl.slots.remove(&id);
        // A collector may be waiting on this mutator to park.
        self.cv_mutators.notify_all();
    }
}

impl Drop for Heap {
    fn drop(&mut self) {
        // Free every remaining object; no mutators can exist at this point
        // because MutatorGuard holds an Arc<Heap>.
        let objects = self.objects.get_mut();
        for ptr in objects.drain(..) {
            // SAFETY: sole owner now.
            drop(unsafe { Box::from_raw(ptr.as_ptr()) });
        }
    }
}

/// Registration handle for one mutator thread. Dropping it deregisters the
/// thread, allowing collections to proceed without it.
pub struct MutatorGuard {
    heap: Arc<Heap>,
    id: u32,
}

impl MutatorGuard {
    fn heap_ptr(&self) -> *const Heap {
        Arc::as_ptr(&self.heap)
    }

    /// The heap this mutator is registered with.
    pub fn heap(&self) -> &Arc<Heap> {
        &self.heap
    }
}

impl Drop for MutatorGuard {
    fn drop(&mut self) {
        self.heap.deregister(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Frame;

    fn test_heap(stress: bool) -> Arc<Heap> {
        Heap::new(HeapConfig { initial_threshold: 1 << 14, min_threshold: 1 << 10, stress })
    }

    struct VecRoots(Vec<Value>);
    impl RootSource for VecRoots {
        fn roots(&self, sink: &mut RootSink) {
            for v in &self.0 {
                sink.value(*v);
            }
        }
    }

    #[test]
    fn alloc_and_read_back() {
        let heap = test_heap(false);
        let m = heap.register_mutator();
        let v = heap.alloc_str(&m, &NoRoots, "hello");
        assert_eq!(v.as_str(), Some("hello"));
        assert_eq!(heap.stats().allocations, 1);
        assert_eq!(heap.stats().live_objects, 1);
    }

    #[test]
    fn unrooted_objects_are_collected() {
        let heap = test_heap(false);
        let m = heap.register_mutator();
        for i in 0..100 {
            let _ = heap.alloc_str(&m, &NoRoots, format!("garbage {i}"));
        }
        heap.collect_now(&m, &NoRoots);
        let stats = heap.stats();
        assert_eq!(stats.live_objects, 0);
        assert_eq!(stats.objects_freed, 100);
        assert!(stats.collections >= 1);
    }

    #[test]
    fn rooted_objects_survive() {
        let heap = test_heap(false);
        let m = heap.register_mutator();
        let keep = heap.alloc_str(&m, &NoRoots, "keep me");
        let roots = VecRoots(vec![keep]);
        for i in 0..50 {
            let _ = heap.alloc_str(&m, &roots, format!("garbage {i}"));
        }
        heap.collect_now(&m, &roots);
        assert_eq!(heap.stats().live_objects, 1);
        assert_eq!(keep.as_str(), Some("keep me"));
    }

    #[test]
    fn nested_objects_are_traced_transitively() {
        let heap = test_heap(false);
        let m = heap.register_mutator();
        let inner = heap.alloc_str(&m, &NoRoots, "inner");
        let arr = heap.alloc_array(&m, &VecRoots(vec![inner]), vec![inner]);
        let outer = heap.alloc_array(&m, &VecRoots(vec![arr]), vec![arr, Value::Int(7)]);
        let roots = VecRoots(vec![outer]);
        heap.collect_now(&m, &roots);
        assert_eq!(heap.stats().live_objects, 3);
        // Deep access still works.
        if let Object::Array(items) = outer.as_obj().unwrap().object() {
            let items = items.lock();
            if let Object::Array(inner_items) = items[0].as_obj().unwrap().object() {
                assert_eq!(inner_items.lock()[0].as_str(), Some("inner"));
            } else {
                panic!("expected array");
            }
        } else {
            panic!("expected array");
        }
    }

    #[test]
    fn frames_root_their_contents() {
        let heap = test_heap(false);
        let m = heap.register_mutator();
        let frame = Frame::new_ref();
        let v = heap.alloc_str(&m, &NoRoots, "framed");
        frame.set("x", v);
        struct FrameRoots(FrameRef);
        impl RootSource for FrameRoots {
            fn roots(&self, sink: &mut RootSink) {
                sink.frame(&self.0);
            }
        }
        let roots = FrameRoots(frame.clone());
        heap.collect_now(&m, &roots);
        assert_eq!(heap.stats().live_objects, 1);
        assert_eq!(frame.get("x").unwrap().as_str(), Some("framed"));
    }

    #[test]
    fn stress_mode_collects_on_every_allocation() {
        let heap = test_heap(true);
        let m = heap.register_mutator();
        let a = heap.alloc_str(&m, &NoRoots, "a");
        let roots = VecRoots(vec![a]);
        let b = heap.alloc_str(&m, &roots, "b");
        // Each alloc collected first: the first string survived because it
        // was rooted during the second allocation.
        assert_eq!(a.as_str(), Some("a"));
        assert_eq!(b.as_str(), Some("b"));
        assert!(heap.stats().collections >= 2);
    }

    #[test]
    fn pending_allocation_children_are_rooted() {
        // Building an array whose children are otherwise unrooted must not
        // lose them when the array allocation itself triggers a collection.
        let heap = test_heap(true);
        let m = heap.register_mutator();
        let s = heap.alloc_str(&m, &NoRoots, "child");
        // `s` is passed only as the pending object's child.
        let arr = heap.alloc_array(&m, &VecRoots(vec![s]), vec![s]);
        if let Object::Array(items) = arr.as_obj().unwrap().object() {
            assert_eq!(items.lock()[0].as_str(), Some("child"));
        }
    }

    #[test]
    fn threshold_triggers_automatic_collection() {
        let heap =
            Heap::new(HeapConfig { initial_threshold: 4096, min_threshold: 1024, stress: false });
        let m = heap.register_mutator();
        for i in 0..1000 {
            let _ = heap.alloc_str(&m, &NoRoots, format!("string number {i} with padding"));
        }
        assert!(heap.stats().collections > 0, "threshold should have fired");
        assert!(heap.stats().live_objects < 1000);
    }

    #[test]
    fn concurrent_mutators_survive_stw_collections() {
        // 4 threads allocate and keep their last 8 values rooted while
        // stress-collecting; every kept value must stay intact.
        let heap = test_heap(true);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let heap = Arc::clone(&heap);
                scope.spawn(move || {
                    let m = heap.register_mutator();
                    let mut kept: Vec<Value> = Vec::new();
                    for i in 0..200 {
                        let roots = VecRoots(kept.clone());
                        let v = heap.alloc_str(&m, &roots, format!("t{t} v{i}"));
                        kept.push(v);
                        if kept.len() > 8 {
                            kept.remove(0);
                        }
                        heap.poll(&m, &VecRoots(kept.clone()));
                    }
                    for (j, v) in kept.iter().enumerate() {
                        let expect = format!("t{t} v{}", 200 - kept.len() + j);
                        assert_eq!(v.as_str(), Some(expect.as_str()));
                    }
                });
            }
        });
        assert!(heap.stats().collections > 0);
    }

    #[test]
    fn safe_region_lets_gc_proceed_while_blocked() {
        use std::sync::mpsc;
        let heap = test_heap(false);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (ready_tx, ready_rx) = mpsc::channel::<()>();
        std::thread::scope(|scope| {
            let heap2 = Arc::clone(&heap);
            scope.spawn(move || {
                let m = heap2.register_mutator();
                let v = heap2.alloc_str(&m, &NoRoots, "blocked thread value");
                let roots = VecRoots(vec![v]);
                heap2.safe_region(&m, &roots, || {
                    ready_tx.send(()).unwrap();
                    // Block until the main thread has collected.
                    block_rx.recv().unwrap();
                });
                assert_eq!(v.as_str(), Some("blocked thread value"));
            });
            ready_rx.recv().unwrap();
            let m = heap.register_mutator();
            // This collection must complete even though the other thread is
            // blocked — it is in a safe region.
            heap.collect_now(&m, &NoRoots);
            assert_eq!(heap.stats().collections, 1);
            // The blocked thread's value survived via its published roots.
            assert_eq!(heap.stats().live_objects, 1);
            block_tx.send(()).unwrap();
        });
    }

    #[test]
    fn register_spawned_roots_values_before_thread_starts() {
        let heap = test_heap(false);
        let parent = heap.register_mutator();
        let v = heap.alloc_str(&parent, &NoRoots, "handed to child");
        let child_guard = heap.register_spawned(&VecRoots(vec![v]));
        // Parent drops its interest; a GC here must keep `v` for the child.
        heap.collect_now(&parent, &NoRoots);
        assert_eq!(heap.stats().live_objects, 1);
        assert_eq!(v.as_str(), Some("handed to child"));
        drop(child_guard);
        heap.collect_now(&parent, &NoRoots);
        assert_eq!(heap.stats().live_objects, 0);
    }

    #[test]
    fn stats_track_frees() {
        let heap = test_heap(false);
        let m = heap.register_mutator();
        for _ in 0..10 {
            let _ = heap.alloc_str(&m, &NoRoots, "x");
        }
        heap.collect_now(&m, &NoRoots);
        let s = heap.stats();
        assert_eq!(s.allocations, 10);
        assert_eq!(s.objects_freed, 10);
        assert_eq!(s.live_bytes, 0);
    }
}
