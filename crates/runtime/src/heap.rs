//! The hand-rolled stop-the-world mark-sweep garbage collector, sharded
//! per mutator.
//!
//! The paper sells Tetra as a garbage-collected language ("provides garbage
//! collection and is designed to be as simple as possible", §I) whose
//! interpreter threads *share* runtime data structures (§IV). That forces a
//! concurrent-mutator design:
//!
//! * Every interpreter/VM thread registers as a **mutator** and polls a
//!   [`Heap::poll`] safepoint at each statement.
//! * Each mutator owns a private **allocation segment** — a chunked
//!   free-list arena of `GcBox` slots — so the allocation hot path touches
//!   only thread-private memory plus a few relaxed atomics. No global lock
//!   is taken between collections.
//! * When an allocation trips the threshold, the allocating thread becomes
//!   the collector: it raises the `gc_flag`, publishes its own roots, and
//!   waits until every other mutator is **parked** at a safepoint or inside
//!   a **safe region** (a blocking operation: Tetra `lock` waits, thread
//!   joins, console reads — these publish roots first so the GC never waits
//!   on a blocked thread).
//! * Roots are published as plain values (temporaries/operand stacks) plus
//!   shared frame handles; frames are traced at mark time so concurrent
//!   mutation between publications cannot hide objects.
//! * Mark runs **in parallel** when it pays: the coordinator batches the
//!   published root sets into a shared work queue and `min(mutators,
//!   cores)` workers (capped by `HeapConfig::gc_threads`) drain it,
//!   donating half their local worklist back whenever it grows large. The
//!   mark bit is an atomic swap, so two workers racing on one object agree
//!   on a single winner.
//! * Sweep runs per-segment: dead slots are dropped in place and returned
//!   to their segment's free list, empty chunks are released, and the
//!   live census per allocation site feeds the heap profiler.
//! * Segments of exited mutators are handed back to a global pool under
//!   the control lock — the collector holds that lock for the whole
//!   stop-the-world window, so a segment is always swept exactly once, by
//!   exactly one party.
//!
//! Invariants callers must maintain (see DESIGN.md §4):
//! 1. never poll / allocate / enter a safe region while holding an object or
//!    frame lock;
//! 2. every value held across a potential GC point is reachable from the
//!    thread's [`RootSource`];
//! 3. the closure run inside [`Heap::safe_region`] must not mutate the
//!    thread's published roots and must not allocate — the collector may be
//!    sweeping this mutator's segment while the closure runs.

use crate::env::FrameRef;
use crate::value::{GcBox, GcRef, Object, Value};
use parking_lot::{Condvar, Mutex};
use std::cell::{Cell, UnsafeCell};
use std::collections::HashMap;
use std::mem::MaybeUninit;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Ceiling conversion so any nonzero duration registers as at least 1µs.
/// Applied exactly once, at the reporting edge — internal accounting stays
/// in nanoseconds so many sub-microsecond pauses don't each round up.
fn ns_to_us_ceil(ns: u64) -> u64 {
    ns.div_ceil(1000)
}

/// Tunables for the collector.
#[derive(Debug, Clone)]
pub struct HeapConfig {
    /// Collect whenever estimated live bytes exceed this (grows after GC).
    pub initial_threshold: usize,
    /// Lower bound for the adaptive threshold.
    pub min_threshold: usize,
    /// Collect on *every* allocation — a torture mode used by tests to
    /// surface missing-root bugs immediately.
    pub stress: bool,
    /// Cap on parallel mark workers; 0 means "one per core". The effective
    /// worker count is further limited by the number of registered
    /// mutators (`min(mutators, cores)`).
    pub gc_threads: usize,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            initial_threshold: 1 << 20, // 1 MiB
            min_threshold: 1 << 16,
            stress: false,
            gc_threads: 0,
        }
    }
}

/// Counters exposed through `tetra run --gc-stats` and asserted by tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcStats {
    pub allocations: u64,
    pub collections: u64,
    pub objects_freed: u64,
    pub live_objects: u64,
    pub live_bytes: u64,
    /// Total stop-the-world pause time, microseconds. Accumulated in
    /// nanoseconds and converted once here, so many tiny pauses are not
    /// each rounded up before summing.
    pub pause_total_us: u64,
    /// Longest single pause, microseconds (rounded up so any real
    /// collection registers as at least 1µs).
    pub pause_max_us: u64,
    /// Total mark-phase time across collections, microseconds (converted
    /// from nanoseconds once, like `pause_total_us`).
    pub mark_us: u64,
    /// Total sweep-phase time across collections, microseconds.
    pub sweep_us: u64,
    /// Allocations served straight from a segment's free list, with no
    /// chunk growth and no global lock.
    pub alloc_fast_path: u64,
    /// Allocations that had to grow their segment by one chunk first.
    pub segment_refills: u64,
    /// Largest number of mark workers used by any single collection.
    pub mark_workers: u64,
}

/// Sink filled by a [`RootSource`]: direct values plus shared frames that
/// the collector traces at mark time.
#[derive(Default)]
pub struct RootSink {
    pub values: Vec<Value>,
    pub frames: Vec<FrameRef>,
}

impl RootSink {
    pub fn value(&mut self, v: Value) {
        self.values.push(v);
    }

    pub fn frame(&mut self, f: &FrameRef) {
        self.frames.push(f.clone());
    }
}

/// Anything that can enumerate a thread's GC roots on demand: the
/// interpreter's environment chain and temporaries, or the VM's operand
/// stack and locals.
pub trait RootSource {
    fn roots(&self, sink: &mut RootSink);
}

/// A root source with nothing to report (tests, trivial mutators).
pub struct NoRoots;

impl RootSource for NoRoots {
    fn roots(&self, _sink: &mut RootSink) {}
}

/// Root source that chains an extra set of values in front of another
/// source — used to root an object's children during the collection its own
/// allocation triggered.
struct WithPending<'a> {
    inner: &'a dyn RootSource,
    pending: &'a Object,
}

impl RootSource for WithPending<'_> {
    fn roots(&self, sink: &mut RootSink) {
        self.inner.roots(sink);
        self.pending.trace_children(&mut |v| sink.values.push(v));
    }
}

// ---- allocation segments ---------------------------------------------------

/// Slots per chunk; one `u64` occupancy bitmap covers a whole chunk.
const SLOTS_PER_CHUNK: usize = 64;

/// A fixed block of `GcBox` slots. The slot storage is boxed, so slot
/// addresses stay stable while the owning segment's chunk vector grows —
/// `GcRef`s point straight into it.
struct Chunk {
    /// Bit i set ⇔ slot i holds an initialized, not-yet-swept object.
    occupied: u64,
    slots: Box<[MaybeUninit<GcBox>]>,
}

impl Chunk {
    fn new() -> Chunk {
        let mut slots = Vec::with_capacity(SLOTS_PER_CHUNK);
        slots.resize_with(SLOTS_PER_CHUNK, MaybeUninit::uninit);
        Chunk { occupied: 0, slots: slots.into_boxed_slice() }
    }
}

impl Drop for Chunk {
    fn drop(&mut self) {
        for i in 0..SLOTS_PER_CHUNK {
            if self.occupied & (1 << i) != 0 {
                // SAFETY: the bit says this slot was initialized and has not
                // been swept; the heap is going away (or the chunk is empty,
                // in which case this loop body never runs).
                unsafe { self.slots[i].assume_init_drop() };
            }
        }
    }
}

/// One mutator's private allocation arena: a vector of chunks plus a free
/// list of `(chunk, slot)` coordinates. Only the owning mutator touches it
/// between collections; the collector touches it only while the world is
/// stopped.
struct Segment {
    chunks: Vec<Chunk>,
    free: Vec<(u32, u32)>,
}

impl Segment {
    fn new() -> Segment {
        Segment { chunks: Vec::new(), free: Vec::new() }
    }

    /// Place `gc_box` into a free slot, growing by one chunk if the free
    /// list is empty. Returns the slot address and whether a refill (chunk
    /// growth) was needed.
    fn alloc(&mut self, gc_box: GcBox) -> (NonNull<GcBox>, bool) {
        let refilled = self.free.is_empty();
        if refilled {
            let chunk_idx = self.chunks.len() as u32;
            self.chunks.push(Chunk::new());
            for slot in (0..SLOTS_PER_CHUNK as u32).rev() {
                self.free.push((chunk_idx, slot));
            }
        }
        let (c, s) = self.free.pop().expect("refilled free list cannot be empty");
        let chunk = &mut self.chunks[c as usize];
        chunk.occupied |= 1 << s;
        let slot = chunk.slots[s as usize].write(gc_box);
        (NonNull::from(slot), refilled)
    }

    /// Drop every unmarked object, clear surviving marks, release chunks
    /// that became fully empty, and rebuild the free list. When `census` is
    /// provided, survivors are tallied per allocation site for the heap
    /// profiler. Returns `(objects freed, bytes freed)`.
    fn sweep(&mut self, mut census: Option<&mut HashMap<u64, (u64, u64)>>) -> (u64, usize) {
        let mut freed = 0u64;
        let mut freed_bytes = 0usize;
        for chunk in &mut self.chunks {
            let mut occ = chunk.occupied;
            while occ != 0 {
                let s = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                // SAFETY: occupancy bit set ⇒ slot initialized.
                let gc_box = unsafe { chunk.slots[s].assume_init_ref() };
                if gc_box.mark.swap(false, Ordering::Relaxed) {
                    if let Some(census) = census.as_deref_mut() {
                        if gc_box.site != 0 {
                            let entry = census.entry(gc_box.site).or_insert((0, 0));
                            entry.0 += 1;
                            entry.1 += gc_box.size as u64;
                        }
                    }
                } else {
                    freed += 1;
                    freed_bytes += gc_box.size;
                    chunk.occupied &= !(1 << s);
                    // SAFETY: unreachable (no roots found it), so nothing
                    // can dereference it after this point.
                    unsafe { chunk.slots[s].assume_init_drop() };
                }
            }
        }
        // Release empty chunks but keep one as hysteresis: a segment whose
        // whole population died would otherwise pay a refill on its very
        // next allocation (pathological under gc_stress, where that is
        // every allocation).
        let mut kept_empty = false;
        self.chunks.retain(|c| c.occupied != 0 || !std::mem::replace(&mut kept_empty, true));
        self.free.clear();
        for (ci, chunk) in self.chunks.iter().enumerate() {
            let mut open = !chunk.occupied;
            while open != 0 {
                let s = open.trailing_zeros();
                open &= open - 1;
                self.free.push((ci as u32, s));
            }
        }
        (freed, freed_bytes)
    }
}

/// Shared handle to one segment. The owning mutator reaches it through its
/// [`MutatorGuard`]; the collector reaches the same segment through the
/// mutator's control slot (or the orphan pool) during stop-the-world.
struct SegmentCell(UnsafeCell<Segment>);

// SAFETY: access is externally synchronized by the safepoint protocol — the
// owner has exclusive access while running; the collector has exclusive
// access while every owner is parked or blocked in a (non-allocating) safe
// region. See the module docs and DESIGN.md §4.
unsafe impl Send for SegmentCell {}
unsafe impl Sync for SegmentCell {}

type SegmentRef = Arc<SegmentCell>;

fn new_segment_ref() -> SegmentRef {
    Arc::new(SegmentCell(UnsafeCell::new(Segment::new())))
}

// ---- collector control -----------------------------------------------------

struct Slot {
    parked: bool,
    safe_region: bool,
    values: Vec<Value>,
    frames: Vec<FrameRef>,
    segment: SegmentRef,
}

#[derive(Default)]
struct Ctrl {
    gc_requested: bool,
    epoch: u64,
    next_id: u32,
    slots: HashMap<u32, Slot>,
    /// Segments of exited mutators. Their objects may still be live (a
    /// parent can hold results a child allocated), so they are swept with
    /// everything else and reissued to new mutators.
    pool: Vec<SegmentRef>,
}

/// Batch size for the parallel-mark work queue; workers donate this many
/// values back whenever their local stack doubles it.
const MARK_BATCH: usize = 256;

/// Root sets smaller than this are marked sequentially — spawning workers
/// costs more than the marking itself.
const PAR_MARK_MIN_ROOTS: usize = 64;

struct MarkQueueState {
    batches: Vec<Vec<Value>>,
    /// Workers currently processing a batch (may still donate more).
    active: usize,
}

/// Shared work queue for parallel marking. Termination: a worker exits when
/// the queue is empty *and* no worker is mid-batch (nobody can donate more).
struct MarkQueue {
    state: Mutex<MarkQueueState>,
    cv: Condvar,
}

impl MarkQueue {
    fn run_worker(&self) {
        loop {
            let batch = {
                let mut st = self.state.lock();
                loop {
                    if let Some(b) = st.batches.pop() {
                        st.active += 1;
                        break b;
                    }
                    if st.active == 0 {
                        return;
                    }
                    self.cv.wait(&mut st);
                }
            };
            let mut local = batch;
            while let Some(v) = local.pop() {
                if let Value::Obj(r) = v {
                    // Atomic swap: exactly one worker wins each object.
                    if !r.set_mark(true) {
                        r.object().trace_children(&mut |child| local.push(child));
                        if local.len() >= 2 * MARK_BATCH {
                            let donated = local.split_off(local.len() - MARK_BATCH);
                            let mut st = self.state.lock();
                            st.batches.push(donated);
                            self.cv.notify_one();
                        }
                    }
                }
            }
            let mut st = self.state.lock();
            st.active -= 1;
            if st.active == 0 && st.batches.is_empty() {
                self.cv.notify_all();
            }
        }
    }
}

/// The shared garbage-collected heap.
pub struct Heap {
    bytes: AtomicUsize,
    threshold: AtomicUsize,
    stress: AtomicBool,
    min_threshold: usize,
    /// `HeapConfig::gc_threads`: cap on parallel mark workers (0 = cores).
    gc_threads: usize,
    gc_flag: AtomicBool,
    ctrl: Mutex<Ctrl>,
    /// Collector waits here for mutators to park.
    cv_mutators: Condvar,
    /// Parked mutators wait here for the collection to finish.
    cv_resume: Condvar,
    allocations: AtomicU64,
    collections: AtomicU64,
    objects_freed: AtomicU64,
    /// Allocations that grew their segment by a chunk; the fast-path count
    /// is derived as `allocations - segment_refills`.
    segment_refills: AtomicU64,
    /// Max mark workers used by any single collection.
    mark_workers: AtomicU64,
    pause_ns_total: AtomicU64,
    pause_ns_max: AtomicU64,
    mark_ns_total: AtomicU64,
    sweep_ns_total: AtomicU64,
}

impl Heap {
    pub fn new(config: HeapConfig) -> Arc<Heap> {
        Arc::new(Heap {
            bytes: AtomicUsize::new(0),
            threshold: AtomicUsize::new(config.initial_threshold.max(config.min_threshold)),
            stress: AtomicBool::new(config.stress),
            min_threshold: config.min_threshold,
            gc_threads: config.gc_threads,
            gc_flag: AtomicBool::new(false),
            ctrl: Mutex::new(Ctrl::default()),
            cv_mutators: Condvar::new(),
            cv_resume: Condvar::new(),
            allocations: AtomicU64::new(0),
            collections: AtomicU64::new(0),
            objects_freed: AtomicU64::new(0),
            segment_refills: AtomicU64::new(0),
            mark_workers: AtomicU64::new(0),
            pause_ns_total: AtomicU64::new(0),
            pause_ns_max: AtomicU64::new(0),
            mark_ns_total: AtomicU64::new(0),
            sweep_ns_total: AtomicU64::new(0),
        })
    }

    /// Turn allocation-stress collection on or off at runtime.
    pub fn set_stress(&self, on: bool) {
        self.stress.store(on, Ordering::Relaxed);
    }

    /// Whether a stop-the-world collection has been requested. Cheap enough
    /// for per-statement callers that want to flag their state (e.g. the
    /// debugger's thread pane) before committing to [`Heap::poll`].
    #[inline]
    pub fn gc_pending(&self) -> bool {
        self.gc_flag.load(Ordering::Acquire)
    }

    /// Register the calling execution thread as a mutator. The world cannot
    /// stop until this mutator parks, so drop the guard (or keep it inside
    /// safe regions) whenever the thread blocks.
    pub fn register_mutator(self: &Arc<Self>) -> MutatorGuard {
        let mut ctrl = self.ctrl.lock();
        let id = ctrl.next_id;
        ctrl.next_id += 1;
        let segment = ctrl.pool.pop().unwrap_or_else(new_segment_ref);
        ctrl.slots.insert(
            id,
            Slot {
                parked: false,
                safe_region: false,
                values: Vec::new(),
                frames: Vec::new(),
                segment: Arc::clone(&segment),
            },
        );
        MutatorGuard { heap: Arc::clone(self), id, segment, in_safe_region: Cell::new(false) }
    }

    /// Register a mutator on behalf of a thread that is about to be spawned.
    /// The slot starts in the safe-region state with `roots` published, so a
    /// collection may proceed before the new thread first polls.
    pub fn register_spawned(self: &Arc<Self>, roots: &dyn RootSource) -> MutatorGuard {
        let mut sink = RootSink::default();
        roots.roots(&mut sink);
        let mut ctrl = self.ctrl.lock();
        let id = ctrl.next_id;
        ctrl.next_id += 1;
        let segment = ctrl.pool.pop().unwrap_or_else(new_segment_ref);
        ctrl.slots.insert(
            id,
            Slot {
                parked: false,
                safe_region: true,
                values: sink.values,
                frames: sink.frames,
                segment: Arc::clone(&segment),
            },
        );
        MutatorGuard { heap: Arc::clone(self), id, segment, in_safe_region: Cell::new(false) }
    }

    /// Called by a freshly spawned thread whose mutator was created with
    /// [`Heap::register_spawned`]: leaves the initial safe-region state
    /// (waiting out any in-progress collection first) so the thread's roots
    /// are tracked live from here on.
    ///
    /// If the guard is dropped *without* the thread ever starting (spawn
    /// failure), [`MutatorGuard::drop`] deregisters the still-safe-region
    /// slot instead; either way the coordinator never waits on a mutator
    /// that will not arrive.
    pub fn exit_spawn_region(&self, m: &MutatorGuard) {
        let mut ctrl = self.ctrl.lock();
        while ctrl.gc_requested {
            self.cv_resume.wait(&mut ctrl);
        }
        if let Some(slot) = ctrl.slots.get_mut(&m.id) {
            slot.safe_region = false;
            slot.values.clear();
            slot.frames.clear();
        }
    }

    /// Put a mutator back into the spawn-style safe region with `roots`
    /// published: used for a logical thread going *idle* with no OS thread
    /// driving it (a pooled `parallel for` context checked in between
    /// ranges). Collections proceed while it sits idle; the next executor
    /// leaves the region again via [`Heap::exit_spawn_region`].
    pub fn enter_idle_region(&self, m: &MutatorGuard, roots: &dyn RootSource) {
        let mut sink = RootSink::default();
        roots.roots(&mut sink);
        let mut ctrl = self.ctrl.lock();
        if let Some(slot) = ctrl.slots.get_mut(&m.id) {
            slot.safe_region = true;
            slot.values = sink.values;
            slot.frames = sink.frames;
        }
        // A collector may be waiting for this mutator to stop running.
        self.cv_mutators.notify_all();
    }

    /// Cheap safepoint: parks the thread iff a collection has been requested.
    #[inline]
    pub fn poll(&self, m: &MutatorGuard, roots: &dyn RootSource) {
        if self.gc_flag.load(Ordering::Acquire) {
            self.park(m, roots);
        }
    }

    /// Allocate an object, possibly running a collection first. The
    /// placement itself is lock-free with respect to other mutators: the
    /// object goes into this mutator's private segment.
    pub fn alloc(&self, m: &MutatorGuard, roots: &dyn RootSource, obj: Object) -> GcRef {
        debug_assert_eq!(m.heap_ptr(), self as *const _, "mutator belongs to another heap");
        debug_assert!(!m.in_safe_region.get(), "allocation inside a safe region");
        self.allocations.fetch_add(1, Ordering::Relaxed);
        let size = obj.size_estimate();
        let stressed = self.stress.load(Ordering::Relaxed);
        if stressed
            || self.bytes.load(Ordering::Relaxed) + size > self.threshold.load(Ordering::Relaxed)
        {
            let with_pending = WithPending { inner: roots, pending: &obj };
            self.collect(m, &with_pending);
        } else if self.gc_flag.load(Ordering::Acquire) {
            // Another thread is collecting; help it by parking (the pending
            // object's children must be visible to that collection too).
            let with_pending = WithPending { inner: roots, pending: &obj };
            self.park(m, &with_pending);
        }
        // From here to the end of the function the collector cannot run:
        // this mutator is neither parked nor in a safe region, so any
        // newly-requested collection waits for our next safepoint.
        //
        // Attribute the allocation to the mutator's current (call path,
        // line) site; returns 0 (recording nothing) when heap profiling
        // is off.
        let site = tetra_obs::heapprof::record_alloc(size);
        let gc_box = GcBox { mark: AtomicBool::new(false), size, site, obj };
        // SAFETY: owner access outside a collection (see SegmentCell).
        let segment = unsafe { &mut *m.segment.0.get() };
        let (ptr, refilled) = segment.alloc(gc_box);
        if refilled {
            self.segment_refills.fetch_add(1, Ordering::Relaxed);
        }
        self.bytes.fetch_add(size, Ordering::Relaxed);
        GcRef { ptr }
    }

    /// Convenience: allocate a string value.
    pub fn alloc_str(
        &self,
        m: &MutatorGuard,
        roots: &dyn RootSource,
        s: impl Into<String>,
    ) -> Value {
        Value::Obj(self.alloc(m, roots, Object::Str(s.into())))
    }

    /// Convenience: allocate an array value.
    pub fn alloc_array(
        &self,
        m: &MutatorGuard,
        roots: &dyn RootSource,
        items: Vec<Value>,
    ) -> Value {
        Value::Obj(self.alloc(m, roots, Object::array(items)))
    }

    /// Run a blocking operation inside a GC safe region: the thread's roots
    /// are published first so collections proceed while `f` blocks. `f`
    /// must not allocate or mutate the published roots (the collector may
    /// be sweeping this mutator's segment concurrently).
    pub fn safe_region<T>(
        &self,
        m: &MutatorGuard,
        roots: &dyn RootSource,
        f: impl FnOnce() -> T,
    ) -> T {
        let mut sink = RootSink::default();
        roots.roots(&mut sink);
        {
            let mut ctrl = self.ctrl.lock();
            let slot = ctrl.slots.get_mut(&m.id).expect("mutator deregistered");
            slot.safe_region = true;
            slot.values = sink.values;
            slot.frames = sink.frames;
            // A collector may be waiting for this thread to stop running.
            self.cv_mutators.notify_all();
        }
        m.in_safe_region.set(true);
        let result = f();
        m.in_safe_region.set(false);
        let mut ctrl = self.ctrl.lock();
        while ctrl.gc_requested {
            self.cv_resume.wait(&mut ctrl);
        }
        if let Some(slot) = ctrl.slots.get_mut(&m.id) {
            slot.safe_region = false;
            slot.values.clear();
            slot.frames.clear();
        }
        result
    }

    /// Force a collection immediately (exposed for tests and `gc()` builtin).
    pub fn collect_now(&self, m: &MutatorGuard, roots: &dyn RootSource) {
        self.collect(m, roots);
    }

    pub fn stats(&self) -> GcStats {
        let allocations = self.allocations.load(Ordering::Relaxed);
        let objects_freed = self.objects_freed.load(Ordering::Relaxed);
        let segment_refills = self.segment_refills.load(Ordering::Relaxed);
        GcStats {
            allocations,
            collections: self.collections.load(Ordering::Relaxed),
            objects_freed,
            live_objects: allocations.saturating_sub(objects_freed),
            live_bytes: self.bytes.load(Ordering::Relaxed) as u64,
            pause_total_us: ns_to_us_ceil(self.pause_ns_total.load(Ordering::Relaxed)),
            pause_max_us: ns_to_us_ceil(self.pause_ns_max.load(Ordering::Relaxed)),
            mark_us: ns_to_us_ceil(self.mark_ns_total.load(Ordering::Relaxed)),
            sweep_us: ns_to_us_ceil(self.sweep_ns_total.load(Ordering::Relaxed)),
            alloc_fast_path: allocations.saturating_sub(segment_refills),
            segment_refills,
            mark_workers: self.mark_workers.load(Ordering::Relaxed),
        }
    }

    /// Flush allocator/collector counters into the tetra-obs metrics
    /// registry (no-op without an active metrics session). Called once at
    /// the end of a run — the registry's global lock must never sit on the
    /// allocation hot path.
    pub fn publish_metrics(&self) {
        if !tetra_obs::metrics_enabled() {
            return;
        }
        let s = self.stats();
        tetra_obs::metrics::counter_add("gc.alloc_fast_path", s.alloc_fast_path);
        tetra_obs::metrics::counter_add("gc.segment_refills", s.segment_refills);
        tetra_obs::metrics::counter_add("gc.mark_workers", s.mark_workers);
    }

    // ---- internals ---------------------------------------------------------

    /// Park at a safepoint until the in-progress collection finishes.
    #[cold]
    fn park(&self, m: &MutatorGuard, roots: &dyn RootSource) {
        let mut sink = RootSink::default();
        roots.roots(&mut sink);
        let mut ctrl = self.ctrl.lock();
        if !ctrl.gc_requested {
            return; // raced with the end of the collection
        }
        let epoch = ctrl.epoch;
        {
            let slot = ctrl.slots.get_mut(&m.id).expect("mutator deregistered");
            slot.parked = true;
            slot.values = sink.values;
            slot.frames = sink.frames;
        }
        self.cv_mutators.notify_all();
        while ctrl.gc_requested && ctrl.epoch == epoch {
            self.cv_resume.wait(&mut ctrl);
        }
        if let Some(slot) = ctrl.slots.get_mut(&m.id) {
            slot.parked = false;
            slot.values.clear();
            slot.frames.clear();
        }
    }

    /// Record one stop-the-world pause. Totals accumulate in nanoseconds;
    /// `stats()` converts to µs exactly once, so a thousand 200ns pauses
    /// report as 200µs, not 1000µs.
    fn record_pause_ns(&self, pause_ns: u64) {
        self.pause_ns_total.fetch_add(pause_ns, Ordering::Relaxed);
        self.pause_ns_max.fetch_max(pause_ns, Ordering::Relaxed);
    }

    /// Decide how many mark workers a collection should use.
    fn plan_mark_workers(&self, mutators: usize, root_count: usize) -> usize {
        if root_count < PAR_MARK_MIN_ROOTS {
            return 1;
        }
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let cap = if self.gc_threads > 0 { self.gc_threads } else { cores };
        mutators.min(cap).max(1)
    }

    /// Become the collector (or park if someone else already is).
    fn collect(&self, m: &MutatorGuard, roots: &dyn RootSource) {
        debug_assert!(!m.in_safe_region.get(), "collection triggered inside a safe region");
        let mut sink = RootSink::default();
        roots.roots(&mut sink);
        let mut ctrl = self.ctrl.lock();
        if ctrl.gc_requested {
            // Someone else is collecting: behave like park().
            let epoch = ctrl.epoch;
            {
                let slot = ctrl.slots.get_mut(&m.id).expect("mutator deregistered");
                slot.parked = true;
                slot.values = sink.values;
                slot.frames = sink.frames;
            }
            self.cv_mutators.notify_all();
            while ctrl.gc_requested && ctrl.epoch == epoch {
                self.cv_resume.wait(&mut ctrl);
            }
            if let Some(slot) = ctrl.slots.get_mut(&m.id) {
                slot.parked = false;
                slot.values.clear();
                slot.frames.clear();
            }
            return;
        }
        ctrl.gc_requested = true;
        self.gc_flag.store(true, Ordering::Release);
        // Pause accounting always runs (it feeds GcStats); the obs spans
        // below are no-ops without an active tracing session.
        let collection = self.collections.load(Ordering::Relaxed) as u32 + 1;
        let pause_start = Instant::now();
        let obs_pause = tetra_obs::now_ns();
        {
            let slot = ctrl.slots.get_mut(&m.id).expect("mutator deregistered");
            slot.parked = true;
            slot.values = sink.values;
            slot.frames = sink.frames;
        }
        // Wait for every other mutator to park or block in a safe region.
        // The ctrl lock is released only inside this wait: a mutator that
        // deregisters here hands its segment to the pool and wakes us; from
        // the moment the predicate holds until resume, the slot/pool
        // picture is frozen (we hold the lock throughout mark and sweep).
        let obs_stw = tetra_obs::now_ns();
        while ctrl.slots.iter().any(|(id, s)| *id != m.id && !s.parked && !s.safe_region) {
            self.cv_mutators.wait(&mut ctrl);
        }
        tetra_obs::gc_phase(tetra_obs::GC_TID, tetra_obs::GcPhase::StwWait, collection, obs_stw, 0);

        // ---- world is stopped: mark ----
        let mark_start = Instant::now();
        let obs_mark = tetra_obs::now_ns();
        let mut root_values: Vec<Value> = Vec::new();
        let mut seen_frames = std::collections::HashSet::new();
        for slot in ctrl.slots.values() {
            root_values.extend_from_slice(&slot.values);
            for f in &slot.frames {
                if seen_frames.insert(Arc::as_ptr(f) as usize) {
                    f.trace(&mut |v| root_values.push(v));
                }
            }
        }
        let workers = self.plan_mark_workers(ctrl.slots.len(), root_values.len());
        if workers <= 1 {
            let mut worklist = root_values;
            while let Some(v) = worklist.pop() {
                if let Value::Obj(r) = v {
                    if !r.set_mark(true) {
                        r.object().trace_children(&mut |child| worklist.push(child));
                    }
                }
            }
        } else {
            let batches: Vec<Vec<Value>> =
                root_values.chunks(MARK_BATCH).map(|c| c.to_vec()).collect();
            let queue = MarkQueue {
                state: Mutex::new(MarkQueueState { batches, active: 0 }),
                cv: Condvar::new(),
            };
            std::thread::scope(|scope| {
                for _ in 1..workers {
                    scope.spawn(|| queue.run_worker());
                }
                // The coordinator is stopped anyway: put it to work too.
                queue.run_worker();
            });
        }
        self.mark_workers.fetch_max(workers as u64, Ordering::Relaxed);
        let mark_ns = mark_start.elapsed().as_nanos() as u64;
        self.mark_ns_total.fetch_add(mark_ns, Ordering::Relaxed);
        tetra_obs::gc_phase(
            tetra_obs::GC_TID,
            tetra_obs::GcPhase::Mark,
            collection,
            obs_mark,
            workers as u32,
        );

        // ---- sweep, one segment at a time ----
        let sweep_start = Instant::now();
        let obs_sweep = tetra_obs::now_ns();
        // Live-after-GC census per allocation site, taken while the sweep
        // already walks every object. Only populated under --heap-profile.
        let profiling = tetra_obs::heap_profile_enabled();
        let mut census: HashMap<u64, (u64, u64)> = HashMap::new();
        let segments: Vec<SegmentRef> = ctrl
            .slots
            .values()
            .map(|s| Arc::clone(&s.segment))
            .chain(ctrl.pool.iter().cloned())
            .collect();
        let mut freed = 0u64;
        let mut freed_bytes = 0usize;
        let segments_swept = segments.len() as u32;
        for cell in &segments {
            // SAFETY: every owner is parked or in a safe region and we hold
            // the ctrl lock, so the collector has exclusive segment access.
            let segment = unsafe { &mut *cell.0.get() };
            let (f, fb) = segment.sweep(if profiling { Some(&mut census) } else { None });
            freed += f;
            freed_bytes += fb;
        }
        if profiling {
            tetra_obs::heapprof::record_census(&census);
        }
        let live = self.bytes.fetch_sub(freed_bytes, Ordering::Relaxed) - freed_bytes;
        self.threshold.store((live * 2).max(self.min_threshold), Ordering::Relaxed);
        self.objects_freed.fetch_add(freed, Ordering::Relaxed);
        self.collections.fetch_add(1, Ordering::Relaxed);
        let sweep_ns = sweep_start.elapsed().as_nanos() as u64;
        self.sweep_ns_total.fetch_add(sweep_ns, Ordering::Relaxed);
        tetra_obs::gc_phase(
            tetra_obs::GC_TID,
            tetra_obs::GcPhase::Sweep,
            collection,
            obs_sweep,
            segments_swept,
        );
        tetra_obs::gc_phase(tetra_obs::GC_TID, tetra_obs::GcPhase::Pause, collection, obs_pause, 0);
        self.record_pause_ns(pause_start.elapsed().as_nanos() as u64);

        // ---- resume the world ----
        ctrl.gc_requested = false;
        ctrl.epoch += 1;
        self.gc_flag.store(false, Ordering::Release);
        if let Some(slot) = ctrl.slots.get_mut(&m.id) {
            slot.parked = false;
            slot.values.clear();
            slot.frames.clear();
        }
        self.cv_resume.notify_all();
    }

    fn deregister(&self, id: u32) {
        let mut ctrl = self.ctrl.lock();
        if let Some(slot) = ctrl.slots.remove(&id) {
            // Hand the segment to the pool under the same lock acquisition
            // that removes the slot: a collector observing the slot map also
            // observes the pool, so the segment is swept exactly once.
            ctrl.pool.push(slot.segment);
        }
        // A collector may be waiting on this mutator to park; removing the
        // slot satisfies its predicate, so wake it. (This is what makes
        // exiting while `gc_flag` is raised safe: the coordinator re-checks
        // the slot map and stops waiting on the departed mutator.)
        self.cv_mutators.notify_all();
    }
}

/// Registration handle for one mutator thread. Dropping it deregisters the
/// thread, allowing collections to proceed without it, and returns its
/// allocation segment to the heap's pool.
pub struct MutatorGuard {
    heap: Arc<Heap>,
    id: u32,
    /// This mutator's private allocation segment (shared with the control
    /// slot so the collector can sweep it during stop-the-world).
    segment: SegmentRef,
    /// Debug guard for invariant 3: allocation inside a safe region would
    /// race the collector. `Cell` also keeps the guard `!Sync`, pinning all
    /// segment access to the owning thread.
    in_safe_region: Cell<bool>,
}

impl MutatorGuard {
    fn heap_ptr(&self) -> *const Heap {
        Arc::as_ptr(&self.heap)
    }

    /// The heap this mutator is registered with.
    pub fn heap(&self) -> &Arc<Heap> {
        &self.heap
    }
}

impl Drop for MutatorGuard {
    fn drop(&mut self) {
        self.heap.deregister(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Frame;

    fn test_heap(stress: bool) -> Arc<Heap> {
        Heap::new(HeapConfig {
            initial_threshold: 1 << 14,
            min_threshold: 1 << 10,
            stress,
            ..HeapConfig::default()
        })
    }

    struct VecRoots(Vec<Value>);
    impl RootSource for VecRoots {
        fn roots(&self, sink: &mut RootSink) {
            for v in &self.0 {
                sink.value(*v);
            }
        }
    }

    #[test]
    fn alloc_and_read_back() {
        let heap = test_heap(false);
        let m = heap.register_mutator();
        let v = heap.alloc_str(&m, &NoRoots, "hello");
        assert_eq!(v.as_str(), Some("hello"));
        assert_eq!(heap.stats().allocations, 1);
        assert_eq!(heap.stats().live_objects, 1);
    }

    #[test]
    fn unrooted_objects_are_collected() {
        let heap = test_heap(false);
        let m = heap.register_mutator();
        for i in 0..100 {
            let _ = heap.alloc_str(&m, &NoRoots, format!("garbage {i}"));
        }
        heap.collect_now(&m, &NoRoots);
        let stats = heap.stats();
        assert_eq!(stats.live_objects, 0);
        assert_eq!(stats.objects_freed, 100);
        assert!(stats.collections >= 1);
    }

    #[test]
    fn rooted_objects_survive() {
        let heap = test_heap(false);
        let m = heap.register_mutator();
        let keep = heap.alloc_str(&m, &NoRoots, "keep me");
        let roots = VecRoots(vec![keep]);
        for i in 0..50 {
            let _ = heap.alloc_str(&m, &roots, format!("garbage {i}"));
        }
        heap.collect_now(&m, &roots);
        assert_eq!(heap.stats().live_objects, 1);
        assert_eq!(keep.as_str(), Some("keep me"));
    }

    #[test]
    fn nested_objects_are_traced_transitively() {
        let heap = test_heap(false);
        let m = heap.register_mutator();
        let inner = heap.alloc_str(&m, &NoRoots, "inner");
        let arr = heap.alloc_array(&m, &VecRoots(vec![inner]), vec![inner]);
        let outer = heap.alloc_array(&m, &VecRoots(vec![arr]), vec![arr, Value::Int(7)]);
        let roots = VecRoots(vec![outer]);
        heap.collect_now(&m, &roots);
        assert_eq!(heap.stats().live_objects, 3);
        // Deep access still works.
        if let Object::Array(items) = outer.as_obj().unwrap().object() {
            let items = items.lock();
            if let Object::Array(inner_items) = items[0].as_obj().unwrap().object() {
                assert_eq!(inner_items.lock()[0].as_str(), Some("inner"));
            } else {
                panic!("expected array");
            }
        } else {
            panic!("expected array");
        }
    }

    #[test]
    fn frames_root_their_contents() {
        let heap = test_heap(false);
        let m = heap.register_mutator();
        let frame = Frame::new_ref();
        let v = heap.alloc_str(&m, &NoRoots, "framed");
        frame.set("x", v);
        struct FrameRoots(FrameRef);
        impl RootSource for FrameRoots {
            fn roots(&self, sink: &mut RootSink) {
                sink.frame(&self.0);
            }
        }
        let roots = FrameRoots(frame.clone());
        heap.collect_now(&m, &roots);
        assert_eq!(heap.stats().live_objects, 1);
        assert_eq!(frame.get("x").unwrap().as_str(), Some("framed"));
    }

    #[test]
    fn stress_mode_collects_on_every_allocation() {
        let heap = test_heap(true);
        let m = heap.register_mutator();
        let a = heap.alloc_str(&m, &NoRoots, "a");
        let roots = VecRoots(vec![a]);
        let b = heap.alloc_str(&m, &roots, "b");
        // Each alloc collected first: the first string survived because it
        // was rooted during the second allocation.
        assert_eq!(a.as_str(), Some("a"));
        assert_eq!(b.as_str(), Some("b"));
        assert!(heap.stats().collections >= 2);
    }

    #[test]
    fn pending_allocation_children_are_rooted() {
        // Building an array whose children are otherwise unrooted must not
        // lose them when the array allocation itself triggers a collection.
        let heap = test_heap(true);
        let m = heap.register_mutator();
        let s = heap.alloc_str(&m, &NoRoots, "child");
        // `s` is passed only as the pending object's child.
        let arr = heap.alloc_array(&m, &VecRoots(vec![s]), vec![s]);
        if let Object::Array(items) = arr.as_obj().unwrap().object() {
            assert_eq!(items.lock()[0].as_str(), Some("child"));
        }
    }

    #[test]
    fn threshold_triggers_automatic_collection() {
        let heap = Heap::new(HeapConfig {
            initial_threshold: 4096,
            min_threshold: 1024,
            ..HeapConfig::default()
        });
        let m = heap.register_mutator();
        for i in 0..1000 {
            let _ = heap.alloc_str(&m, &NoRoots, format!("string number {i} with padding"));
        }
        assert!(heap.stats().collections > 0, "threshold should have fired");
        assert!(heap.stats().live_objects < 1000);
    }

    #[test]
    fn concurrent_mutators_survive_stw_collections() {
        // 4 threads allocate and keep their last 8 values rooted while
        // stress-collecting; every kept value must stay intact.
        let heap = test_heap(true);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let heap = Arc::clone(&heap);
                scope.spawn(move || {
                    let m = heap.register_mutator();
                    let mut kept: Vec<Value> = Vec::new();
                    for i in 0..200 {
                        let roots = VecRoots(kept.clone());
                        let v = heap.alloc_str(&m, &roots, format!("t{t} v{i}"));
                        kept.push(v);
                        if kept.len() > 8 {
                            kept.remove(0);
                        }
                        heap.poll(&m, &VecRoots(kept.clone()));
                    }
                    for (j, v) in kept.iter().enumerate() {
                        let expect = format!("t{t} v{}", 200 - kept.len() + j);
                        assert_eq!(v.as_str(), Some(expect.as_str()));
                    }
                });
            }
        });
        assert!(heap.stats().collections > 0);
    }

    #[test]
    fn safe_region_lets_gc_proceed_while_blocked() {
        use std::sync::mpsc;
        let heap = test_heap(false);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (ready_tx, ready_rx) = mpsc::channel::<()>();
        std::thread::scope(|scope| {
            let heap2 = Arc::clone(&heap);
            scope.spawn(move || {
                let m = heap2.register_mutator();
                let v = heap2.alloc_str(&m, &NoRoots, "blocked thread value");
                let roots = VecRoots(vec![v]);
                heap2.safe_region(&m, &roots, || {
                    ready_tx.send(()).unwrap();
                    // Block until the main thread has collected.
                    block_rx.recv().unwrap();
                });
                assert_eq!(v.as_str(), Some("blocked thread value"));
            });
            ready_rx.recv().unwrap();
            let m = heap.register_mutator();
            // This collection must complete even though the other thread is
            // blocked — it is in a safe region.
            heap.collect_now(&m, &NoRoots);
            assert_eq!(heap.stats().collections, 1);
            // The blocked thread's value survived via its published roots.
            assert_eq!(heap.stats().live_objects, 1);
            block_tx.send(()).unwrap();
        });
    }

    #[test]
    fn register_spawned_roots_values_before_thread_starts() {
        let heap = test_heap(false);
        let parent = heap.register_mutator();
        let v = heap.alloc_str(&parent, &NoRoots, "handed to child");
        let child_guard = heap.register_spawned(&VecRoots(vec![v]));
        // Parent drops its interest; a GC here must keep `v` for the child.
        heap.collect_now(&parent, &NoRoots);
        assert_eq!(heap.stats().live_objects, 1);
        assert_eq!(v.as_str(), Some("handed to child"));
        drop(child_guard);
        heap.collect_now(&parent, &NoRoots);
        assert_eq!(heap.stats().live_objects, 0);
    }

    #[test]
    fn stats_track_frees() {
        let heap = test_heap(false);
        let m = heap.register_mutator();
        for _ in 0..10 {
            let _ = heap.alloc_str(&m, &NoRoots, "x");
        }
        heap.collect_now(&m, &NoRoots);
        let s = heap.stats();
        assert_eq!(s.allocations, 10);
        assert_eq!(s.objects_freed, 10);
        assert_eq!(s.live_bytes, 0);
    }

    #[test]
    fn fast_path_and_refill_counters_add_up() {
        let heap = test_heap(false);
        let m = heap.register_mutator();
        for i in 0..100 {
            let _ = heap.alloc_str(&m, &NoRoots, format!("v{i}"));
        }
        let s = heap.stats();
        // 100 allocations into 64-slot chunks: exactly two chunk refills,
        // everything else straight off the free list with no global lock.
        assert_eq!(s.allocations, 100);
        assert_eq!(s.segment_refills, 2);
        assert_eq!(s.alloc_fast_path, 98);
        assert_eq!(s.alloc_fast_path + s.segment_refills, s.allocations);
    }

    #[test]
    fn orphaned_segments_are_swept_and_reused() {
        let heap = test_heap(false);
        let parent = heap.register_mutator();
        {
            let child = heap.register_mutator();
            for i in 0..10 {
                let _ = heap.alloc_str(&child, &NoRoots, format!("orphan {i}"));
            }
        }
        // The child's segment now sits in the pool with 10 unreachable
        // objects; a collection must still find and free them.
        heap.collect_now(&parent, &NoRoots);
        let s = heap.stats();
        assert_eq!(s.objects_freed, 10);
        assert_eq!(s.live_objects, 0);
        // A new mutator takes the pooled segment back over.
        let reused = heap.register_mutator();
        let v = heap.alloc_str(&reused, &NoRoots, "recycled");
        assert_eq!(v.as_str(), Some("recycled"));
    }

    #[test]
    fn parallel_mark_uses_multiple_workers() {
        // Three spawned-state mutators (safe region, roots published) plus
        // the coordinator: with gc_threads = 4 and enough roots, the plan
        // must come out > 1 worker, and nothing may be lost.
        let heap = Heap::new(HeapConfig {
            initial_threshold: 1 << 20,
            min_threshold: 1 << 10,
            stress: false,
            gc_threads: 4,
        });
        let m = heap.register_mutator();
        let mut all = Vec::new();
        for i in 0..300 {
            let v = heap.alloc_array(
                &m,
                &VecRoots(all.clone()),
                vec![Value::Int(i), Value::Int(i * 2)],
            );
            all.push(v);
        }
        let third = all.len() / 3;
        let g1 = heap.register_spawned(&VecRoots(all[..third].to_vec()));
        let g2 = heap.register_spawned(&VecRoots(all[third..2 * third].to_vec()));
        let g3 = heap.register_spawned(&VecRoots(all[2 * third..].to_vec()));
        heap.collect_now(&m, &NoRoots);
        let s = heap.stats();
        assert_eq!(s.live_objects, 300, "parallel mark lost objects");
        assert_eq!(s.mark_workers, 4);
        for (i, v) in all.iter().enumerate() {
            if let Object::Array(items) = v.as_obj().unwrap().object() {
                assert!(matches!(items.lock()[0], Value::Int(n) if n == i as i64));
            } else {
                panic!("expected array");
            }
        }
        drop((g1, g2, g3));
    }

    #[test]
    fn small_root_sets_mark_sequentially() {
        let heap = Heap::new(HeapConfig { gc_threads: 4, ..HeapConfig::default() });
        let m = heap.register_mutator();
        let v = heap.alloc_str(&m, &NoRoots, "lone root");
        heap.collect_now(&m, &VecRoots(vec![v]));
        // Below PAR_MARK_MIN_ROOTS the plan stays at one worker.
        assert_eq!(heap.stats().mark_workers, 1);
        assert_eq!(v.as_str(), Some("lone root"));
    }

    #[test]
    fn pause_totals_accumulate_in_nanoseconds() {
        let heap = test_heap(false);
        // Ten 500ns pauses: summed first (5000ns), converted once → 5µs.
        // Per-pause ceiling would have reported 10µs.
        for _ in 0..10 {
            heap.record_pause_ns(500);
        }
        let s = heap.stats();
        assert_eq!(s.pause_total_us, 5);
        // The max still rounds a nonzero pause up to a full microsecond.
        assert_eq!(s.pause_max_us, 1);
    }

    #[test]
    fn spawn_exit_under_stress_regression() {
        // Mutators that register and exit while collections fire on every
        // allocation: the coordinator must never wait on a departed mutator
        // and every orphaned segment must be swept exactly once. This loops
        // the guard through both registration flavors.
        let heap = test_heap(true);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let heap = Arc::clone(&heap);
                scope.spawn(move || {
                    for i in 0..50 {
                        if i % 2 == 0 {
                            let m = heap.register_mutator();
                            let _ = heap.alloc_str(&m, &NoRoots, format!("t{t} i{i}"));
                            // Guard drops here, mid-traffic, possibly while
                            // another thread's gc_flag is raised.
                        } else {
                            let m = heap.register_spawned(&NoRoots);
                            heap.exit_spawn_region(&m);
                            let _ = heap.alloc_str(&m, &NoRoots, format!("t{t} i{i}"));
                        }
                    }
                });
            }
        });
        let m = heap.register_mutator();
        heap.collect_now(&m, &NoRoots);
        let s = heap.stats();
        assert_eq!(s.allocations, 200);
        assert_eq!(s.live_objects, 0, "an orphaned segment was not swept");
    }
}
