//! # tetra-runtime
//!
//! The shared runtime substrate under both Tetra execution engines (the
//! tree-walking interpreter and the bytecode VM):
//!
//! * [`value`] — runtime values and heap objects;
//! * [`heap`] — the hand-rolled stop-the-world mark-sweep garbage collector
//!   with safepoints and safe regions for blocking operations;
//! * [`mod@env`] — the private/shared symbol tables of the paper (§IV);
//! * [`locks`] — named locks for `lock <name>:` with deadlock and re-entry
//!   detection;
//! * [`pool`] — the persistent work-stealing worker pool both engines'
//!   parallel constructs run on;
//! * [`threads`] — Tetra thread identity and live state for the debugger;
//! * [`console`] — pluggable program I/O (real stdout or captured buffers);
//! * [`error`] — structured runtime errors with source lines.

pub mod console;
pub mod env;
pub mod error;
pub mod heap;
pub mod locks;
pub mod pool;
pub mod threads;
pub mod value;

pub use console::{BufferConsole, Console, ConsoleRef, StdConsole};
pub use env::{Env, Frame, FrameRef, SlotLayout};
pub use error::{ErrorKind, RuntimeError};
pub use heap::{GcStats, Heap, HeapConfig, MutatorGuard, NoRoots, RootSink, RootSource};
pub use locks::{LockRegistry, LockRegistryRef};
pub use pool::{PoolPanic, PoolStats, WorkerPool};
pub use threads::{ThreadCell, ThreadKind, ThreadRegistry, ThreadSnapshot, ThreadState};
pub use value::{DictKey, GcRef, Object, Value};
