//! Thread identity and live state, shared by both engines and the debugger.
//!
//! The paper's IDE shows "multiple code views ... one for each thread of the
//! currently running program" (§III). That needs a registry of every Tetra
//! thread with its kind, parent, current line and blocking state, cheap
//! enough to update on every statement: lines and states are atomics inside
//! a shared cell.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::Arc;

/// Why the thread exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadKind {
    /// The initial thread running `main()`.
    Main,
    /// One statement of a `parallel:` block.
    Parallel,
    /// One statement of a `background:` block.
    Background,
    /// A `parallel for` worker.
    ParallelFor,
}

impl ThreadKind {
    pub fn label(&self) -> &'static str {
        match self {
            ThreadKind::Main => "main",
            ThreadKind::Parallel => "parallel",
            ThreadKind::Background => "background",
            ThreadKind::ParallelFor => "parallel-for",
        }
    }
}

/// Coarse run state, readable without locks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    Running,
    /// Blocked acquiring a named lock.
    WaitingLock,
    /// Blocked joining children of a parallel construct.
    Joining,
    /// Blocked reading console input.
    WaitingInput,
    /// Paused by the debugger.
    Paused,
    /// Parked at a GC safepoint while a stop-the-world collection runs.
    /// The cell stays readable throughout (states are atomics), so the
    /// debugger's thread pane renders mid-collection without blocking.
    GcParked,
    Finished,
}

impl ThreadState {
    fn from_u8(v: u8) -> ThreadState {
        match v {
            0 => ThreadState::Running,
            1 => ThreadState::WaitingLock,
            2 => ThreadState::Joining,
            3 => ThreadState::WaitingInput,
            4 => ThreadState::Paused,
            6 => ThreadState::GcParked,
            _ => ThreadState::Finished,
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            ThreadState::Running => 0,
            ThreadState::WaitingLock => 1,
            ThreadState::Joining => 2,
            ThreadState::WaitingInput => 3,
            ThreadState::Paused => 4,
            ThreadState::Finished => 5,
            ThreadState::GcParked => 6,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            ThreadState::Running => "running",
            ThreadState::WaitingLock => "waiting on lock",
            ThreadState::Joining => "joining children",
            ThreadState::WaitingInput => "waiting for input",
            ThreadState::Paused => "paused",
            ThreadState::GcParked => "parked for gc",
            ThreadState::Finished => "finished",
        }
    }
}

/// Live, shared state of one Tetra thread.
pub struct ThreadCell {
    pub id: u32,
    pub parent: Option<u32>,
    pub kind: ThreadKind,
    line: AtomicU32,
    state: AtomicU8,
    /// Lock name while in `WaitingLock` (debugger display).
    waiting_lock: Mutex<Option<String>>,
}

impl ThreadCell {
    pub fn set_line(&self, line: u32) {
        self.line.store(line, Ordering::Relaxed);
    }

    pub fn line(&self) -> u32 {
        self.line.load(Ordering::Relaxed)
    }

    pub fn set_state(&self, s: ThreadState) {
        self.state.store(s.to_u8(), Ordering::Relaxed);
    }

    pub fn state(&self) -> ThreadState {
        ThreadState::from_u8(self.state.load(Ordering::Relaxed))
    }

    pub fn set_waiting_lock(&self, name: Option<String>) {
        *self.waiting_lock.lock() = name;
    }

    pub fn waiting_lock(&self) -> Option<String> {
        self.waiting_lock.lock().clone()
    }
}

/// A point-in-time view of one thread (what the IDE's thread pane shows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadSnapshot {
    pub id: u32,
    pub parent: Option<u32>,
    pub kind: ThreadKind,
    pub line: u32,
    pub state: ThreadState,
    pub waiting_lock: Option<String>,
}

impl ThreadSnapshot {
    /// One-line rendering used by `tetra debug`'s `threads` command.
    pub fn describe(&self) -> String {
        let mut s = format!(
            "thread {} [{}] line {} — {}",
            self.id,
            self.kind.label(),
            self.line,
            self.state.label()
        );
        if let Some(l) = &self.waiting_lock {
            s.push_str(&format!(" `{l}`"));
        }
        if let Some(p) = self.parent {
            s.push_str(&format!(" (spawned by {p})"));
        }
        s
    }
}

/// Registry of all threads that have existed in one program run.
#[derive(Default)]
pub struct ThreadRegistry {
    cells: Mutex<Vec<Arc<ThreadCell>>>,
    next: AtomicU32,
}

impl ThreadRegistry {
    pub fn new() -> Arc<ThreadRegistry> {
        Arc::new(ThreadRegistry::default())
    }

    /// Register a new thread and return its cell. Thread 0 is always the
    /// main thread.
    pub fn spawn(&self, parent: Option<u32>, kind: ThreadKind) -> Arc<ThreadCell> {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        let cell = Arc::new(ThreadCell {
            id,
            parent,
            kind,
            line: AtomicU32::new(0),
            state: AtomicU8::new(ThreadState::Running.to_u8()),
            waiting_lock: Mutex::new(None),
        });
        self.cells.lock().push(Arc::clone(&cell));
        cell
    }

    /// Snapshot every thread, in creation order.
    pub fn snapshot(&self) -> Vec<ThreadSnapshot> {
        self.cells
            .lock()
            .iter()
            .map(|c| ThreadSnapshot {
                id: c.id,
                parent: c.parent,
                kind: c.kind,
                line: c.line(),
                state: c.state(),
                waiting_lock: c.waiting_lock(),
            })
            .collect()
    }

    /// Snapshot only threads that have not finished.
    pub fn live_snapshot(&self) -> Vec<ThreadSnapshot> {
        self.snapshot().into_iter().filter(|t| t.state != ThreadState::Finished).collect()
    }

    /// Total threads ever created (benchmark metric).
    pub fn total_spawned(&self) -> u32 {
        self.next.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential_from_zero() {
        let reg = ThreadRegistry::new();
        let main = reg.spawn(None, ThreadKind::Main);
        let child = reg.spawn(Some(main.id), ThreadKind::Parallel);
        assert_eq!(main.id, 0);
        assert_eq!(child.id, 1);
        assert_eq!(reg.total_spawned(), 2);
    }

    #[test]
    fn state_round_trips_through_atomics() {
        let reg = ThreadRegistry::new();
        let t = reg.spawn(None, ThreadKind::Main);
        for s in [
            ThreadState::Running,
            ThreadState::WaitingLock,
            ThreadState::Joining,
            ThreadState::WaitingInput,
            ThreadState::Paused,
            ThreadState::GcParked,
            ThreadState::Finished,
        ] {
            t.set_state(s);
            assert_eq!(t.state(), s);
        }
    }

    #[test]
    fn snapshot_reflects_live_updates() {
        let reg = ThreadRegistry::new();
        let t = reg.spawn(None, ThreadKind::Main);
        t.set_line(42);
        t.set_state(ThreadState::WaitingLock);
        t.set_waiting_lock(Some("largest".into()));
        let snap = &reg.snapshot()[0];
        assert_eq!(snap.line, 42);
        assert_eq!(snap.state, ThreadState::WaitingLock);
        assert_eq!(snap.waiting_lock.as_deref(), Some("largest"));
        let desc = snap.describe();
        assert!(desc.contains("waiting on lock"), "{desc}");
        assert!(desc.contains("`largest`"), "{desc}");
    }

    #[test]
    fn live_snapshot_hides_finished() {
        let reg = ThreadRegistry::new();
        let a = reg.spawn(None, ThreadKind::Main);
        let _b = reg.spawn(Some(0), ThreadKind::Background);
        a.set_state(ThreadState::Finished);
        let live = reg.live_snapshot();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].kind, ThreadKind::Background);
    }
}
