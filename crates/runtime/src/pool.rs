//! A hand-rolled, persistent work-stealing worker pool.
//!
//! Both engines' parallel constructs used to spawn fresh OS threads with
//! statically partitioned work: a skewed `parallel for` serialized on its
//! slowest chunk, and a construct inside a loop paid thread-spawn cost on
//! every iteration. The pool replaces that with classic work stealing:
//!
//! * one deque per worker; a worker pops its own deque LIFO (the most
//!   recently split — and therefore cache-nearest — range first);
//! * an idle worker steals **half** a victim's deque from the front (the
//!   oldest, largest ranges), amortizing steal traffic;
//! * index-range tasks split **adaptively**: the executing worker halves a
//!   range down to its grain, keeping the unprocessed tail exposed in its
//!   own deque where thieves can find it. Balanced loops never split more
//!   than the log of their length; skewed loops shed work exactly where it
//!   piles up;
//! * a submitter waiting on its batch lends itself to the pool and runs
//!   its own group's tasks (help-first joining). This is what makes nested
//!   parallel constructs deadlock-free: a blocked parent is never just
//!   parked while its children sit in a queue behind it.
//!
//! The pool is created once per program (sized by `worker_threads`) and
//! reused across constructs, so repeated `parallel for`s stop paying
//! per-construct spawn cost. All counters are plain atomics flushed to the
//! `tetra-obs` metrics registry once per run — never on the hot path.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A task in a worker's deque.
enum Unit {
    /// A single closure (one `parallel:` arm).
    Call { group: Arc<Group>, f: Box<dyn FnOnce() + Send> },
    /// An index range of a `parallel for`; splits adaptively on execution.
    Range { group: Arc<Group>, lo: usize, hi: usize, grain: usize, f: RangeFn },
}

type RangeFn = Arc<dyn Fn(usize, usize) + Send + Sync>;

impl Unit {
    fn group(&self) -> &Arc<Group> {
        match self {
            Unit::Call { group, .. } | Unit::Range { group, .. } => group,
        }
    }
}

/// Join state for one submitted batch. `remaining` counts items for range
/// batches and tasks for call batches; the submitter blocks (and helps)
/// until it reaches zero.
struct Group {
    state: Mutex<GroupState>,
    cv: Condvar,
}

struct GroupState {
    remaining: usize,
    panicked: bool,
}

impl Group {
    fn new(remaining: usize) -> Arc<Group> {
        Arc::new(Group {
            state: Mutex::new(GroupState { remaining, panicked: false }),
            cv: Condvar::new(),
        })
    }

    fn complete(&self, n: usize, panicked: bool) {
        let mut st = self.state.lock();
        st.remaining -= n;
        if panicked {
            st.panicked = true;
        }
        if st.remaining == 0 {
            self.cv.notify_all();
        }
    }
}

/// At least one task in the batch panicked (the panic itself was caught so
/// the worker survives; the caller turns this into a runtime error).
#[derive(Debug)]
pub struct PoolPanic;

/// Per-executor counters. Slot `workers` aggregates every helping
/// submitter (there can be several at once; atomics make sharing safe).
#[derive(Default)]
struct ExecutorStats {
    tasks: AtomicU64,
    steals: AtomicU64,
    tasks_stolen: AtomicU64,
    splits: AtomicU64,
    busy_ns: AtomicU64,
}

/// A snapshot of the pool's counters (reported in `RunStats` and flushed
/// to metrics by [`WorkerPool::publish_metrics`]).
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    pub workers: usize,
    /// Tasks executed by pool workers and helping submitters together.
    pub tasks_executed: u64,
    /// Tasks executed by helping submitters (included in `tasks_executed`).
    pub submitter_tasks: u64,
    /// Steal operations (each takes half a victim's deque).
    pub steals: u64,
    /// Tasks moved by those steals.
    pub tasks_stolen: u64,
    /// Adaptive range splits (tail halves exposed for stealing).
    pub range_splits: u64,
    /// Deepest any single deque got.
    pub queue_high_water: u64,
    /// Summed wall time executors spent inside tasks.
    pub busy_ns: u64,
    /// Per-worker (tasks, busy_ns); index = worker id.
    pub per_worker: Vec<(u64, u64)>,
}

struct Idle {
    sleepers: usize,
    shutdown: bool,
}

struct PoolShared {
    /// One deque per worker. The submitter has no deque of its own; its
    /// splits go to the injector.
    queues: Vec<Mutex<VecDeque<Unit>>>,
    /// Overflow queue: submitter-side splits, visible to every worker.
    injector: Mutex<VecDeque<Unit>>,
    idle: Mutex<Idle>,
    wake: Condvar,
    /// `workers + 1` slots; the last belongs to helping submitters.
    stats: Vec<ExecutorStats>,
    queue_high_water: AtomicUsize,
}

impl PoolShared {
    fn push(&self, queue: usize, unit: Unit) {
        let len = {
            let mut q = self.queues[queue].lock();
            q.push_back(unit);
            q.len()
        };
        self.queue_high_water.fetch_max(len, Ordering::Relaxed);
        self.wake_one();
    }

    fn push_injector(&self, unit: Unit) {
        let len = {
            let mut q = self.injector.lock();
            q.push_back(unit);
            q.len()
        };
        self.queue_high_water.fetch_max(len, Ordering::Relaxed);
        self.wake_one();
    }

    /// Wake a sleeping worker, if any. The notify happens under the idle
    /// lock *after* the unit is queued, and sleepers re-check the queues
    /// under that same lock before waiting — so no wakeup is ever lost.
    fn wake_one(&self) {
        let idle = self.idle.lock();
        if idle.sleepers > 0 {
            self.wake.notify_one();
        }
    }

    fn has_work(&self) -> bool {
        !self.injector.lock().is_empty() || self.queues.iter().any(|q| !q.lock().is_empty())
    }

    /// Find a unit for worker `me`: own deque LIFO, then the injector,
    /// then steal half of the first non-empty victim deque (front half —
    /// the oldest, largest ranges).
    fn find_work(&self, me: usize) -> Option<Unit> {
        if let Some(u) = self.queues[me].lock().pop_back() {
            return Some(u);
        }
        if let Some(u) = self.injector.lock().pop_front() {
            return Some(u);
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (me + off) % n;
            let mut q = self.queues[victim].lock();
            let avail = q.len();
            if avail == 0 {
                continue;
            }
            let take = avail.div_ceil(2);
            let stolen: Vec<Unit> = q.drain(..take).collect();
            drop(q);
            self.stats[me].steals.fetch_add(1, Ordering::Relaxed);
            self.stats[me].tasks_stolen.fetch_add(take as u64, Ordering::Relaxed);
            let mut stolen = stolen.into_iter();
            let first = stolen.next();
            if stolen.len() > 0 {
                let mut mine = self.queues[me].lock();
                mine.extend(stolen);
            }
            return first;
        }
        None
    }

    /// Remove the frontmost unit belonging to `group` from any queue (for
    /// a submitter helping its own batch along). Taking from another
    /// worker's deque counts as a steal unless `count_steal` is off
    /// (escalation pulls are not load-balancing).
    fn find_group_work(
        &self,
        group: &Arc<Group>,
        helper: usize,
        count_steal: bool,
    ) -> Option<Unit> {
        {
            let mut q = self.injector.lock();
            if let Some(pos) = q.iter().position(|u| Arc::ptr_eq(u.group(), group)) {
                return q.remove(pos);
            }
        }
        for qm in &self.queues {
            let mut q = qm.lock();
            if let Some(pos) = q.iter().position(|u| Arc::ptr_eq(u.group(), group)) {
                let unit = q.remove(pos);
                drop(q);
                if count_steal {
                    self.stats[helper].steals.fetch_add(1, Ordering::Relaxed);
                    self.stats[helper].tasks_stolen.fetch_add(1, Ordering::Relaxed);
                }
                return unit;
            }
        }
        None
    }

    /// Run one unit as executor `slot`. Ranges split adaptively first:
    /// halve down to the grain, leaving each tail where thieves (or this
    /// worker's next pop) can pick it up.
    fn execute(&self, slot: usize, unit: Unit) {
        let own_deque = slot < self.queues.len();
        let stats = &self.stats[slot];
        match unit {
            Unit::Call { group, f } => {
                let t0 = Instant::now();
                let panicked = catch_unwind(AssertUnwindSafe(f)).is_err();
                stats.busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                stats.tasks.fetch_add(1, Ordering::Relaxed);
                group.complete(1, panicked);
            }
            Unit::Range { group, lo, mut hi, grain, f } => {
                while hi - lo > grain {
                    let mid = lo + (hi - lo) / 2;
                    let tail =
                        Unit::Range { group: group.clone(), lo: mid, hi, grain, f: f.clone() };
                    if own_deque {
                        self.push(slot, tail);
                    } else {
                        self.push_injector(tail);
                    }
                    stats.splits.fetch_add(1, Ordering::Relaxed);
                    hi = mid;
                }
                let t0 = Instant::now();
                let panicked = catch_unwind(AssertUnwindSafe(|| f(lo, hi))).is_err();
                stats.busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                stats.tasks.fetch_add(1, Ordering::Relaxed);
                // Drop this unit's handle on the shared closure BEFORE
                // announcing completion: once the group unblocks, the
                // submitter may tear its world down, and if a worker still
                // held the last strong reference to state that (indirectly)
                // owns the pool, the pool would be dropped — and join its
                // own worker thread — from inside that worker.
                drop(f);
                group.complete(hi - lo, panicked);
            }
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>, me: usize) {
    loop {
        if let Some(unit) = shared.find_work(me) {
            shared.execute(me, unit);
            continue;
        }
        let mut idle = shared.idle.lock();
        if idle.shutdown {
            return;
        }
        if shared.has_work() {
            continue; // raced with a push; rescan
        }
        idle.sleepers += 1;
        // The timeout is belt-and-braces; pushes notify under `idle`.
        shared.wake.wait_for(&mut idle, Duration::from_millis(50));
        idle.sleepers -= 1;
    }
}

/// How long [`WorkerPool::run_calls`] lets queued call tasks wait for an
/// idle worker before escalating them to dedicated spare threads.
const CALL_GRACE: Duration = Duration::from_millis(1);

/// The pool itself. Create once (it spawns its workers immediately) and
/// share; dropping it shuts the workers down and joins them.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    stack_size: usize,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawn `workers` persistent worker threads (at least one), each with
    /// `stack_size` bytes of stack (tree-walking interpreters recurse).
    pub fn new(workers: usize, stack_size: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            idle: Mutex::new(Idle { sleepers: 0, shutdown: false }),
            wake: Condvar::new(),
            stats: (0..=workers).map(|_| ExecutorStats::default()).collect(),
            queue_high_water: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("tetra-pool-{i}"))
                    .stack_size(stack_size)
                    .spawn(move || worker_loop(shared, i))
                    .expect("could not spawn a pool worker thread")
            })
            .collect();
        WorkerPool { shared, stack_size, handles: Mutex::new(handles) }
    }

    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Run `f(lo, hi)` over every sub-range of `[0, len)`, dynamically
    /// balanced with grain-size `grain`. Blocks until all items are done,
    /// lending the calling thread to the pool meanwhile. `f` runs
    /// concurrently on multiple threads and must cope with ranges arriving
    /// in any order.
    pub fn run_range(
        &self,
        len: usize,
        grain: usize,
        f: impl Fn(usize, usize) + Send + Sync + 'static,
    ) -> Result<(), PoolPanic> {
        if len == 0 {
            return Ok(());
        }
        let grain = grain.max(1);
        let group = Group::new(len);
        let f: RangeFn = Arc::new(f);
        // Seed one contiguous range per worker (fewer for short loops);
        // execution splits them further as needed.
        let nworkers = self.workers();
        let nseed = nworkers.min(len.div_ceil(grain)).max(1);
        let per = len.div_ceil(nseed);
        let mut lo = 0;
        let mut i = 0;
        while lo < len {
            let hi = (lo + per).min(len);
            self.shared.push(
                i % nworkers,
                Unit::Range { group: group.clone(), lo, hi, grain, f: f.clone() },
            );
            lo = hi;
            i += 1;
        }
        self.help_until_done(&group)
    }

    /// Run the `parallel:` arms. Unlike ranges, call tasks are *threads*
    /// semantically: they may block on each other (locks) for arbitrarily
    /// long, so every one of them must actually get an executor — queueing
    /// an arm behind a blocked worker would change program behaviour (a
    /// deadlock the program exhibits with true per-arm threads could
    /// silently fail to form). Idle workers get a short grace period to
    /// claim the arms; any arm still queued after it is escalated to a
    /// dedicated spare thread, which is exactly the old spawn-per-arm
    /// behaviour as a fallback.
    pub fn run_calls(&self, tasks: Vec<Box<dyn FnOnce() + Send>>) -> Result<(), PoolPanic> {
        if tasks.is_empty() {
            return Ok(());
        }
        let group = Group::new(tasks.len());
        for (i, f) in tasks.into_iter().enumerate() {
            self.shared.push(i % self.workers(), Unit::Call { group: group.clone(), f });
        }
        {
            let mut st = group.state.lock();
            if st.remaining > 0 {
                group.cv.wait_for(&mut st, CALL_GRACE);
            }
        }
        let helper = self.workers();
        let mut spares = Vec::new();
        while let Some(unit) = self.shared.find_group_work(&group, helper, false) {
            let shared = self.shared.clone();
            let spare = std::thread::Builder::new()
                .name("tetra-pool-spare".to_string())
                .stack_size(self.stack_size)
                .spawn(move || shared.execute(helper, unit))
                .expect("could not spawn a spare pool thread");
            spares.push(spare);
        }
        let panicked = {
            let mut st = group.state.lock();
            while st.remaining > 0 {
                group.cv.wait(&mut st);
            }
            st.panicked
        };
        for h in spares {
            let _ = h.join();
        }
        if panicked {
            Err(PoolPanic)
        } else {
            Ok(())
        }
    }

    /// Block until `group` completes, executing its queued units on this
    /// thread whenever any exist. This is the nested-construct deadlock
    /// guarantee: a submitter never merely parks while work it is waiting
    /// for sits unclaimed in a queue.
    fn help_until_done(&self, group: &Arc<Group>) -> Result<(), PoolPanic> {
        let helper = self.workers();
        loop {
            if let Some(unit) = self.shared.find_group_work(group, helper, true) {
                self.shared.execute(helper, unit);
                continue;
            }
            let mut st = group.state.lock();
            if st.remaining == 0 {
                return if st.panicked { Err(PoolPanic) } else { Ok(()) };
            }
            // Bounded wait, then rescan: a running range task may split
            // and expose new group work at any moment.
            group.cv.wait_for(&mut st, Duration::from_micros(200));
            if st.remaining == 0 {
                return if st.panicked { Err(PoolPanic) } else { Ok(()) };
            }
        }
    }

    pub fn stats(&self) -> PoolStats {
        let workers = self.workers();
        let mut out = PoolStats {
            workers,
            queue_high_water: self.shared.queue_high_water.load(Ordering::Relaxed) as u64,
            ..PoolStats::default()
        };
        for (i, s) in self.shared.stats.iter().enumerate() {
            let tasks = s.tasks.load(Ordering::Relaxed);
            let busy = s.busy_ns.load(Ordering::Relaxed);
            out.tasks_executed += tasks;
            out.steals += s.steals.load(Ordering::Relaxed);
            out.tasks_stolen += s.tasks_stolen.load(Ordering::Relaxed);
            out.range_splits += s.splits.load(Ordering::Relaxed);
            out.busy_ns += busy;
            if i < workers {
                out.per_worker.push((tasks, busy));
            } else {
                out.submitter_tasks = tasks;
            }
        }
        out
    }

    /// Flush the pool's counters to the metrics registry (once per run;
    /// the counters themselves are updated with plain atomics).
    pub fn publish_metrics(&self) {
        if !tetra_obs::metrics_enabled() {
            return;
        }
        let s = self.stats();
        if s.tasks_executed == 0 {
            return;
        }
        tetra_obs::metrics::counter_add("pool.workers", s.workers as u64);
        tetra_obs::metrics::counter_add("pool.tasks", s.tasks_executed);
        tetra_obs::metrics::counter_add("pool.submitter_tasks", s.submitter_tasks);
        tetra_obs::metrics::counter_add("pool.steals", s.steals);
        tetra_obs::metrics::counter_add("pool.tasks_stolen", s.tasks_stolen);
        tetra_obs::metrics::counter_add("pool.range_splits", s.range_splits);
        tetra_obs::metrics::counter_add("pool.queue_high_water", s.queue_high_water);
        tetra_obs::metrics::counter_add("pool.busy_ns", s.busy_ns);
        for (i, (tasks, busy)) in s.per_worker.iter().enumerate() {
            tetra_obs::metrics::counter_add(&format!("pool.worker.{i}.tasks"), *tasks);
            tetra_obs::metrics::counter_add(&format!("pool.worker.{i}.busy_ns"), *busy);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut idle = self.shared.idle.lock();
            idle.shutdown = true;
        }
        self.shared.wake.notify_all();
        let me = std::thread::current().id();
        for h in self.handles.get_mut().drain(..) {
            // A task closure can (indirectly) hold the last reference to
            // whatever owns the pool, putting this drop on a worker
            // thread. Joining ourselves would EDEADLK; detaching is fine —
            // the thread exits on its own via the shutdown flag above.
            if h.thread().id() != me {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn range_runs_every_index_exactly_once() {
        let pool = WorkerPool::new(4, 1 << 20);
        let hits: Arc<Vec<AtomicU64>> = Arc::new((0..1000).map(|_| AtomicU64::new(0)).collect());
        let h = hits.clone();
        pool.run_range(1000, 8, move |lo, hi| {
            for i in lo..hi {
                h[i].fetch_add(1, Ordering::Relaxed);
            }
        })
        .unwrap();
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        let stats = pool.stats();
        assert_eq!(stats.workers, 4);
        assert!(stats.tasks_executed > 0);
    }

    #[test]
    fn calls_all_run_even_past_worker_count() {
        let pool = WorkerPool::new(2, 1 << 20);
        let count = Arc::new(AtomicU64::new(0));
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..16)
            .map(|_| {
                let count = count.clone();
                Box::new(move || {
                    count.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        pool.run_calls(tasks).unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn panic_in_task_is_reported_not_fatal() {
        let pool = WorkerPool::new(2, 1 << 20);
        let r = pool.run_range(10, 1, |lo, _| {
            if lo == 3 {
                panic!("boom");
            }
        });
        assert!(r.is_err());
        // The pool survives for the next batch.
        pool.run_range(10, 1, |_, _| {}).unwrap();
    }

    #[test]
    fn nested_submission_does_not_deadlock() {
        let pool = Arc::new(WorkerPool::new(2, 1 << 20));
        let total = Arc::new(AtomicU64::new(0));
        let (p, t) = (pool.clone(), total.clone());
        pool.run_range(4, 1, move |lo, hi| {
            for _ in lo..hi {
                let t = t.clone();
                p.run_range(8, 1, move |l, h| {
                    t.fetch_add((h - l) as u64, Ordering::Relaxed);
                })
                .unwrap();
            }
        })
        .unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn reuse_across_many_batches() {
        let pool = WorkerPool::new(3, 1 << 20);
        let total = Arc::new(AtomicU64::new(0));
        for _ in 0..50 {
            let t = total.clone();
            pool.run_range(20, 2, move |lo, hi| {
                t.fetch_add((hi - lo) as u64, Ordering::Relaxed);
            })
            .unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 1000);
    }
}
