//! Environments: the "private and shared symbol tables" of the paper (§IV).
//!
//! A [`Frame`] is one symbol table. Frames are reference-counted and
//! internally synchronized because Tetra's `parallel` constructs hand the
//! *same* function frame to several threads (Fig. II assigns `a` and `b`
//! from two threads and reads them after the join), while `parallel for`
//! workers push a *private* frame holding their copy of the induction
//! variable on top of the shared chain.
//!
//! Storage is a dense slot vector, not a hash map: the resolver pass
//! (`tetra-types::resolve`) assigns every statically-known name a slot in a
//! shared [`SlotLayout`], and the interpreter's hot paths read and write
//! `slots[i]` directly — no string hashing, no chain walk. A slot holds
//! `None` until its first assignment, which preserves the exact
//! "used before any assignment" behaviour of the old map-based frames.
//!
//! Names that resolution cannot see (debugger `eval`, the differential-test
//! oracle) fall back to the name-based API: resolution walks the chain
//! innermost → outermost; assignment updates the innermost frame that
//! already binds the name, or defines it in the innermost frame, appending
//! a *dynamic* slot past the layout's. That gives function-level scoping
//! for sequential code and private induction variables for parallel loops —
//! identical semantics on both paths.

use crate::value::Value;
use parking_lot::RwLock;
use std::sync::Arc;
use tetra_intern::Symbol;

/// The compile-time shape of a frame: which name lives in which slot.
///
/// Layouts are built once per function (or per parallel-for body) by the
/// resolver and shared by every activation, so a frame costs one `Vec`
/// allocation and carries its names for the debugger, race detector and GC
/// without storing strings per activation.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct SlotLayout {
    names: Vec<Symbol>,
}

impl SlotLayout {
    pub fn new(names: Vec<Symbol>) -> Arc<SlotLayout> {
        Arc::new(SlotLayout { names })
    }

    /// The empty layout (dynamic-only frames).
    pub fn empty() -> Arc<SlotLayout> {
        static EMPTY: std::sync::OnceLock<Arc<SlotLayout>> = std::sync::OnceLock::new();
        EMPTY.get_or_init(|| Arc::new(SlotLayout { names: Vec::new() })).clone()
    }

    /// Slot index of `name`, if the layout declares it. Linear scan: layouts
    /// are per-function and small, and this only runs on fallback paths.
    pub fn slot_of(&self, name: Symbol) -> Option<usize> {
        self.names.iter().position(|n| *n == name)
    }

    pub fn names(&self) -> &[Symbol] {
        &self.names
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// One symbol table (scope): a slot vector plus its layout. Slots past the
/// layout's length are *dynamic* — appended by name-based defines.
pub struct Frame {
    slots: RwLock<Vec<Option<Value>>>,
    layout: Arc<SlotLayout>,
    /// Names of dynamic slots, in slot order (slot = layout.len() + index).
    dyn_names: RwLock<Vec<Symbol>>,
}

/// Shared handle to a frame.
pub type FrameRef = Arc<Frame>;

impl Frame {
    /// A dynamic-only frame (empty layout).
    pub fn new_ref() -> FrameRef {
        Frame::with_layout(SlotLayout::empty())
    }

    /// A frame shaped by a resolver-produced layout; every declared slot
    /// starts unbound.
    pub fn with_layout(layout: Arc<SlotLayout>) -> FrameRef {
        Arc::new(Frame {
            slots: RwLock::new(vec![None; layout.len()]),
            layout,
            dyn_names: RwLock::new(Vec::new()),
        })
    }

    /// The layout this frame was built from.
    pub fn layout(&self) -> &Arc<SlotLayout> {
        &self.layout
    }

    // ---- slot-indexed access (statically resolved hot path) -------------

    /// Read slot `slot`; `None` when the slot is still unbound.
    #[inline]
    pub fn get_slot(&self, slot: usize) -> Option<Value> {
        self.slots.read().get(slot).copied().flatten()
    }

    /// Write slot `slot` unconditionally.
    #[inline]
    pub fn set_slot(&self, slot: usize, value: Value) {
        self.slots.write()[slot] = Some(value);
    }

    /// The source-level name of a slot (layout or dynamic) — how the
    /// debugger and race detector recover names from (frame, slot) keys.
    pub fn name_of_slot(&self, slot: usize) -> Option<Symbol> {
        let fixed = self.layout.len();
        if slot < fixed {
            self.layout.names().get(slot).copied()
        } else {
            self.dyn_names.read().get(slot - fixed).copied()
        }
    }

    // ---- name-based access (dynamic fallback) ---------------------------

    /// Slot index of `name` in this frame, layout slots first.
    pub fn slot_of_name(&self, name: Symbol) -> Option<usize> {
        if let Some(i) = self.layout.slot_of(name) {
            return Some(i);
        }
        let fixed = self.layout.len();
        self.dyn_names.read().iter().position(|n| *n == name).map(|i| fixed + i)
    }

    pub fn get(&self, name: impl Into<Symbol>) -> Option<Value> {
        self.slot_of_name(name.into()).and_then(|i| self.get_slot(i))
    }

    /// Unconditionally bind `name` in this frame, appending a dynamic slot
    /// if the layout does not declare it. Returns the slot written.
    pub fn set(&self, name: impl Into<Symbol>, value: Value) -> usize {
        let name = name.into();
        if let Some(i) = self.slot_of_name(name) {
            self.set_slot(i, value);
            return i;
        }
        // Append a dynamic slot. Take the slots lock first so the name and
        // its slot appear together.
        let mut slots = self.slots.write();
        self.dyn_names.write().push(name);
        slots.push(Some(value));
        slots.len() - 1
    }

    /// Update `name` only if it is already bound (assigned) here, returning
    /// the slot updated. A declared-but-unassigned layout slot does not
    /// count as bound — mirroring the map-based semantics where a name was
    /// absent until its first assignment.
    pub fn update_existing(&self, name: impl Into<Symbol>, value: Value) -> Option<usize> {
        let i = self.slot_of_name(name.into())?;
        let mut slots = self.slots.write();
        match &mut slots[i] {
            Some(slot) => {
                *slot = value;
                Some(i)
            }
            None => None,
        }
    }

    /// Read `name` together with the slot it is bound in.
    pub fn get_with_slot(&self, name: impl Into<Symbol>) -> Option<(Value, usize)> {
        let i = self.slot_of_name(name.into())?;
        self.get_slot(i).map(|v| (v, i))
    }

    /// Is the name bound (assigned) in this frame?
    pub fn contains(&self, name: impl Into<Symbol>) -> bool {
        self.get(name).is_some()
    }

    /// Number of bound slots (debugger display).
    pub fn len(&self) -> usize {
        self.slots.read().iter().filter(|s| s.is_some()).count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out all bound slots, sorted by name (debugger display).
    pub fn snapshot(&self) -> Vec<(String, Value)> {
        let slots = self.slots.read();
        let dyn_names = self.dyn_names.read();
        let fixed = self.layout.len();
        let mut entries: Vec<(String, Value)> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let v = (*s)?;
                let name = if i < fixed { self.layout.names()[i] } else { dyn_names[i - fixed] };
                Some((name.to_string(), v))
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Invoke `f` on every stored value (GC mark phase; world is stopped).
    pub fn trace(&self, f: &mut dyn FnMut(Value)) {
        for v in self.slots.read().iter().flatten() {
            f(*v);
        }
    }
}

impl std::fmt::Debug for Frame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Frame({} bindings)", self.len())
    }
}

/// A chain of frames, innermost last.
#[derive(Clone, Debug)]
pub struct Env {
    frames: Vec<FrameRef>,
}

impl Env {
    /// A fresh environment with a single (function-level) dynamic frame.
    pub fn new() -> Env {
        Env { frames: vec![Frame::new_ref()] }
    }

    /// A fresh environment whose function frame is shaped by `layout`.
    pub fn new_with_layout(layout: Arc<SlotLayout>) -> Env {
        Env { frames: vec![Frame::with_layout(layout)] }
    }

    /// An environment sharing the given frames (used when spawning threads
    /// for `parallel` blocks: children execute in the parent's scope).
    pub fn from_frames(frames: Vec<FrameRef>) -> Env {
        assert!(!frames.is_empty(), "an Env needs at least one frame");
        Env { frames }
    }

    /// The shared frame handles (for GC root publication and spawning).
    pub fn frames(&self) -> &[FrameRef] {
        &self.frames
    }

    /// Push a fresh private dynamic frame. Returns the new chain as a child
    /// Env, leaving `self` untouched.
    pub fn with_private_frame(&self) -> Env {
        self.with_private_layout(SlotLayout::empty())
    }

    /// Push a fresh private frame shaped by `layout` (a parallel-for
    /// worker's induction-variable scope).
    pub fn with_private_layout(&self, layout: Arc<SlotLayout>) -> Env {
        let mut frames = self.frames.clone();
        frames.push(Frame::with_layout(layout));
        Env { frames }
    }

    /// The innermost frame.
    pub fn innermost(&self) -> &FrameRef {
        self.frames.last().expect("an Env always has a frame")
    }

    // ---- slot-indexed access (statically resolved hot path) -------------

    /// The frame `up` steps out from the innermost.
    #[inline]
    pub fn frame_up(&self, up: usize) -> &FrameRef {
        let i = self.frames.len() - 1 - up;
        &self.frames[i]
    }

    /// Read `(up, slot)` directly; `None` when the slot is unbound.
    #[inline]
    pub fn read_slot(&self, up: usize, slot: usize) -> Option<Value> {
        self.frame_up(up).get_slot(slot)
    }

    /// Write `(up, slot)` directly; returns the written frame's identity
    /// (address) for race keying.
    #[inline]
    pub fn write_slot(&self, up: usize, slot: usize, value: Value) -> usize {
        let frame = self.frame_up(up);
        frame.set_slot(slot, value);
        Arc::as_ptr(frame) as usize
    }

    /// Identity (address) of the frame `up` steps out.
    #[inline]
    pub fn frame_addr(&self, up: usize) -> usize {
        Arc::as_ptr(self.frame_up(up)) as usize
    }

    // ---- name-based access (dynamic fallback) ---------------------------

    /// Read a variable, innermost frame first.
    pub fn get(&self, name: impl Into<Symbol>) -> Option<Value> {
        let name = name.into();
        for frame in self.frames.iter().rev() {
            if let Some(v) = frame.get(name) {
                return Some(v);
            }
        }
        None
    }

    /// Like [`Env::get`] but also reports the identity (address) of the
    /// frame the variable resolved in and its slot there — the race
    /// detector keys accesses by (frame, slot).
    pub fn get_located(&self, name: impl Into<Symbol>) -> Option<(Value, usize, usize)> {
        let name = name.into();
        for frame in self.frames.iter().rev() {
            if let Some((v, slot)) = frame.get_with_slot(name) {
                return Some((v, Arc::as_ptr(frame) as usize, slot));
            }
        }
        None
    }

    /// Like [`Env::get_located`] but also reports how many frames the walk
    /// visited (the `env.chain_depth_walked` observability counter).
    pub fn get_located_walked(
        &self,
        name: impl Into<Symbol>,
    ) -> (Option<(Value, usize, usize)>, u64) {
        let name = name.into();
        let mut walked = 0u64;
        for frame in self.frames.iter().rev() {
            walked += 1;
            if let Some((v, slot)) = frame.get_with_slot(name) {
                return (Some((v, Arc::as_ptr(frame) as usize, slot)), walked);
            }
        }
        (None, walked)
    }

    /// Like [`Env::set`] but reports the identity of the frame written and
    /// the slot written within it.
    pub fn set_located(&self, name: impl Into<Symbol>, value: Value) -> (usize, usize) {
        let name = name.into();
        for frame in self.frames.iter().rev() {
            if let Some(slot) = frame.update_existing(name, value) {
                return (Arc::as_ptr(frame) as usize, slot);
            }
        }
        let slot = self.innermost().set(name, value);
        (Arc::as_ptr(self.innermost()) as usize, slot)
    }

    /// Assign: update the innermost frame that defines `name`, or define it
    /// in the innermost frame.
    pub fn set(&self, name: impl Into<Symbol>, value: Value) {
        self.set_located(name, value);
    }

    /// Define in the innermost frame unconditionally (function parameters,
    /// loop induction variables).
    pub fn define(&self, name: impl Into<Symbol>, value: Value) {
        self.innermost().set(name, value);
    }

    /// Is the name visible anywhere in the chain?
    pub fn contains(&self, name: impl Into<Symbol>) -> bool {
        let name = name.into();
        self.frames.iter().any(|f| f.contains(name))
    }

    /// Depth of the chain (debugger display).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }
}

impl Default for Env {
    fn default() -> Self {
        Env::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let env = Env::new();
        assert!(env.get("x").is_none());
        env.set("x", Value::Int(42));
        assert!(matches!(env.get("x"), Some(Value::Int(42))));
    }

    #[test]
    fn assignment_updates_outer_frame_through_private_frame() {
        let outer = Env::new();
        outer.set("total", Value::Int(0));
        let inner = outer.with_private_frame();
        inner.set("total", Value::Int(10));
        // The write went to the shared outer frame, not the private one.
        assert!(matches!(outer.get("total"), Some(Value::Int(10))));
        assert!(!inner.innermost().contains("total"));
    }

    #[test]
    fn define_shadows_in_private_frame() {
        let outer = Env::new();
        outer.set("i", Value::Int(99));
        let worker = outer.with_private_frame();
        worker.define("i", Value::Int(1));
        assert!(matches!(worker.get("i"), Some(Value::Int(1))));
        // The outer binding is untouched — the induction variable is private.
        assert!(matches!(outer.get("i"), Some(Value::Int(99))));
    }

    #[test]
    fn new_names_go_to_innermost_frame() {
        let outer = Env::new();
        let worker = outer.with_private_frame();
        worker.set("fresh", Value::Bool(true));
        assert!(outer.get("fresh").is_none());
        assert!(worker.get("fresh").is_some());
    }

    #[test]
    fn shared_frames_are_visible_across_env_clones() {
        // Models Fig. II: two "threads" share the function frame.
        let parent = Env::new();
        let t1 = Env::from_frames(parent.frames().to_vec());
        let t2 = Env::from_frames(parent.frames().to_vec());
        t1.set("a", Value::Int(1));
        t2.set("b", Value::Int(2));
        assert!(matches!(parent.get("a"), Some(Value::Int(1))));
        assert!(matches!(parent.get("b"), Some(Value::Int(2))));
    }

    #[test]
    fn snapshot_is_sorted() {
        let f = Frame::new_ref();
        f.set("zeta", Value::Int(1));
        f.set("alpha", Value::Int(2));
        let snap = f.snapshot();
        assert_eq!(snap[0].0, "alpha");
        assert_eq!(snap[1].0, "zeta");
    }

    #[test]
    fn concurrent_frame_access_is_safe() {
        let frame = Frame::new_ref();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let frame = frame.clone();
                scope.spawn(move || {
                    for i in 0..1000 {
                        frame.set(format!("var{t}").as_str(), Value::Int(i));
                        let _ = frame.get(format!("var{}", (t + 1) % 4).as_str());
                    }
                });
            }
        });
        assert_eq!(frame.len(), 4);
    }

    // ---- slot-path tests -------------------------------------------------

    fn layout(names: &[&str]) -> Arc<SlotLayout> {
        SlotLayout::new(names.iter().map(|n| Symbol::intern(n)).collect())
    }

    #[test]
    fn layout_slots_start_unbound() {
        let env = Env::new_with_layout(layout(&["x", "y"]));
        // Declared but never assigned: invisible to reads on both paths.
        assert!(env.read_slot(0, 0).is_none());
        assert!(env.get("x").is_none());
        assert!(!env.contains("x"));
        assert_eq!(env.innermost().len(), 0);
    }

    #[test]
    fn slot_and_name_paths_see_the_same_store() {
        let env = Env::new_with_layout(layout(&["x", "y"]));
        env.write_slot(0, 1, Value::Int(7));
        assert!(matches!(env.get("y"), Some(Value::Int(7))));
        env.set("x", Value::Int(3));
        assert!(matches!(env.read_slot(0, 0), Some(Value::Int(3))));
        // The dynamic write landed in the layout slot, not a fresh one.
        assert_eq!(env.innermost().slot_of_name(Symbol::intern("x")), Some(0));
    }

    #[test]
    fn dynamic_slots_append_past_the_layout() {
        let env = Env::new_with_layout(layout(&["x"]));
        env.set("extra", Value::Bool(true));
        let f = env.innermost();
        assert_eq!(f.slot_of_name(Symbol::intern("extra")), Some(1));
        assert_eq!(f.name_of_slot(1), Some(Symbol::intern("extra")));
        assert!(matches!(f.get_slot(1), Some(Value::Bool(true))));
    }

    #[test]
    fn slot_names_round_trip_for_display() {
        let env = Env::new_with_layout(layout(&["count", "total"]));
        env.write_slot(0, 0, Value::Int(1));
        env.write_slot(0, 1, Value::Int(2));
        let snap = env.innermost().snapshot();
        assert_eq!(
            snap.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            vec!["count", "total"]
        );
        assert_eq!(env.innermost().name_of_slot(1), Some(Symbol::intern("total")));
    }

    #[test]
    fn unassigned_layout_slot_is_not_update_target() {
        // An outer frame *declares* `i` but never assigns it; a dynamic set
        // from an inner frame must not bind the unassigned outer slot unless
        // the chain has nothing else — matching map semantics where the
        // outer frame simply didn't contain `i` yet.
        let outer = Env::new_with_layout(layout(&["i"]));
        let inner = outer.with_private_frame();
        inner.define("i", Value::Int(5));
        inner.set("i", Value::Int(6));
        assert!(matches!(inner.get("i"), Some(Value::Int(6))));
        assert!(outer.get("i").is_none(), "outer slot must stay unbound");
    }

    #[test]
    fn private_layout_frames_shadow_by_slot() {
        let outer = Env::new_with_layout(layout(&["i", "acc"]));
        outer.write_slot(0, 0, Value::Int(99));
        let worker = outer.with_private_layout(layout(&["i"]));
        worker.write_slot(0, 0, Value::Int(1)); // private induction variable
        assert!(matches!(worker.get("i"), Some(Value::Int(1))));
        assert!(matches!(worker.read_slot(1, 0), Some(Value::Int(99))));
        assert!(matches!(outer.get("i"), Some(Value::Int(99))));
    }
}
