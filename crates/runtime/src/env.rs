//! Environments: the "private and shared symbol tables" of the paper (§IV).
//!
//! A [`Frame`] is one symbol table. Frames are reference-counted and
//! internally synchronized because Tetra's `parallel` constructs hand the
//! *same* function frame to several threads (Fig. II assigns `a` and `b`
//! from two threads and reads them after the join), while `parallel for`
//! workers push a *private* frame holding their copy of the induction
//! variable on top of the shared chain.
//!
//! Name resolution walks the chain innermost → outermost; assignment updates
//! the innermost frame that already defines the name, or defines it in the
//! innermost frame. That gives function-level scoping for sequential code
//! and private induction variables for parallel loops.

use crate::value::Value;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// One symbol table (scope).
pub struct Frame {
    map: RwLock<HashMap<String, Value>>,
}

/// Shared handle to a frame.
pub type FrameRef = Arc<Frame>;

impl Frame {
    pub fn new_ref() -> FrameRef {
        Arc::new(Frame { map: RwLock::new(HashMap::new()) })
    }

    pub fn get(&self, name: &str) -> Option<Value> {
        self.map.read().get(name).copied()
    }

    /// Unconditionally bind `name` in this frame.
    pub fn set(&self, name: &str, value: Value) {
        self.map.write().insert(name.to_string(), value);
    }

    /// Update `name` only if it is already bound here. Returns whether it was.
    pub fn update_existing(&self, name: &str, value: Value) -> bool {
        let mut map = self.map.write();
        if let Some(slot) = map.get_mut(name) {
            *slot = value;
            true
        } else {
            false
        }
    }

    pub fn contains(&self, name: &str) -> bool {
        self.map.read().contains_key(name)
    }

    /// Number of bindings (debugger display).
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Copy out all bindings, sorted by name (debugger display).
    pub fn snapshot(&self) -> Vec<(String, Value)> {
        let mut entries: Vec<(String, Value)> =
            self.map.read().iter().map(|(k, v)| (k.clone(), *v)).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Invoke `f` on every stored value (GC mark phase; world is stopped).
    pub fn trace(&self, f: &mut dyn FnMut(Value)) {
        for v in self.map.read().values() {
            f(*v);
        }
    }
}

impl std::fmt::Debug for Frame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Frame({} bindings)", self.len())
    }
}

/// A chain of frames, innermost last.
#[derive(Clone, Debug)]
pub struct Env {
    frames: Vec<FrameRef>,
}

impl Env {
    /// A fresh environment with a single (function-level) frame.
    pub fn new() -> Env {
        Env { frames: vec![Frame::new_ref()] }
    }

    /// An environment sharing the given frames (used when spawning threads
    /// for `parallel` blocks: children execute in the parent's scope).
    pub fn from_frames(frames: Vec<FrameRef>) -> Env {
        assert!(!frames.is_empty(), "an Env needs at least one frame");
        Env { frames }
    }

    /// The shared frame handles (for GC root publication and spawning).
    pub fn frames(&self) -> &[FrameRef] {
        &self.frames
    }

    /// Push a fresh private frame (e.g. a parallel-for worker's induction
    /// variable scope). Returns the new chain as a child Env, leaving `self`
    /// untouched.
    pub fn with_private_frame(&self) -> Env {
        let mut frames = self.frames.clone();
        frames.push(Frame::new_ref());
        Env { frames }
    }

    /// The innermost frame.
    pub fn innermost(&self) -> &FrameRef {
        self.frames.last().expect("an Env always has a frame")
    }

    /// Read a variable, innermost frame first.
    pub fn get(&self, name: &str) -> Option<Value> {
        for frame in self.frames.iter().rev() {
            if let Some(v) = frame.get(name) {
                return Some(v);
            }
        }
        None
    }

    /// Like [`Env::get`] but also reports the identity (address) of the
    /// frame the variable resolved in — the race detector keys accesses by
    /// (frame, name).
    pub fn get_located(&self, name: &str) -> Option<(Value, usize)> {
        for frame in self.frames.iter().rev() {
            if let Some(v) = frame.get(name) {
                return Some((v, Arc::as_ptr(frame) as usize));
            }
        }
        None
    }

    /// Like [`Env::set`] but reports the identity of the frame written.
    pub fn set_located(&self, name: &str, value: Value) -> usize {
        for frame in self.frames.iter().rev() {
            if frame.update_existing(name, value) {
                return Arc::as_ptr(frame) as usize;
            }
        }
        self.innermost().set(name, value);
        Arc::as_ptr(self.innermost()) as usize
    }

    /// Assign: update the innermost frame that defines `name`, or define it
    /// in the innermost frame.
    pub fn set(&self, name: &str, value: Value) {
        for frame in self.frames.iter().rev() {
            if frame.update_existing(name, value) {
                return;
            }
        }
        self.innermost().set(name, value);
    }

    /// Define in the innermost frame unconditionally (function parameters,
    /// loop induction variables).
    pub fn define(&self, name: &str, value: Value) {
        self.innermost().set(name, value);
    }

    /// Is the name visible anywhere in the chain?
    pub fn contains(&self, name: &str) -> bool {
        self.frames.iter().any(|f| f.contains(name))
    }

    /// Depth of the chain (debugger display).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }
}

impl Default for Env {
    fn default() -> Self {
        Env::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let env = Env::new();
        assert!(env.get("x").is_none());
        env.set("x", Value::Int(42));
        assert!(matches!(env.get("x"), Some(Value::Int(42))));
    }

    #[test]
    fn assignment_updates_outer_frame_through_private_frame() {
        let outer = Env::new();
        outer.set("total", Value::Int(0));
        let inner = outer.with_private_frame();
        inner.set("total", Value::Int(10));
        // The write went to the shared outer frame, not the private one.
        assert!(matches!(outer.get("total"), Some(Value::Int(10))));
        assert!(!inner.innermost().contains("total"));
    }

    #[test]
    fn define_shadows_in_private_frame() {
        let outer = Env::new();
        outer.set("i", Value::Int(99));
        let worker = outer.with_private_frame();
        worker.define("i", Value::Int(1));
        assert!(matches!(worker.get("i"), Some(Value::Int(1))));
        // The outer binding is untouched — the induction variable is private.
        assert!(matches!(outer.get("i"), Some(Value::Int(99))));
    }

    #[test]
    fn new_names_go_to_innermost_frame() {
        let outer = Env::new();
        let worker = outer.with_private_frame();
        worker.set("fresh", Value::Bool(true));
        assert!(outer.get("fresh").is_none());
        assert!(worker.get("fresh").is_some());
    }

    #[test]
    fn shared_frames_are_visible_across_env_clones() {
        // Models Fig. II: two "threads" share the function frame.
        let parent = Env::new();
        let t1 = Env::from_frames(parent.frames().to_vec());
        let t2 = Env::from_frames(parent.frames().to_vec());
        t1.set("a", Value::Int(1));
        t2.set("b", Value::Int(2));
        assert!(matches!(parent.get("a"), Some(Value::Int(1))));
        assert!(matches!(parent.get("b"), Some(Value::Int(2))));
    }

    #[test]
    fn snapshot_is_sorted() {
        let f = Frame::new_ref();
        f.set("zeta", Value::Int(1));
        f.set("alpha", Value::Int(2));
        let snap = f.snapshot();
        assert_eq!(snap[0].0, "alpha");
        assert_eq!(snap[1].0, "zeta");
    }

    #[test]
    fn concurrent_frame_access_is_safe() {
        let frame = Frame::new_ref();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let frame = frame.clone();
                scope.spawn(move || {
                    for i in 0..1000 {
                        frame.set(&format!("var{t}"), Value::Int(i));
                        let _ = frame.get(&format!("var{}", (t + 1) % 4));
                    }
                });
            }
        });
        assert_eq!(frame.len(), 4);
    }
}
