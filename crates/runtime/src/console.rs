//! Console abstraction.
//!
//! The paper's IDE redirects program input and output to a console pane
//! (§III); to support that — and to make every integration test
//! deterministic — all Tetra I/O goes through this trait instead of
//! touching `stdin`/`stdout` directly.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{BufRead, Write};
use std::sync::Arc;

/// Where `print` writes and `read_*` reads. Implementations must be
/// thread-safe: parallel blocks print concurrently.
pub trait Console: Send + Sync {
    /// Write a string (no newline added).
    fn write(&self, s: &str);
    /// Read one line, without the trailing newline. `None` on end of input.
    fn read_line(&self) -> Option<String>;
}

/// Shared console handle.
pub type ConsoleRef = Arc<dyn Console>;

/// The real process console. Each `write` call locks stdout so output from
/// one `print` call is never interleaved mid-string with another thread's.
pub struct StdConsole;

impl Console for StdConsole {
    fn write(&self, s: &str) {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        let _ = lock.write_all(s.as_bytes());
        let _ = lock.flush();
    }

    fn read_line(&self) -> Option<String> {
        let stdin = std::io::stdin();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => {
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                Some(line)
            }
            Err(_) => None,
        }
    }
}

/// An in-memory console: scripted input lines, captured output. The backbone
/// of the test suite and of the debugger's console pane.
#[derive(Default)]
pub struct BufferConsole {
    out: Mutex<String>,
    input: Mutex<VecDeque<String>>,
}

impl BufferConsole {
    pub fn new() -> Arc<BufferConsole> {
        Arc::new(BufferConsole::default())
    }

    /// Create with scripted input lines.
    pub fn with_input(lines: &[&str]) -> Arc<BufferConsole> {
        let c = BufferConsole::default();
        c.input.lock().extend(lines.iter().map(|s| s.to_string()));
        Arc::new(c)
    }

    /// Append more input (e.g. an interactive debugger feeding the program).
    pub fn push_input(&self, line: impl Into<String>) {
        self.input.lock().push_back(line.into());
    }

    /// Everything the program has printed so far.
    pub fn output(&self) -> String {
        self.out.lock().clone()
    }

    /// Take the output, clearing the buffer (for incremental UIs).
    pub fn take_output(&self) -> String {
        std::mem::take(&mut *self.out.lock())
    }
}

impl Console for BufferConsole {
    fn write(&self, s: &str) {
        self.out.lock().push_str(s);
    }

    fn read_line(&self) -> Option<String> {
        self.input.lock().pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_console_round_trips() {
        let c = BufferConsole::with_input(&["5", "hello"]);
        c.write("prompt: ");
        assert_eq!(c.read_line().as_deref(), Some("5"));
        assert_eq!(c.read_line().as_deref(), Some("hello"));
        assert_eq!(c.read_line(), None);
        assert_eq!(c.output(), "prompt: ");
    }

    #[test]
    fn take_output_clears() {
        let c = BufferConsole::new();
        c.write("a");
        assert_eq!(c.take_output(), "a");
        assert_eq!(c.output(), "");
    }

    #[test]
    fn concurrent_writes_do_not_lose_data() {
        let c = BufferConsole::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = &c;
                scope.spawn(move || {
                    for _ in 0..100 {
                        c.write("x");
                    }
                });
            }
        });
        assert_eq!(c.output().len(), 400);
    }

    #[test]
    fn push_input_feeds_reader() {
        let c = BufferConsole::new();
        c.push_input("later");
        assert_eq!(c.read_line().as_deref(), Some("later"));
    }
}
