//! Named locks — the runtime behind Tetra's `lock <name>:` statement.
//!
//! Per the paper (§II), lock names live in "a separate namespace from other
//! Tetra identifiers": the registry maps names to ownership state, created
//! on first use. The paper implements these with Pthread mutexes (§IV);
//! here a single registry mutex plus a condvar implements all named locks,
//! which additionally enables two pedagogical features the paper's IDE aims
//! at:
//!
//! * **deadlock detection** — before blocking, the acquiring thread follows
//!   the wait-for graph (thread → lock it waits for → holder → …); a cycle
//!   back to itself raises [`ErrorKind::Deadlock`] with the full cycle
//!   spelled out instead of hanging the class's terminal;
//! * **re-entry detection** — `lock a:` nested inside `lock a:` on the same
//!   thread would self-deadlock with raw mutexes; it raises
//!   [`ErrorKind::LockReentry`] with the line that already holds the lock.
//!
//! Detection can be disabled ([`LockRegistry::set_detection`]) to let
//! students *watch* a real deadlock from the debugger's thread views.

use crate::error::{ErrorKind, RuntimeError};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[derive(Default)]
struct LockState {
    /// lock name → (holding thread, line of the `lock` statement,
    /// session timestamp of acquisition for hold-time tracing, shadow
    /// call-stack node of the acquiring path for the profiler).
    holders: HashMap<String, (u32, u32, u64, u32)>,
    /// thread → lock name it is currently blocked on.
    waiting: HashMap<u32, String>,
}

/// The registry of all named locks in one running program.
pub struct LockRegistry {
    state: Mutex<LockState>,
    cv: Condvar,
    detect: AtomicBool,
    /// Total acquisitions (exposed for the benchmark harness).
    acquisitions: std::sync::atomic::AtomicU64,
    /// Acquisitions that had to block first (contention metric).
    contended: std::sync::atomic::AtomicU64,
}

impl Default for LockRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl LockRegistry {
    pub fn new() -> Self {
        LockRegistry {
            state: Mutex::new(LockState::default()),
            cv: Condvar::new(),
            detect: AtomicBool::new(true),
            acquisitions: std::sync::atomic::AtomicU64::new(0),
            contended: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Enable/disable deadlock+re-entry detection (default on).
    pub fn set_detection(&self, on: bool) {
        self.detect.store(on, Ordering::Relaxed);
    }

    /// Acquire `name` for thread `tid`; blocks while another thread holds
    /// it. `line` is the source line of the `lock` statement (for errors
    /// and the debugger); `stack_node` is the acquiring call path (see
    /// `tetra_obs::stack`), attributed to the wait/hold trace events so
    /// the contention report can name the code that contends.
    ///
    /// Callers must wrap this in a GC safe region: it blocks.
    pub fn acquire(
        &self,
        tid: u32,
        name: &str,
        line: u32,
        stack_node: u32,
    ) -> Result<(), RuntimeError> {
        let wait_start = tetra_obs::metric_now_ns();
        let detect = self.detect.load(Ordering::Relaxed);
        let mut st = self.state.lock();
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        if let Some(&(owner, owner_line, _, _)) = st.holders.get(name) {
            if owner == tid {
                return Err(RuntimeError::new(
                    ErrorKind::LockReentry,
                    format!(
                        "this thread already holds lock `{name}` (taken at line {owner_line}); \
                         a second `lock {name}:` would wait for itself forever"
                    ),
                    line,
                ));
            }
        }
        let mut blocked = false;
        while st.holders.contains_key(name) {
            if detect {
                if let Some(cycle) = find_cycle(&st, tid, name) {
                    return Err(RuntimeError::new(
                        ErrorKind::Deadlock,
                        format!("deadlock: {}", describe_cycle(&cycle)),
                        line,
                    ));
                }
            }
            blocked = true;
            st.waiting.insert(tid, name.to_string());
            self.cv.wait(&mut st);
            st.waiting.remove(&tid);
            // Re-entry cannot appear while blocked; re-check the holder loop.
        }
        if blocked {
            self.contended.fetch_add(1, Ordering::Relaxed);
        }
        tetra_obs::lock_wait(tid, name, line, wait_start, stack_node);
        st.holders.insert(name.to_string(), (tid, line, tetra_obs::metric_now_ns(), stack_node));
        Ok(())
    }

    /// Release `name`; the thread must currently hold it.
    pub fn release(&self, tid: u32, name: &str) {
        let mut st = self.state.lock();
        let (acquired_at, stack_node) = match st.holders.get(name) {
            Some(&(owner, _, acquired_at, node)) if owner == tid => {
                st.holders.remove(name);
                (acquired_at, node)
            }
            other => {
                debug_assert!(false, "release of `{name}` by {tid}, holder {other:?}");
                return;
            }
        };
        drop(st);
        tetra_obs::lock_hold(tid, name, acquired_at, stack_node);
        self.cv.notify_all();
    }

    /// Names of every lock currently held by `tid`, sorted (used by the
    /// Eraser-style race detector's lockset intersection).
    pub fn held_by(&self, tid: u32) -> Vec<String> {
        let st = self.state.lock();
        let mut names: Vec<String> = st
            .holders
            .iter()
            .filter(|(_, (owner, _, _, _))| *owner == tid)
            .map(|(name, _)| name.clone())
            .collect();
        names.sort();
        names
    }

    /// The lock `tid` is blocked on right now, if any (debugger display).
    pub fn waiting_on(&self, tid: u32) -> Option<String> {
        self.state.lock().waiting.get(&tid).cloned()
    }

    /// Current holder of `name`, if held (debugger display).
    pub fn holder_of(&self, name: &str) -> Option<u32> {
        self.state.lock().holders.get(name).map(|&(tid, _, _, _)| tid)
    }

    /// (total acquisitions, contended acquisitions).
    pub fn contention_stats(&self) -> (u64, u64) {
        (self.acquisitions.load(Ordering::Relaxed), self.contended.load(Ordering::Relaxed))
    }
}

/// Shared handle used across interpreter threads.
pub type LockRegistryRef = Arc<LockRegistry>;

/// Follow the wait-for graph from the holder of `want` back to `tid`.
/// Returns the cycle as (thread, lock-it-holds-or-waits-for) pairs.
fn find_cycle(st: &LockState, tid: u32, want: &str) -> Option<Vec<(u32, String)>> {
    let mut cycle = vec![(tid, want.to_string())];
    let mut current = want.to_string();
    loop {
        let &(owner, _, _, _) = st.holders.get(&current)?;
        if owner == tid {
            return Some(cycle);
        }
        let next = st.waiting.get(&owner)?.clone();
        cycle.push((owner, next.clone()));
        if cycle.len() > st.holders.len() + st.waiting.len() + 2 {
            return None; // defensive: malformed graph
        }
        current = next;
    }
}

fn describe_cycle(cycle: &[(u32, String)]) -> String {
    let parts: Vec<String> =
        cycle.iter().map(|(tid, lock)| format!("thread {tid} waits for lock `{lock}`")).collect();
    format!("{} — completing a cycle", parts.join(", which is held by a thread where "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn uncontended_acquire_release() {
        let reg = LockRegistry::new();
        reg.acquire(0, "a", 1, 0).unwrap();
        assert_eq!(reg.holder_of("a"), Some(0));
        assert_eq!(reg.held_by(0), vec!["a".to_string()]);
        reg.release(0, "a");
        assert_eq!(reg.holder_of("a"), None);
        let (total, contended) = reg.contention_stats();
        assert_eq!((total, contended), (1, 0));
    }

    #[test]
    fn reentry_is_detected() {
        let reg = LockRegistry::new();
        reg.acquire(0, "a", 3, 0).unwrap();
        let err = reg.acquire(0, "a", 7, 0).unwrap_err();
        assert_eq!(err.kind, ErrorKind::LockReentry);
        assert_eq!(err.line, 7);
        assert!(err.message.contains("line 3"), "{err}");
    }

    #[test]
    fn different_names_are_independent() {
        let reg = LockRegistry::new();
        reg.acquire(0, "a", 1, 0).unwrap();
        reg.acquire(0, "b", 2, 0).unwrap();
        assert_eq!(reg.held_by(0), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn contended_acquire_blocks_until_release() {
        let reg = Arc::new(LockRegistry::new());
        reg.acquire(0, "a", 1, 0).unwrap();
        let (tx, rx) = mpsc::channel();
        let reg2 = Arc::clone(&reg);
        let t = std::thread::spawn(move || {
            reg2.acquire(1, "a", 5, 0).unwrap();
            tx.send(()).unwrap();
            reg2.release(1, "a");
        });
        // The waiter must not get through while we hold the lock.
        assert!(rx.recv_timeout(std::time::Duration::from_millis(100)).is_err());
        reg.release(0, "a");
        rx.recv_timeout(std::time::Duration::from_secs(5)).expect("waiter ran");
        t.join().unwrap();
        let (_, contended) = reg.contention_stats();
        assert_eq!(contended, 1);
    }

    #[test]
    fn two_lock_deadlock_is_detected() {
        // Thread 0 holds a and wants b; thread 1 holds b and wants a.
        let reg = Arc::new(LockRegistry::new());
        reg.acquire(0, "a", 1, 0).unwrap();
        let reg2 = Arc::clone(&reg);
        let (started_tx, started_rx) = mpsc::channel();
        let t = std::thread::spawn(move || {
            reg2.acquire(1, "b", 2, 0).unwrap();
            started_tx.send(()).unwrap();
            // Will block (0 holds a), but is not itself a deadlock yet.
            let r = reg2.acquire(1, "a", 3, 0);
            // Once thread 0's acquire of b errors out and releases a, we get it.
            r
        });
        started_rx.recv().unwrap();
        // Give thread 1 time to block on `a`.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while reg.waiting_on(1).is_none() {
            assert!(std::time::Instant::now() < deadline, "thread 1 never blocked");
            std::thread::yield_now();
        }
        let err = reg.acquire(0, "b", 9, 0).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Deadlock);
        assert!(err.message.contains("lock `b`"), "{err}");
        assert!(err.message.contains("lock `a`"), "{err}");
        // Recover: release a so thread 1 can finish.
        reg.release(0, "a");
        t.join().unwrap().unwrap();
        reg.release(1, "a");
        reg.release(1, "b");
    }

    #[test]
    fn detection_can_be_disabled() {
        let reg = LockRegistry::new();
        reg.set_detection(false);
        reg.acquire(0, "a", 1, 0).unwrap();
        // Re-entry now reports nothing special... but we cannot block the
        // test thread forever; re-entry stays an error even when detection
        // is off? No: with detection off we still refuse re-entry because it
        // is *always* a self-deadlock with no observer to break it.
        let err = reg.acquire(0, "a", 2, 0).unwrap_err();
        assert_eq!(err.kind, ErrorKind::LockReentry);
    }

    #[test]
    fn waiting_on_reports_blocked_thread() {
        let reg = Arc::new(LockRegistry::new());
        reg.acquire(0, "m", 1, 0).unwrap();
        let reg2 = Arc::clone(&reg);
        let t = std::thread::spawn(move || {
            reg2.acquire(7, "m", 2, 0).unwrap();
            reg2.release(7, "m");
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while reg.waiting_on(7).is_none() {
            assert!(std::time::Instant::now() < deadline, "thread 7 never blocked");
            std::thread::yield_now();
        }
        assert_eq!(reg.waiting_on(7).as_deref(), Some("m"));
        reg.release(0, "m");
        t.join().unwrap();
        assert_eq!(reg.waiting_on(7), None);
    }

    #[test]
    fn many_threads_mutual_exclusion() {
        // Classic counter test: without the lock this would lose updates;
        // with it the total is exact.
        let reg = Arc::new(LockRegistry::new());
        let counter = Arc::new(Mutex::new(0i64));
        std::thread::scope(|scope| {
            for tid in 0..8u32 {
                let reg = Arc::clone(&reg);
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for _ in 0..100 {
                        reg.acquire(tid, "counter", 1, 0).unwrap();
                        let mut c = counter.lock();
                        let old = *c;
                        std::thread::yield_now();
                        *c = old + 1;
                        drop(c);
                        reg.release(tid, "counter");
                    }
                });
            }
        });
        assert_eq!(*counter.lock(), 800);
    }
}
