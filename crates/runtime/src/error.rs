//! Runtime errors.
//!
//! Tetra is for beginners, so runtime failures are first-class values with a
//! category, a human message and the source line — never a Rust panic. Both
//! execution engines propagate `Result<_, RuntimeError>` and the CLI renders
//! these with the offending line.

/// What went wrong, categorized so tests and the debugger can match on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// Integer division or modulo by zero.
    DivideByZero,
    /// Array/string/tuple index outside bounds.
    IndexOutOfBounds,
    /// Dictionary lookup of a missing key.
    KeyNotFound,
    /// `assert` failed.
    AssertionFailed,
    /// Integer overflow in `+`, `-`, `*` or negation.
    Overflow,
    /// A deadlock between `lock` blocks was detected (wait-for cycle).
    Deadlock,
    /// A thread tried to re-enter a `lock` block it already holds.
    LockReentry,
    /// Bad value passed to a builtin (e.g. unparsable `read_int` input).
    Value,
    /// Console input exhausted or I/O failed.
    Io,
    /// A variable was read before any assignment (normally prevented by the
    /// type checker; reachable via racy parallel code).
    UndefinedVariable,
    /// Call of an unknown function (normally prevented by the checker).
    UndefinedFunction,
    /// A spawned thread ended with an error; carried to the joining thread.
    ThreadError,
    /// The debugger asked the program to stop.
    Cancelled,
}

impl ErrorKind {
    pub fn label(&self) -> &'static str {
        match self {
            ErrorKind::DivideByZero => "divide by zero",
            ErrorKind::IndexOutOfBounds => "index out of bounds",
            ErrorKind::KeyNotFound => "key not found",
            ErrorKind::AssertionFailed => "assertion failed",
            ErrorKind::Overflow => "integer overflow",
            ErrorKind::Deadlock => "deadlock detected",
            ErrorKind::LockReentry => "lock re-entered",
            ErrorKind::Value => "value error",
            ErrorKind::Io => "input/output error",
            ErrorKind::UndefinedVariable => "undefined variable",
            ErrorKind::UndefinedFunction => "undefined function",
            ErrorKind::ThreadError => "error in thread",
            ErrorKind::Cancelled => "cancelled",
        }
    }
}

/// A runtime error with its source line (1-based; 0 when unknown).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError {
    pub kind: ErrorKind,
    pub message: String,
    pub line: u32,
}

impl RuntimeError {
    pub fn new(kind: ErrorKind, message: impl Into<String>, line: u32) -> Self {
        RuntimeError { kind, message: message.into(), line }
    }

    /// Attach a line number if the error does not have one yet.
    pub fn at_line(mut self, line: u32) -> Self {
        if self.line == 0 {
            self.line = line;
        }
        self
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "runtime error at line {}: {} ({})",
                self.line,
                self.message,
                self.kind.label()
            )
        } else {
            write!(f, "runtime error: {} ({})", self.message, self.kind.label())
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_and_label() {
        let e = RuntimeError::new(ErrorKind::DivideByZero, "1 / 0", 14);
        let s = e.to_string();
        assert!(s.contains("line 14"), "{s}");
        assert!(s.contains("divide by zero"), "{s}");
    }

    #[test]
    fn at_line_only_fills_missing() {
        let e = RuntimeError::new(ErrorKind::Value, "x", 0).at_line(5);
        assert_eq!(e.line, 5);
        let e2 = e.at_line(9);
        assert_eq!(e2.line, 5, "existing line must not be overwritten");
    }
}
