//! # tetra-vm
//!
//! The Tetra bytecode compiler and deterministic virtual-machine — the
//! paper's future-work "native code compiler" path (§VI), plus the
//! virtual-time simulator that reproduces the paper's speedup evaluation on
//! any host (DESIGN.md §2, substitution 3).
//!
//! * [`compile()`] lowers a checked program to stack bytecode with
//!   slot-resolved variables and thunks for the parallel constructs;
//! * [`run`] executes it under a deterministic scheduler: VM threads are
//!   interleaved one instruction at a time in virtual-time order, so runs
//!   are exactly reproducible and `parallel` speedup can be *measured in
//!   virtual time* even on a single-core machine;
//! * [`disassemble`] renders the bytecode (`tetra disasm`).
//!
//! ## Example
//!
//! ```
//! use tetra_runtime::BufferConsole;
//!
//! let src = "def main():\n    total = 0\n    for i in [1 ... 10]:\n        total += i\n    print(total)\n";
//! let typed = tetra_types::check(tetra_parser::parse(src).unwrap()).unwrap();
//! let program = tetra_vm::compile(&typed);
//! let console = BufferConsole::new();
//! let stats = tetra_vm::run(&program, tetra_vm::VmConfig::default(), console.clone()).unwrap();
//! assert_eq!(console.output(), "55\n");
//! assert!(stats.instructions > 0);
//! ```

pub mod bytecode;
pub mod compile;
pub mod disasm;
pub mod fold;
pub mod sched;
pub mod vm;

pub use bytecode::{CompiledProgram, Instr};
pub use compile::compile;
pub use disasm::disassemble;
pub use fold::{fold_program, FoldStats};
pub use sched::{run, CostModel, SimStats, VmConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use tetra_runtime::{BufferConsole, ErrorKind, RuntimeError};

    fn compile_src(src: &str) -> CompiledProgram {
        let typed = tetra_types::check(
            tetra_parser::parse(src).unwrap_or_else(|e| panic!("parse: {e}\n{src}")),
        )
        .unwrap_or_else(|e| panic!("check: {e:?}\n{src}"));
        compile(&typed)
    }

    fn run_vm(
        src: &str,
        config: VmConfig,
        input: &[&str],
    ) -> (Result<SimStats, RuntimeError>, String) {
        let program = compile_src(src);
        let console = BufferConsole::with_input(input);
        let r = run(&program, config, console.clone());
        (r, console.output())
    }

    fn run_ok(src: &str) -> String {
        let (r, out) = run_vm(src, VmConfig::default(), &[]);
        r.unwrap_or_else(|e| panic!("vm error: {e}\noutput:\n{out}"));
        out
    }

    fn run_err(src: &str) -> RuntimeError {
        let (r, out) = run_vm(src, VmConfig::default(), &[]);
        match r {
            Err(e) => e,
            Ok(_) => panic!("expected error; output:\n{out}"),
        }
    }

    #[test]
    fn hello_world() {
        assert_eq!(run_ok("def main():\n    print(\"hello vm\")\n"), "hello vm\n");
    }

    #[test]
    fn arithmetic_and_branches() {
        let src = "\
def main():
    x = 10
    if x > 5:
        print(\"big\")
    elif x > 2:
        print(\"mid\")
    else:
        print(\"small\")
    print(x * 2 + 1)
";
        assert_eq!(run_ok(src), "big\n21\n");
    }

    #[test]
    fn while_loop_with_break_continue() {
        let src = "\
def main():
    i = 0
    total = 0
    while true:
        i += 1
        if i > 10:
            break
        if i % 2 == 0:
            continue
        total += i
    print(total)
";
        assert_eq!(run_ok(src), "25\n");
    }

    #[test]
    fn for_loop_over_array_and_string() {
        let src = "\
def main():
    total = 0
    for x in [1, 2, 3, 4]:
        total += x
    print(total)
    out = \"\"
    for c in \"abc\":
        out = c + out
    print(out)
";
        assert_eq!(run_ok(src), "10\ncba\n");
    }

    #[test]
    fn function_calls_and_recursion() {
        let src = "\
def fact(x int) int:
    if x == 0:
        return 1
    else:
        return x * fact(x - 1)

def main():
    print(fact(10))
";
        assert_eq!(run_ok(src), "3628800\n");
    }

    #[test]
    fn paper_figure_2_runs_on_vm() {
        let src = "\
def sumr(nums [int], a int, b int) int:
    total = 0
    i = a
    while i <= b:
        total += nums[i]
        i += 1
    return total

def sum(nums [int]) int:
    mid = len(nums) / 2
    parallel:
        a = sumr(nums, 0, mid - 1)
        b = sumr(nums, mid, len(nums) - 1)
    return a + b

def main():
    print(sum([1 ... 100]))
";
        assert_eq!(run_ok(src), "5050\n");
    }

    #[test]
    fn paper_figure_3_runs_on_vm() {
        let src = "\
def max(nums [int]) int:
    largest = 0
    parallel for num in nums:
        if num > largest:
            lock largest:
                if num > largest:
                    largest = num
    return largest

def main():
    nums = [18, 32, 96, 48, 60]
    print(max(nums))
";
        assert_eq!(run_ok(src), "96\n");
    }

    #[test]
    fn short_circuit_evaluation() {
        // The right operand would divide by zero; short-circuiting must
        // skip it.
        let src = "\
def main():
    x = 0
    if x == 0 or 10 / x > 1:
        print(\"skipped the division\")
    if x != 0 and 10 / x > 1:
        print(\"not printed\")
    print(\"done\")
";
        assert_eq!(run_ok(src), "skipped the division\ndone\n");
    }

    #[test]
    fn compound_index_assignment() {
        let src = "\
def main():
    a = [10, 20, 30]
    a[1] += 5
    a[2] *= 2
    print(a)
";
        assert_eq!(run_ok(src), "[10, 25, 60]\n");
    }

    #[test]
    fn runtime_errors_carry_lines() {
        let e = run_err("def main():\n    x = 1\n    y = x / 0\n");
        assert_eq!(e.kind, ErrorKind::DivideByZero);
        assert_eq!(e.line, 3);
        let e = run_err("def main():\n    a = [1]\n    print(a[7])\n");
        assert_eq!(e.kind, ErrorKind::IndexOutOfBounds);
        assert_eq!(e.line, 3);
    }

    #[test]
    fn assert_with_message() {
        let e = run_err("def main():\n    assert 1 > 2, \"broken\"\n");
        assert_eq!(e.kind, ErrorKind::AssertionFailed);
        assert!(e.message.contains("broken"));
    }

    #[test]
    fn lock_reentry_detected() {
        let e = run_err("def main():\n    lock a:\n        lock a:\n            pass\n");
        assert_eq!(e.kind, ErrorKind::LockReentry);
    }

    #[test]
    fn deterministic_deadlock_detection() {
        // Two children take locks in opposite orders; the deterministic
        // schedule drives them into the deadlock, which must be reported,
        // not hung. sleep() forces the interleaving.
        let src = "\
def main():
    parallel:
        take(\"a\", \"b\")
        take(\"b\", \"a\")

def take(first string, second string):
    lock_by_name(first, second)

def lock_by_name(first string, second string):
    if first == \"a\":
        lock a:
            sleep(10)
            lock b:
                pass
    else:
        lock b:
            sleep(10)
            lock a:
                pass
";
        let e = run_err(src);
        assert_eq!(e.kind, ErrorKind::Deadlock, "{e}");
    }

    #[test]
    fn parallel_assignments_visible_after_join() {
        let src = "\
def main():
    parallel:
        a = 1
        b = 2
    print(a + b)
";
        assert_eq!(run_ok(src), "3\n");
    }

    #[test]
    fn parallel_for_private_induction_and_locked_sum() {
        let src = "\
def main():
    total = 0
    parallel for i in [1 ... 200]:
        lock t:
            total += i
    print(total)
";
        assert_eq!(run_ok(src), "20100\n");
    }

    #[test]
    fn reads_from_console() {
        let src = "\
def main():
    n = read_int()
    print(n * n)
";
        let (r, out) = run_vm(src, VmConfig::default(), &["12"]);
        r.unwrap();
        assert_eq!(out, "144\n");
    }

    #[test]
    fn deterministic_runs_are_identical() {
        let src = "\
def main():
    total = 0
    parallel for i in [1 ... 64]:
        lock t:
            total += i * i
    print(total)
";
        let (r1, o1) = run_vm(src, VmConfig::default(), &[]);
        let (r2, o2) = run_vm(src, VmConfig::default(), &[]);
        let (s1, s2) = (r1.unwrap(), r2.unwrap());
        assert_eq!(o1, o2);
        assert_eq!(s1.virtual_elapsed, s2.virtual_elapsed);
        assert_eq!(s1.instructions, s2.instructions);
    }

    #[test]
    fn virtual_time_speedup_grows_with_workers() {
        // A compute-heavy parallel for: more workers → less virtual time.
        let src = "\
def work(n int) int:
    total = 0
    i = 0
    while i < n:
        total += i % 7
        i += 1
    return total

def main():
    results = fill(8, 0)
    parallel for k in [0 ... 7]:
        results[k] = work(300)
    print(len(results))
";
        let mut elapsed = Vec::new();
        for workers in [1usize, 2, 4, 8] {
            let cfg = VmConfig { workers, ..VmConfig::default() };
            let (r, _) = run_vm(src, cfg, &[]);
            elapsed.push(r.unwrap().virtual_elapsed);
        }
        assert!(
            elapsed[0] > elapsed[1] && elapsed[1] > elapsed[2] && elapsed[2] > elapsed[3],
            "virtual time must shrink with workers: {elapsed:?}"
        );
        let speedup8 = elapsed[0] as f64 / elapsed[3] as f64;
        assert!(speedup8 > 2.0, "8 workers should be at least 2x: {speedup8}");
    }

    #[test]
    fn gil_mode_shows_no_speedup() {
        let src = "\
def work(n int) int:
    total = 0
    i = 0
    while i < n:
        total += i % 7
        i += 1
    return total

def main():
    results = fill(4, 0)
    parallel for k in [0 ... 3]:
        results[k] = work(200)
    print(len(results))
";
        let base = {
            let cfg = VmConfig {
                workers: 1,
                cost: CostModel { gil: true, ..CostModel::default() },
                ..VmConfig::default()
            };
            let (r, _) = run_vm(src, cfg, &[]);
            r.unwrap().virtual_elapsed
        };
        let wide = {
            let cfg = VmConfig {
                workers: 4,
                cost: CostModel { gil: true, ..CostModel::default() },
                ..VmConfig::default()
            };
            let (r, _) = run_vm(src, cfg, &[]);
            r.unwrap().virtual_elapsed
        };
        let speedup = base as f64 / wide as f64;
        assert!(
            (0.8..1.3).contains(&speedup),
            "GIL speedup must be ~1x, got {speedup} ({base} vs {wide})"
        );
    }

    #[test]
    fn background_threads_finish() {
        let src = "\
def main():
    background:
        print(\"bg\")
    print(\"fg\")
";
        let out = run_ok(src);
        assert!(out.contains("bg"), "{out}");
        assert!(out.contains("fg"), "{out}");
    }

    #[test]
    fn gc_stress_on_vm() {
        let src = "\
def main():
    out = \"\"
    for w in split(\"a,b,c,d\", \",\"):
        out = out + upper(w)
    print(out)
";
        let program = compile_src(src);
        let console = BufferConsole::new();
        let cfg = VmConfig {
            gc: tetra_runtime::HeapConfig { stress: true, ..Default::default() },
            ..VmConfig::default()
        };
        let stats = run(&program, cfg, console.clone()).unwrap();
        assert_eq!(console.output(), "ABCD\n");
        assert!(stats.gc.collections > 5);
    }

    #[test]
    fn disassembly_mentions_parallel_constructs() {
        let src = "\
def main():
    total = 0
    parallel for i in [1 ... 4]:
        lock t:
            total += i
";
        let program = compile_src(src);
        let asm = disassemble(&program);
        assert!(asm.contains("parallel.for"), "{asm}");
        assert!(asm.contains("lock.enter \"t\""), "{asm}");
        assert!(asm.contains("store.outer"), "{asm}");
        assert!(asm.contains("loop-thunk"), "{asm}");
    }

    #[test]
    fn dicts_and_tuples_on_vm() {
        let src = "\
def main():
    d = {\"x\": 1}
    d[\"y\"] = 2
    t = (d[\"x\"], d[\"y\"], \"z\")
    print(t[0] + t[1], t[2])
";
        assert_eq!(run_ok(src), "3z\n");
    }

    #[test]
    fn nested_parallel_inside_parallel_for() {
        let src = "\
def main():
    out = fill(4, 0)
    parallel for i in [0 ... 1]:
        parallel:
            out[i * 2] = i * 2
            out[i * 2 + 1] = i * 2 + 1
    print(out)
";
        assert_eq!(run_ok(src), "[0, 1, 2, 3]\n");
    }

    #[test]
    fn sleep_is_virtual() {
        let src = "def main():\n    sleep(1000)\n    print(\"woke\")\n";
        let start = std::time::Instant::now();
        let (r, out) = run_vm(src, VmConfig::default(), &[]);
        let stats = r.unwrap();
        assert_eq!(out, "woke\n");
        assert!(start.elapsed().as_millis() < 500, "sleep must be simulated");
        assert!(stats.virtual_elapsed >= 1000 * CostModel::default().units_per_ms);
    }

    #[test]
    fn parallel_for_over_string_iterates_chars() {
        let src = "\
def main():
    hits = fill(26, 0)
    parallel for c in \"abcabc\":
        lock h:
            if c == \"a\":
                hits[0] += 1
            if c == \"b\":
                hits[1] += 1
            if c == \"c\":
                hits[2] += 1
    print(hits[0], \" \", hits[1], \" \", hits[2])
";
        assert_eq!(run_ok(src), "2 2 2\n");
    }

    #[test]
    fn parallel_for_object_elements_survive_gc_stress() {
        // Feed items are heap objects (strings); under stress GC they must
        // stay rooted for the whole loop.
        let src = "\
def main():
    words = split(\"alpha,beta,gamma,delta,epsilon,zeta\", \",\")
    lens = fill(6, 0)
    parallel for i in [0 ... 5]:
        lens[i] = len(words[i])
    total = 0
    out = fill(0, \"\")
    parallel for w in words:
        lock o:
            append(out, upper(w))
    sort(out)
    print(lens, \" \", out[0])
";
        let program = compile_src(src);
        let console = BufferConsole::new();
        let cfg = VmConfig {
            workers: 3,
            gc: tetra_runtime::HeapConfig { stress: true, ..Default::default() },
            ..VmConfig::default()
        };
        run(&program, cfg, console.clone()).unwrap();
        assert_eq!(console.output(), "[5, 4, 5, 5, 7, 4] ALPHA\n");
    }

    #[test]
    fn read_before_assignment_is_caught() {
        // Bypass the checker's guarantee via a branch never taken.
        let src = "\
def main():
    cond = false
    if cond:
        x = 1
    print(x)
";
        let e = run_err(src);
        assert_eq!(e.kind, ErrorKind::UndefinedVariable);
    }
}
