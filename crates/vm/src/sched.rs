//! The deterministic scheduler and virtual-time simulator.
//!
//! This is the substitution for the paper's 8-core testbed (DESIGN.md §2):
//! VM threads are interleaved one instruction at a time — always the
//! runnable thread with the smallest virtual clock — so runs are exactly
//! reproducible on any host, including the single-core CI container this
//! reproduction was built in.
//!
//! Virtual time models the paper's own explanation of its 62.5 % efficiency:
//! "the sharing of data structures amongst interpreter threads" (§IV).
//! Every instruction has a *parallel* cost paid on the thread's own clock
//! and a *serialized* cost paid on a shared runtime resource (symbol
//! tables, allocator): with the default 4:1 split, T threads saturate the
//! shared resource at speedup 5 — reproducing the paper's measured curve
//! (2× at 2, 4× at 4, ≈5× at 8).
//!
//! The GIL mode charges the entire cost through the shared resource,
//! which pins speedup at ≈1× — the Python contrast of paper §I.

use crate::bytecode::CompiledProgram;
use crate::vm::{CostClass, Feed, FeedShare, Outcome, Registry, Table, VmState, VmThread, World};
use std::collections::HashMap;
use std::sync::Arc;
use tetra_runtime::{
    ConsoleRef, ErrorKind, GcStats, Heap, HeapConfig, MutatorGuard, RuntimeError, Value,
};

/// Virtual-time cost model (all in abstract "units").
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Per-instruction cost paid on the thread's own clock.
    pub instr_parallel: u64,
    /// Per-instruction cost serialized through the shared runtime resource.
    pub instr_serial: u64,
    /// Extra serialized cost of a heap allocation.
    pub alloc_serial: u64,
    /// Extra serialized cost of a builtin call.
    pub builtin_serial: u64,
    /// Cost of creating one thread (paid by the parent, serially).
    pub spawn: u64,
    /// Units of virtual time per simulated millisecond (`sleep`).
    pub units_per_ms: u64,
    /// Serialize *everything* through the shared resource (GIL mode).
    pub gil: bool,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            instr_parallel: 4,
            instr_serial: 1,
            alloc_serial: 8,
            builtin_serial: 4,
            spawn: 400,
            units_per_ms: 5_000,
            gil: false,
        }
    }
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Worker count for `parallel for` (the simulated "cores"/threads T).
    pub workers: usize,
    /// Model the runtime pool's adaptive chunking: workers claim
    /// shrinking chunks from a shared cursor instead of taking one static
    /// contiguous chunk each (the `--no-pool` model).
    pub dynamic_chunking: bool,
    pub cost: CostModel,
    pub gc: HeapConfig,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            workers: 4,
            dynamic_chunking: true,
            cost: CostModel::default(),
            gc: HeapConfig::default(),
        }
    }
}

/// Results of a simulated run.
#[derive(Debug, Clone)]
pub struct SimStats {
    /// Virtual time at which the last thread finished.
    pub virtual_elapsed: u64,
    /// Total instructions executed across all threads.
    pub instructions: u64,
    /// Threads created (including main).
    pub threads: u32,
    /// Lock acquisitions that had to wait.
    pub lock_contentions: u64,
    pub gc: GcStats,
}

struct SimLock {
    holder: Option<u32>,
    /// Line where the holder took the lock (for re-entry messages).
    holder_line: u32,
    /// Trace timestamp of the current acquisition (0 when tracing is off).
    held_since_ns: u64,
    /// Shadow call-path node of the acquiring code (lock attribution).
    holder_node: u32,
    waiters: Vec<u32>,
}

/// Run a compiled program deterministically, returning stats.
pub fn run(
    program: &CompiledProgram,
    config: VmConfig,
    console: ConsoleRef,
) -> Result<SimStats, RuntimeError> {
    let mut sched = Scheduler::new(program, config, console);
    sched.run()
}

struct Scheduler<'p> {
    program: &'p CompiledProgram,
    config: VmConfig,
    heap: Arc<Heap>,
    /// The scheduler thread's single GC mutator registration. A second
    /// registration on the same OS thread would deadlock the collector.
    mutator: MutatorGuard,
    registry: Arc<Registry>,
    console: ConsoleRef,
    threads: Vec<VmThread>,
    locks: HashMap<String, SimLock>,
    /// Shared-runtime resource availability (virtual time).
    runtime_free: u64,
    next_id: u32,
    lock_contentions: u64,
    instructions: u64,
}

impl<'p> Scheduler<'p> {
    fn new(program: &'p CompiledProgram, config: VmConfig, console: ConsoleRef) -> Self {
        let heap = Heap::new(config.gc.clone());
        let mutator = heap.register_mutator();
        let registry = Arc::new(Registry::default());
        Scheduler {
            program,
            config,
            heap,
            mutator,
            registry,
            console,
            threads: Vec::new(),
            locks: HashMap::new(),
            runtime_free: 0,
            next_id: 0,
            lock_contentions: 0,
            instructions: 0,
        }
    }

    fn new_thread(
        &mut self,
        parent: Option<u32>,
        unit: u16,
        locals: Table,
        outers: Vec<Table>,
        at_time: u64,
        shadow_node: u32,
    ) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        let mut t = VmThread::new(id, parent, unit, locals, outers, &self.registry, shadow_node);
        t.vtime = at_time;
        self.threads.push(t);
        id
    }

    fn thread(&mut self, id: u32) -> &mut VmThread {
        &mut self.threads[id as usize]
    }

    fn run(&mut self) -> Result<SimStats, RuntimeError> {
        let main_unit = self.program.main;
        let nlocals = self.program.unit(main_unit).nlocals as usize;
        let locals = self.registry.new_table(vec![Value::None; nlocals]);
        // The main unit is entered directly (no Call instruction), so seed
        // its call path here — the interpreter reaches `main` through
        // `call_user`, and the flame paths must agree across engines.
        let main_node = if tetra_obs::attribution_enabled() {
            tetra_obs::stack::child(tetra_obs::stack::ROOT, &self.program.unit(main_unit).name)
        } else {
            tetra_obs::stack::ROOT
        };
        self.new_thread(None, main_unit, locals, Vec::new(), 0, main_node);

        loop {
            // Pick the runnable thread with the smallest virtual clock
            // (ties by id → fully deterministic).
            let mut runnable = 0u32;
            let mut tid_opt: Option<(u64, u32)> = None;
            for t in &self.threads {
                if t.state == VmState::Runnable {
                    runnable += 1;
                    let key = (t.vtime, t.id);
                    if tid_opt.is_none() || key < tid_opt.unwrap() {
                        tid_opt = Some(key);
                    }
                }
            }
            let Some((_, tid)) = tid_opt else {
                if self.threads.iter().all(|t| t.state == VmState::Done) {
                    break;
                }
                // Deadlock (or a join that can never complete): raise into
                // the first blocked thread — a `try:` there can catch it,
                // mirroring the interpreter's detect-at-acquire behaviour.
                let blocked: Vec<(u32, String)> = self
                    .threads
                    .iter()
                    .filter_map(|t| match &t.state {
                        VmState::BlockedLock(name) => Some((t.id, name.clone())),
                        _ => None,
                    })
                    .collect();
                let Some((victim, want)) = blocked.first().cloned() else {
                    return Err(self.stuck_error());
                };
                let err = RuntimeError::new(ErrorKind::Deadlock, self.stuck_error().message, 0);
                // Remove the victim from the wait queue and unwind it.
                if let Some(entry) = self.locks.get_mut(&want) {
                    entry.waiters.retain(|w| *w != victim);
                }
                self.thread(victim).state = VmState::Runnable;
                self.thread(victim).advance_ip();
                self.deliver(victim, err)?;
                continue;
            };

            // Run the chosen thread for a bounded batch of instructions —
            // but only while it is the ONLY runnable thread. With several
            // runnable threads the scheduler must interleave instruction by
            // instruction so the virtual-time resource queueing (and lock
            // acquisition order) is modeled faithfully; with one thread,
            // batching is semantically identical and slashes overhead.
            let batch: u32 = if runnable == 1 { 256 } else { 1 };
            let idx = tid as usize;
            let mut pending: Option<Outcome> = None;
            // Dispatch spans are flushed whenever the thread's shadow call
            // path changes (Call/Return), so each VmDispatch event covers
            // exactly one call path and can feed the flame output.
            let mut batch_start = tetra_obs::now_ns();
            let mut batch_node = self.threads[idx].current_shadow_node();
            let mut batch_count: u32 = 0;
            let mut dispatched: u32 = 0;
            while dispatched < batch {
                // Fast path within the quantum: run allocation-free
                // instructions under a single locals/stack lock acquisition
                // instead of relocking per instruction. All of them cost
                // `Basic`; the charge below is instruction-for-instruction
                // identical to the per-step accounting.
                if batch > 1 {
                    let world = World {
                        program: self.program,
                        heap: &self.heap,
                        mutator: &self.mutator,
                        registry: &self.registry,
                        console: &self.console,
                    };
                    let n = self.threads[idx].step_quantum(&world, batch - dispatched);
                    if n > 0 {
                        self.instructions += n as u64;
                        dispatched += n;
                        // The quantum never executes Call/Return, so the
                        // shadow node cannot have changed.
                        batch_count += n;
                        let m = &self.config.cost;
                        let (p, s) = (m.instr_parallel, m.instr_serial);
                        let thread = &mut self.threads[idx];
                        if m.gil {
                            let start = thread.vtime.max(self.runtime_free);
                            thread.vtime = start + (n as u64) * (p + s);
                            self.runtime_free = thread.vtime;
                        } else if s > 0 {
                            thread.vtime += p;
                            let start = thread.vtime.max(self.runtime_free);
                            thread.vtime = start + s + (n as u64 - 1) * (p + s);
                            self.runtime_free = thread.vtime;
                        } else {
                            thread.vtime += n as u64 * p;
                        }
                        if dispatched >= batch {
                            break;
                        }
                    }
                }
                // Disjoint field borrows: the stepped thread is mutable;
                // the world pieces and cost bookkeeping are other fields.
                let world = World {
                    program: self.program,
                    heap: &self.heap,
                    mutator: &self.mutator,
                    registry: &self.registry,
                    console: &self.console,
                };
                let thread = &mut self.threads[idx];
                let stepped = thread.step(&world);
                self.instructions += 1;
                dispatched += 1;
                batch_count += 1;
                let (outcome, cost) = match stepped {
                    Ok(x) => x,
                    Err(e) => {
                        // Raise into the thread's handlers (or its parent).
                        self.deliver(tid, e)?;
                        pending = None;
                        break;
                    }
                };
                // Inline cost charging (same model as `charge`).
                let m = &self.config.cost;
                let (parallel, serial) = match cost {
                    CostClass::Basic => (m.instr_parallel, m.instr_serial),
                    CostClass::SharedAccess => (m.instr_parallel, m.instr_serial * 2),
                    CostClass::Alloc => (m.instr_parallel, m.instr_serial + m.alloc_serial),
                    CostClass::Builtin => (m.instr_parallel, m.instr_serial + m.builtin_serial),
                    CostClass::Sleep(ms) => (ms * m.units_per_ms, 0),
                };
                if m.gil {
                    let start = thread.vtime.max(self.runtime_free);
                    thread.vtime = start + parallel + serial;
                    self.runtime_free = thread.vtime;
                } else {
                    thread.vtime += parallel;
                    if serial > 0 {
                        let start = thread.vtime.max(self.runtime_free);
                        thread.vtime = start + serial;
                        self.runtime_free = thread.vtime;
                    }
                }
                // A Call or Return moved the thread onto a different call
                // path: flush the batch so far under the old node.
                let node = thread.current_shadow_node();
                if node != batch_node {
                    tetra_obs::vm_dispatch(tid, batch_count, batch_start, batch_node);
                    batch_start = tetra_obs::now_ns();
                    batch_count = 0;
                    batch_node = node;
                }
                if !matches!(outcome, Outcome::Normal) {
                    pending = Some(outcome);
                    break;
                }
            }
            if batch_count > 0 {
                tetra_obs::vm_dispatch(tid, batch_count, batch_start, batch_node);
            }
            if let Some(outcome) = pending {
                self.handle(tid, outcome)?;
            }
        }

        // One flush at end of simulation, mirroring the interpreter: the
        // metrics registry's lock must stay off the allocation path.
        self.heap.publish_metrics();
        Ok(SimStats {
            virtual_elapsed: self.threads.iter().map(|t| t.vtime).max().unwrap_or(0),
            instructions: self.instructions,
            threads: self.next_id,
            lock_contentions: self.lock_contentions,
            gc: self.heap.stats(),
        })
    }

    fn handle(&mut self, tid: u32, outcome: Outcome) -> Result<(), RuntimeError> {
        match outcome {
            Outcome::Normal => Ok(()),
            Outcome::Finished => self.finish_or_refeed(tid),
            Outcome::Spawn { thunks, join } => {
                let (parent_time, parent_frame, spawn_node) = {
                    let t = self.thread(tid);
                    let f = t.frames.last().expect("spawning thread has a frame");
                    // Children attribute under the spawning call path;
                    // thunk frames themselves add no path segment.
                    (t.vtime, (f.locals.clone(), f.outers.clone()), f.shadow_node)
                };
                let spawn_cost = self.config.cost.spawn;
                let mut children = Vec::with_capacity(thunks.len());
                for (i, unit) in thunks.iter().enumerate() {
                    let nlocals = self.program.unit(*unit).nlocals as usize;
                    let locals = self.registry.new_table(vec![Value::None; nlocals]);
                    // The child's outer chain is the parent frame itself,
                    // then the parent's own outers.
                    let mut outers = vec![parent_frame.0.clone()];
                    outers.extend(parent_frame.1.iter().cloned());
                    let start = parent_time + spawn_cost * (i as u64 + 1);
                    let id = self.new_thread(Some(tid), *unit, locals, outers, start, spawn_node);
                    self.thread(id).background = !join;
                    children.push(id);
                }
                {
                    // step() already advanced past the Parallel instruction.
                    let t = self.thread(tid);
                    t.vtime += spawn_cost * thunks.len() as u64;
                    if join {
                        t.state = VmState::Joining(children);
                    }
                }
                Ok(())
            }
            Outcome::ParallelFor { thunk, items } => {
                if items.is_empty() {
                    return Ok(()); // step() already advanced past the instruction
                }
                let (parent_time, parent_frame, spawn_node) = {
                    let t = self.thread(tid);
                    let f = t.frames.last().expect("spawning thread has a frame");
                    (t.vtime, (f.locals.clone(), f.outers.clone()), f.shadow_node)
                };
                let workers = self.config.workers.clamp(1, items.len());
                let per = items.len().div_ceil(workers);
                let spawn_cost = self.config.cost.spawn;
                // Dynamic chunking: all workers read one shared table and
                // claim shrinking ranges from a common cursor, modeling the
                // interpreter pool's split-on-steal. Static (--no-pool):
                // each worker gets one contiguous chunk up front.
                let share = if self.config.dynamic_chunking {
                    Some(std::sync::Arc::new(FeedShare::new(items.len(), workers)))
                } else {
                    None
                };
                let all_items = share.as_ref().map(|_| self.registry.new_table(items.clone()));
                let mut children = Vec::with_capacity(workers);
                for i in 0..workers {
                    let (items_table, lo, hi) = match (&share, &all_items) {
                        (Some(share), Some(table)) => {
                            // `len >= workers`, so every worker's first
                            // claim is non-empty.
                            let (lo, hi) = share.claim().expect("initial claim");
                            (table.clone(), lo, hi)
                        }
                        _ => {
                            let lo = i * per;
                            let hi = ((i + 1) * per).min(items.len());
                            if lo >= hi {
                                break;
                            }
                            // The chunk lives in a registered table so its
                            // object elements stay rooted for the loop.
                            (self.registry.new_table(items[lo..hi].to_vec()), 0, hi - lo)
                        }
                    };
                    let nlocals = self.program.unit(thunk).nlocals as usize;
                    let mut init = vec![Value::None; nlocals];
                    init[0] = items_table.read()[lo];
                    let locals = self.registry.new_table(init);
                    let mut outers = vec![parent_frame.0.clone()];
                    outers.extend(parent_frame.1.iter().cloned());
                    let start = parent_time + spawn_cost * (children.len() as u64 + 1);
                    let id = self.new_thread(
                        Some(tid),
                        thunk,
                        locals.clone(),
                        outers.clone(),
                        start,
                        spawn_node,
                    );
                    self.thread(id).feed = Some(Feed {
                        items: items_table,
                        next: lo + 1,
                        end: hi,
                        unit: thunk,
                        locals,
                        outers,
                        share: share.clone(),
                    });
                    children.push(id);
                }
                let workers = children.len();
                {
                    let t = self.thread(tid);
                    t.vtime += spawn_cost * workers as u64;
                    t.state = VmState::Joining(children);
                }
                Ok(())
            }
            Outcome::WantLock { name, line } => {
                let acquire_node = self.thread(tid).current_shadow_node();
                let entry = self.locks.entry(name.clone()).or_insert(SimLock {
                    holder: None,
                    holder_line: 0,
                    held_since_ns: 0,
                    holder_node: 0,
                    waiters: Vec::new(),
                });
                match entry.holder {
                    None => {
                        entry.holder = Some(tid);
                        entry.holder_line = line;
                        entry.held_since_ns = tetra_obs::now_ns();
                        entry.holder_node = acquire_node;
                        let acquired_ns = entry.held_since_ns;
                        let t = self.thread(tid);
                        // A woken waiter re-runs EnterLock and acquires here:
                        // its wait started back when it first blocked.
                        let (wait_start, wait_line) = if t.block_start.0 != 0 {
                            std::mem::take(&mut t.block_start)
                        } else {
                            (acquired_ns, line)
                        };
                        tetra_obs::lock_wait(tid, &name, wait_line, wait_start, acquire_node);
                        t.held_locks.push(name);
                        t.advance_ip();
                        Ok(())
                    }
                    Some(h) if h == tid => {
                        let err = RuntimeError::new(
                            ErrorKind::LockReentry,
                            format!(
                                "this thread already holds lock `{name}` (taken at line {}); \
                                 a second `lock {name}:` would wait for itself forever",
                                entry.holder_line
                            ),
                            line,
                        );
                        // Skip past the EnterLock before unwinding so a
                        // handler resumes cleanly.
                        self.thread(tid).advance_ip();
                        self.deliver(tid, err)
                    }
                    Some(_) => {
                        entry.waiters.push(tid);
                        self.lock_contentions += 1;
                        let t = self.thread(tid);
                        t.block_start = (tetra_obs::now_ns(), line);
                        t.state = VmState::BlockedLock(name);
                        Ok(())
                    }
                }
            }
            Outcome::Unlocked { name } => {
                let t = self.thread(tid);
                if let Some(pos) = t.held_locks.iter().rposition(|l| *l == name) {
                    t.held_locks.remove(pos);
                }
                self.release_lock(tid, &name);
                Ok(())
            }
        }
    }

    /// Release `name` held by `tid` and wake its waiters.
    fn release_lock(&mut self, tid: u32, name: &str) {
        let release_time = self.thread(tid).vtime;
        if let Some(entry) = self.locks.get_mut(name) {
            debug_assert_eq!(entry.holder, Some(tid));
            entry.holder = None;
            tetra_obs::lock_hold(tid, name, entry.held_since_ns, entry.holder_node);
            let waiters = std::mem::take(&mut entry.waiters);
            for w in waiters {
                let t = self.thread(w);
                t.state = VmState::Runnable;
                t.vtime = t.vtime.max(release_time);
            }
        }
    }

    /// Raise a runtime error in thread `tid`: unwind to its innermost
    /// `try:` handler (releasing locks acquired inside the `try` body), or
    /// — with no handler — finish the thread with the error, delivering it
    /// to the joining parent, or abort the simulation when it reaches a
    /// thread nobody joins.
    fn deliver(&mut self, tid: u32, err: RuntimeError) -> Result<(), RuntimeError> {
        // Pop the innermost handler, if any.
        let handler = self.thread(tid).handlers.pop();
        match handler {
            Some(h) => {
                // Release locks acquired after the try was entered.
                let to_release: Vec<String> = self.thread(tid).held_locks.split_off(h.locks_mark);
                for name in to_release.iter().rev() {
                    self.release_lock(tid, name);
                }
                // Materialize the message; the handler's first instruction
                // stores it into the catch variable.
                let msg =
                    self.heap.alloc_str(&self.mutator, self.registry.as_ref(), err.message.clone());
                let t = self.thread(tid);
                while t.frames.len() > h.frame_depth {
                    t.frames.pop();
                }
                t.stack.write().truncate(h.stack_height);
                t.stack.write().push(msg);
                if let Some(f) = t.frames.last_mut() {
                    f.ip = h.handler_ip as usize;
                }
                t.state = VmState::Runnable;
                Ok(())
            }
            None => {
                // Release everything the thread still holds.
                let to_release: Vec<String> = std::mem::take(&mut self.thread(tid).held_locks);
                for name in to_release.iter().rev() {
                    self.release_lock(tid, name);
                }
                let (parent, background) = {
                    let t = self.thread(tid);
                    (t.parent, t.background)
                };
                if parent.is_none() && !background {
                    return Err(err); // uncaught in main: abort the run
                }
                {
                    let t = self.thread(tid);
                    t.error = Some(err);
                    // No more items for a failed worker — and with dynamic
                    // chunking, cancel the unclaimed remainder of the loop
                    // (the interpreter pool's cancel flag does the same).
                    if let Some(share) = t.feed.as_ref().and_then(|f| f.share.as_ref()) {
                        share.drain();
                    }
                    t.feed = None;
                }
                self.finish_or_refeed(tid)
            }
        }
    }

    /// A thread's outermost frame returned: feed it the next parallel-for
    /// item, or mark it done and wake its joining parent.
    fn finish_or_refeed(&mut self, tid: u32) -> Result<(), RuntimeError> {
        // Refeed parallel-for workers: next item of the current chunk, or
        // (dynamic chunking) a freshly claimed chunk once this one is dry.
        let refeed = {
            let t = self.thread(tid);
            match &mut t.feed {
                Some(feed) => {
                    if feed.next >= feed.end {
                        if let Some((lo, hi)) = feed.share.as_ref().and_then(|s| s.claim()) {
                            feed.next = lo;
                            feed.end = hi;
                        }
                    }
                    if feed.next < feed.end {
                        let item = feed.items.read()[feed.next];
                        feed.next += 1;
                        Some((feed.unit, feed.locals.clone(), feed.outers.clone(), item))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        };
        if let Some((unit, locals, outers, item)) = refeed {
            locals.write()[0] = item;
            let t = self.thread(tid);
            let shadow_node = t.shadow_root;
            t.frames.push(crate::vm::VmFrame {
                unit,
                ip: 0,
                locals,
                outers,
                stack_base: 0,
                shadow_node,
            });
            t.stack.write().clear();
            return Ok(());
        }
        let (end_time, parent) = {
            let t = self.thread(tid);
            t.state = VmState::Done;
            if tetra_obs::enabled() {
                let name = if tid == 0 { "vm-main".to_string() } else { format!("vm-{tid}") };
                tetra_obs::thread_span(tid, &name, t.trace_start_ns);
            }
            (t.vtime, t.parent)
        };
        // Wake a parent joining on this thread once all siblings finished.
        if let Some(pid) = parent {
            let done_children: Vec<u32> = match &self.threads[pid as usize].state {
                VmState::Joining(children) => children.clone(),
                _ => return Ok(()),
            };
            let all_done =
                done_children.iter().all(|c| self.threads[*c as usize].state == VmState::Done);
            if all_done {
                let join_time = done_children
                    .iter()
                    .map(|c| self.threads[*c as usize].vtime)
                    .max()
                    .unwrap_or(end_time);
                let child_error =
                    done_children.iter().find_map(|c| self.threads[*c as usize].error.take());
                let p = self.thread(pid);
                p.state = VmState::Runnable;
                p.vtime = p.vtime.max(join_time);
                // The first failing child's error surfaces in the parent at
                // the join point — where a `try:` around the parallel
                // construct can catch it.
                if let Some(e) = child_error {
                    return self.deliver(pid, e);
                }
            }
        }
        Ok(())
    }

    fn stuck_error(&self) -> RuntimeError {
        let blocked: Vec<String> = self
            .threads
            .iter()
            .filter_map(|t| match &t.state {
                VmState::BlockedLock(name) => {
                    Some(format!("thread {} waits for lock `{name}`", t.id))
                }
                _ => None,
            })
            .collect();
        if blocked.is_empty() {
            RuntimeError::new(
                ErrorKind::ThreadError,
                "simulation stuck: threads joining children that never finish (VM bug)",
                0,
            )
        } else {
            RuntimeError::new(
                ErrorKind::Deadlock,
                format!("deadlock: {}", blocked.join(", which is held while ")),
                0,
            )
        }
    }
}
