//! Bytecode disassembler (`tetra disasm`).

use crate::bytecode::{CompiledProgram, Const, Instr, UnitKind};
use std::fmt::Write;

/// Render a whole compiled program as readable assembly.
pub fn disassemble(program: &CompiledProgram) -> String {
    let mut out = String::new();
    for (idx, unit) in program.units.iter().enumerate() {
        let kind = match unit.kind {
            UnitKind::Function => "func",
            UnitKind::ParallelChild => "thunk",
            UnitKind::ParallelForBody => "loop-thunk",
        };
        writeln!(
            out,
            "{kind} #{idx} {} (params={}, locals={})",
            unit.name, unit.params, unit.nlocals
        )
        .unwrap();
        for (ip, instr) in unit.code.iter().enumerate() {
            writeln!(out, "  {ip:4}  [line {:3}]  {}", unit.lines[ip], render(instr, program))
                .unwrap();
        }
    }
    out
}

fn render(instr: &Instr, program: &CompiledProgram) -> String {
    let konst = |i: &u16| match &program.consts[*i as usize] {
        Const::None => "none".to_string(),
        Const::Int(v) => v.to_string(),
        Const::Real(v) => format!("{v}"),
        Const::Bool(v) => v.to_string(),
        Const::Str(s) => format!("{s:?}"),
    };
    match instr {
        Instr::Const(i) => format!("const {}", konst(i)),
        Instr::LoadLocal(i) => format!("load.local {i}"),
        Instr::StoreLocal(i) => format!("store.local {i}"),
        Instr::LoadOuter(d, i) => format!("load.outer depth={d} slot={i}"),
        Instr::StoreOuter(d, i) => format!("store.outer depth={d} slot={i}"),
        Instr::Bin(op) => format!("bin {}", op.symbol()),
        Instr::Neg => "neg".into(),
        Instr::Not => "not".into(),
        Instr::Widen => "widen".into(),
        Instr::Pop => "pop".into(),
        Instr::Dup2 => "dup2".into(),
        Instr::Jump(t) => format!("jump {t}"),
        Instr::JumpIfFalse(t) => format!("jump.false {t}"),
        Instr::JumpIfFalsePeek(t) => format!("jump.false.peek {t}"),
        Instr::JumpIfTruePeek(t) => format!("jump.true.peek {t}"),
        Instr::Call(f, n) => {
            format!("call {} argc={n}", program.unit(*f).name)
        }
        Instr::CallBuiltin(b, n) => format!("builtin {} argc={n}", b.name()),
        Instr::Return => "return".into(),
        Instr::MakeArray(n) => format!("make.array {n}"),
        Instr::MakeRange => "make.range".into(),
        Instr::MakeTuple(n) => format!("make.tuple {n}"),
        Instr::MakeDict(n) => format!("make.dict {n}"),
        Instr::Index => "index".into(),
        Instr::IndexStore => "index.store".into(),
        Instr::Assert { has_msg } => format!("assert msg={has_msg}"),
        Instr::EnterLock(i) => format!("lock.enter {}", konst(i)),
        Instr::ExitLock(i) => format!("lock.exit {}", konst(i)),
        Instr::Parallel(ts) => format!("parallel {ts:?}"),
        Instr::Background(ts) => format!("background {ts:?}"),
        Instr::ParallelFor(t) => format!("parallel.for thunk={t}"),
        Instr::TryPush(h) => format!("try.push handler={h}"),
        Instr::TryPop => "try.pop".into(),
    }
}
