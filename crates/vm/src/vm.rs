//! The VM: thread state and single-instruction stepping.
//!
//! Unlike the tree-walking interpreter, the VM is an explicit machine —
//! frames, instruction pointers and an operand stack — so execution can be
//! *stepped*: the deterministic scheduler in [`crate::sched`] interleaves
//! VM threads one instruction at a time, which is what makes the
//! virtual-time simulation (and deterministic replay) possible.
//!
//! All mutable thread state lives behind shared tables registered with a
//! [`Registry`], which doubles as the GC root source: collection can happen
//! inside any allocating instruction without tracking Rust borrows.

use crate::bytecode::{CompiledProgram, Const, Instr};
use parking_lot::{Mutex, RwLock};
use std::sync::{Arc, Weak};
use tetra_ast::Type;
use tetra_runtime::{
    ConsoleRef, ErrorKind, Heap, MutatorGuard, Object, RootSink, RootSource, RuntimeError, Value,
};
use tetra_stdlib::{ops, Builtin};

/// A shared table of values: one per frame's locals, plus each thread's
/// operand stack.
pub type Table = Arc<RwLock<Vec<Value>>>;

/// Registry of all live tables; the single GC root source of a VM run.
pub struct Registry {
    tables: Mutex<TableSet>,
}

struct TableSet {
    entries: Vec<Weak<RwLock<Vec<Value>>>>,
    /// Purge dead weak entries once `entries` reaches this length. After a
    /// purge it is reset to twice the surviving count, so a full scan only
    /// runs when the live fraction may have fallen below half — amortized
    /// O(1) per registration, and dead tables never pile up unboundedly.
    purge_at: usize,
}

const PURGE_FLOOR: usize = 64;

impl Default for Registry {
    fn default() -> Self {
        Registry { tables: Mutex::new(TableSet { entries: Vec::new(), purge_at: PURGE_FLOOR }) }
    }
}

impl Registry {
    pub fn new_table(&self, init: Vec<Value>) -> Table {
        let t = Arc::new(RwLock::new(init));
        let mut set = self.tables.lock();
        set.entries.push(Arc::downgrade(&t));
        if set.entries.len() >= set.purge_at {
            set.entries.retain(|w| w.strong_count() > 0);
            set.purge_at = (set.entries.len() * 2).max(PURGE_FLOOR);
        }
        t
    }

    /// Number of weak entries currently tracked (live + not-yet-purged dead).
    pub fn tracked_tables(&self) -> usize {
        self.tables.lock().entries.len()
    }
}

impl RootSource for Registry {
    fn roots(&self, sink: &mut RootSink) {
        for w in self.tables.lock().entries.iter() {
            if let Some(t) = w.upgrade() {
                for v in t.read().iter() {
                    sink.value(*v);
                }
            }
        }
    }
}

/// One call frame.
pub struct VmFrame {
    pub unit: u16,
    pub ip: usize,
    pub locals: Table,
    /// Enclosing frames' locals for thunks; `outers[0]` is depth 1.
    pub outers: Vec<Table>,
    /// Operand stack height at frame entry (restored on return).
    pub stack_base: usize,
    /// Shadow call-path node ([`tetra_obs::stack`]) this frame runs under.
    /// Stored per frame (not per thread) so unwinding frames automatically
    /// restores the attribution path; `stack::ROOT` when attribution is
    /// off.
    pub shadow_node: u32,
}

/// Why a thread cannot run right now.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmState {
    Runnable,
    BlockedLock(String),
    /// Waiting for these child thread ids to finish.
    Joining(Vec<u32>),
    Done,
}

/// Work items fed to a parallel-for worker. The items live in a
/// registry-registered table so they stay GC-rooted for the loop's
/// lifetime. A worker owns the half-open index range `next..end`; with
/// dynamic chunking it claims a fresh range from the loop's [`FeedShare`]
/// whenever its own runs dry.
pub struct Feed {
    pub items: Table,
    pub next: usize,
    /// One past the last index of the worker's current chunk.
    pub end: usize,
    /// The thunk re-entered for each item.
    pub unit: u16,
    pub locals: Table,
    pub outers: Vec<Table>,
    /// The loop-wide claim cursor (dynamic chunking); `None` under static
    /// chunking, where the worker's `next..end` is its entire share.
    pub share: Option<std::sync::Arc<FeedShare>>,
}

/// The deterministic model of the runtime pool's adaptive chunking: one
/// cursor per `parallel for`, shared by its workers. Each claim takes a
/// guided-self-scheduling chunk — half the remaining work divided by the
/// worker count, so chunks start large (low dispatch overhead) and shrink
/// toward the tail (load balance), mirroring the real pool's
/// split-in-half-on-steal behaviour. Claim order is decided by the
/// virtual-time scheduler, so simulated runs stay exactly reproducible.
pub struct FeedShare {
    cursor: parking_lot::Mutex<usize>,
    len: usize,
    workers: usize,
}

impl FeedShare {
    pub fn new(len: usize, workers: usize) -> Self {
        FeedShare { cursor: parking_lot::Mutex::new(0), len, workers: workers.max(1) }
    }

    /// Claim the next chunk, or `None` when the loop is exhausted.
    pub fn claim(&self) -> Option<(usize, usize)> {
        let mut cur = self.cursor.lock();
        if *cur >= self.len {
            return None;
        }
        let remaining = self.len - *cur;
        let take = (remaining / (2 * self.workers)).max(1);
        let lo = *cur;
        *cur += take;
        Some((lo, lo + take))
    }

    /// Mark the loop exhausted (a worker died with an error: the remaining
    /// items are cancelled, like the interpreter pool's cancel flag).
    pub fn drain(&self) {
        *self.cursor.lock() = self.len;
    }
}

/// An installed `try:` handler (the VM's unwind target).
#[derive(Debug, Clone)]
pub struct Handler {
    /// `frames.len()` when the handler was installed.
    pub frame_depth: usize,
    /// Operand-stack height when the handler was installed.
    pub stack_height: usize,
    /// Instruction index of the handler entry (starts with the store of
    /// the error message into the catch variable).
    pub handler_ip: u32,
    /// `held_locks.len()` at installation — locks past this mark are
    /// released when unwinding to the handler.
    pub locks_mark: usize,
}

/// One VM thread (main, parallel child, background child, or worker).
pub struct VmThread {
    pub id: u32,
    pub parent: Option<u32>,
    pub frames: Vec<VmFrame>,
    pub stack: Table,
    pub state: VmState,
    /// Virtual time (simulation clock units).
    pub vtime: u64,
    pub feed: Option<Feed>,
    /// True for `background:` children (not joined by anyone).
    pub background: bool,
    pub instructions: u64,
    /// Installed `try:` handlers, innermost last.
    pub handlers: Vec<Handler>,
    /// Lock names this thread currently holds, in acquisition order.
    pub held_locks: Vec<String>,
    /// An uncaught error (delivered to the joining parent, or reported at
    /// program end for background threads).
    pub error: Option<RuntimeError>,
    /// Trace timestamp of thread creation (0 when tracing is off).
    pub trace_start_ns: u64,
    /// Trace timestamp of the blocking acquire in progress, with the
    /// `lock` statement's line (used when the thread is woken).
    pub block_start: (u64, u32),
    /// Shadow call-path node this thread was spawned under: the seed for
    /// its outermost frame, and for re-fed parallel-for worker frames.
    pub shadow_root: u32,
}

/// Cost class of an executed instruction, mapped to virtual time by the
/// scheduler's [`crate::sched::CostModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostClass {
    Basic,
    /// Access to an enclosing (shared) frame.
    SharedAccess,
    /// Heap allocation.
    Alloc,
    /// A builtin call (typically allocating / touching shared runtime).
    Builtin,
    /// A simulated `sleep(ms)`: extra virtual milliseconds.
    Sleep(u64),
}

/// What the scheduler must do after a step.
pub enum Outcome {
    Normal,
    /// Spawn these thunks; `join` distinguishes `parallel:` from
    /// `background:`.
    Spawn {
        thunks: Vec<u16>,
        join: bool,
    },
    /// Distribute `items` over workers running `thunk`.
    ParallelFor {
        thunk: u16,
        items: Vec<Value>,
    },
    /// The thread wants this lock; its ip was *not* advanced.
    WantLock {
        name: String,
        line: u32,
    },
    /// The thread released this lock.
    Unlocked {
        name: String,
    },
    /// The outermost frame returned; the thread is finished (unless its
    /// feed has more items).
    Finished,
}

/// Everything stepping needs from the scheduler.
pub struct World<'a> {
    pub program: &'a CompiledProgram,
    pub heap: &'a Arc<Heap>,
    pub mutator: &'a MutatorGuard,
    pub registry: &'a Registry,
    pub console: &'a ConsoleRef,
}

impl VmThread {
    pub fn new(
        id: u32,
        parent: Option<u32>,
        unit: u16,
        locals: Table,
        outers: Vec<Table>,
        registry: &Registry,
        shadow_node: u32,
    ) -> VmThread {
        VmThread {
            id,
            parent,
            frames: vec![VmFrame { unit, ip: 0, locals, outers, stack_base: 0, shadow_node }],
            shadow_root: shadow_node,
            stack: registry.new_table(Vec::new()),
            state: VmState::Runnable,
            vtime: 0,
            feed: None,
            background: false,
            instructions: 0,
            handlers: Vec::new(),
            held_locks: Vec::new(),
            error: None,
            trace_start_ns: tetra_obs::now_ns(),
            block_start: (0, 0),
        }
    }

    /// The shadow call-path node the thread is currently running under
    /// (its spawn node once the outermost frame has returned).
    pub fn current_shadow_node(&self) -> u32 {
        self.frames.last().map(|f| f.shadow_node).unwrap_or(self.shadow_root)
    }

    pub fn current_line(&self, program: &CompiledProgram) -> u32 {
        match self.frames.last() {
            Some(f) => program
                .unit(f.unit)
                .line_at(f.ip.min(program.unit(f.unit).code.len().saturating_sub(1))),
            None => 0,
        }
    }

    fn err(
        &self,
        program: &CompiledProgram,
        kind: ErrorKind,
        msg: impl Into<String>,
    ) -> RuntimeError {
        RuntimeError::new(kind, msg, self.current_line(program))
    }

    // ---- stack helpers (brief locks; never held across allocation) --------

    fn push(&self, v: Value) {
        self.stack.write().push(v);
    }

    fn pop(&self, program: &CompiledProgram) -> Result<Value, RuntimeError> {
        self.stack
            .write()
            .pop()
            .ok_or_else(|| self.err(program, ErrorKind::Value, "VM stack underflow (compiler bug)"))
    }

    fn peek(&self, program: &CompiledProgram) -> Result<Value, RuntimeError> {
        self.stack
            .read()
            .last()
            .copied()
            .ok_or_else(|| self.err(program, ErrorKind::Value, "VM stack underflow (compiler bug)"))
    }

    /// Copy the top `n` values (kept on the stack as GC roots).
    fn top_n(&self, n: usize) -> Vec<Value> {
        let stack = self.stack.read();
        stack[stack.len() - n..].to_vec()
    }

    fn drop_n(&self, n: usize) {
        let mut stack = self.stack.write();
        let len = stack.len();
        stack.truncate(len - n);
    }

    /// Execute a run of cheap, allocation-free instructions while holding
    /// the frame's locals guard and the operand-stack guard **once**,
    /// instead of re-acquiring both `RwLock`s for every instruction. The
    /// scheduler calls this only while this is the sole runnable thread
    /// (its dispatch quantum), where the coarser locking is unobservable.
    ///
    /// Returns how many instructions ran (possibly 0); every one of them is
    /// `CostClass::Basic`. Stops *before* any instruction that could
    /// allocate, raise, block, or change the frame stack — those must go
    /// through [`VmThread::step`]. The allocation restriction is
    /// load-bearing: a GC triggered inside the quantum would scan the
    /// registry's roots, which read-locks every table, including the two
    /// write guards held here.
    pub fn step_quantum(&mut self, world: &World, max: u32) -> u32 {
        let program = world.program;
        let stack_arc = self.stack.clone();
        let Some(frame) = self.frames.last_mut() else {
            return 0;
        };
        let unit = program.unit(frame.unit);
        let code = &unit.code;
        let locals_arc = frame.locals.clone();
        let octx =
            ops::OpCtx { heap: world.heap, mutator: world.mutator, roots: world.registry, line: 0 };
        let mut locals = locals_arc.write();
        let mut stack = stack_arc.write();
        let mut ip = frame.ip;
        let mut n: u32 = 0;
        while n < max {
            match &code[ip] {
                Instr::Const(i) => match &program.consts[*i as usize] {
                    Const::None => stack.push(Value::None),
                    Const::Int(v) => stack.push(Value::Int(*v)),
                    Const::Real(v) => stack.push(Value::Real(*v)),
                    Const::Bool(v) => stack.push(Value::Bool(*v)),
                    Const::Str(_) => break, // allocates
                },
                Instr::LoadLocal(i) => {
                    let v = locals[*i as usize];
                    if matches!(v, Value::None) {
                        break; // unassigned read: error via step()
                    }
                    stack.push(v);
                }
                Instr::StoreLocal(i) => {
                    let Some(&v) = stack.last() else { break };
                    stack.pop();
                    let slot = &mut locals[*i as usize];
                    *slot = ops::widen_like(Some(*slot), v);
                }
                Instr::Jump(t) => {
                    ip = *t as usize;
                    n += 1;
                    continue;
                }
                Instr::JumpIfFalse(t) => match stack.last() {
                    Some(Value::Bool(b)) => {
                        let b = *b;
                        stack.pop();
                        if !b {
                            ip = *t as usize;
                            n += 1;
                            continue;
                        }
                    }
                    _ => break, // non-bool condition: error via step()
                },
                Instr::JumpIfFalsePeek(t) => match stack.last() {
                    Some(Value::Bool(false)) => {
                        ip = *t as usize;
                        n += 1;
                        continue;
                    }
                    Some(Value::Bool(true)) => {}
                    _ => break,
                },
                Instr::JumpIfTruePeek(t) => match stack.last() {
                    Some(Value::Bool(true)) => {
                        ip = *t as usize;
                        n += 1;
                        continue;
                    }
                    Some(Value::Bool(false)) => {}
                    _ => break,
                },
                Instr::Pop => {
                    if stack.pop().is_none() {
                        break;
                    }
                }
                Instr::Dup2 => {
                    let len = stack.len();
                    if len < 2 {
                        break;
                    }
                    let (a, b) = (stack[len - 2], stack[len - 1]);
                    stack.push(a);
                    stack.push(b);
                }
                Instr::Bin(op) => {
                    let len = stack.len();
                    if len < 2 {
                        break;
                    }
                    let (l, r) = (stack[len - 2], stack[len - 1]);
                    // Scalar operands can neither allocate nor be GC-moved;
                    // objects (string/array concat) go through step().
                    if l.as_obj().is_some() || r.as_obj().is_some() {
                        break;
                    }
                    match ops::binary(&octx, *op, l, r) {
                        Ok(v) => {
                            stack.truncate(len - 2);
                            stack.push(v);
                        }
                        Err(_) => break, // re-raise via step() with a line
                    }
                }
                Instr::Neg => {
                    let Some(&v) = stack.last() else { break };
                    if v.as_obj().is_some() {
                        break;
                    }
                    match ops::negate(&octx, v) {
                        Ok(r) => {
                            stack.pop();
                            stack.push(r);
                        }
                        Err(_) => break,
                    }
                }
                Instr::Not => {
                    let Some(&v) = stack.last() else { break };
                    if v.as_obj().is_some() {
                        break;
                    }
                    match ops::not(&octx, v) {
                        Ok(r) => {
                            stack.pop();
                            stack.push(r);
                        }
                        Err(_) => break,
                    }
                }
                Instr::Widen => {
                    let Some(&v) = stack.last() else { break };
                    stack.pop();
                    stack.push(ops::widen_to(&Type::Real, v));
                }
                _ => break,
            }
            ip += 1;
            n += 1;
        }
        drop(stack);
        drop(locals);
        frame.ip = ip;
        self.instructions += n as u64;
        n
    }

    /// Execute the instruction at the current ip. Returns the outcome and
    /// the cost class. On `WantLock` the ip is left pointing at the
    /// `EnterLock` so the scheduler can retry it.
    pub fn step(&mut self, world: &World) -> Result<(Outcome, CostClass), RuntimeError> {
        let program = world.program;
        let frame = self.frames.last().expect("step on a finished thread");
        let unit = program.unit(frame.unit);
        let instr = unit.code[frame.ip].clone();
        let line = unit.line_at(frame.ip);
        self.instructions += 1;
        if tetra_obs::heap_profile_enabled() {
            // Any allocation this instruction performs is charged to the
            // current call path and source line.
            tetra_obs::heapprof::set_site(frame.shadow_node, line);
        }

        let octx =
            ops::OpCtx { heap: world.heap, mutator: world.mutator, roots: world.registry, line };

        let mut cost = CostClass::Basic;
        let mut advance = true;
        let mut outcome = Outcome::Normal;

        match instr {
            Instr::Const(i) => {
                let v = match &program.consts[i as usize] {
                    Const::None => Value::None,
                    Const::Int(v) => Value::Int(*v),
                    Const::Real(v) => Value::Real(*v),
                    Const::Bool(v) => Value::Bool(*v),
                    Const::Str(s) => {
                        cost = CostClass::Alloc;
                        world.heap.alloc_str(world.mutator, world.registry, s.clone())
                    }
                };
                self.push(v);
            }
            Instr::LoadLocal(i) => {
                let v = self.frames.last().unwrap().locals.read()[i as usize];
                if matches!(v, Value::None) {
                    return Err(self.err(
                        program,
                        ErrorKind::UndefinedVariable,
                        "a variable was read before any assignment",
                    ));
                }
                self.push(v);
            }
            Instr::StoreLocal(i) => {
                let v = self.pop(program)?;
                let locals = self.frames.last().unwrap().locals.clone();
                let mut locals = locals.write();
                let slot = &mut locals[i as usize];
                *slot = ops::widen_like(Some(*slot), v);
            }
            Instr::LoadOuter(d, i) => {
                cost = CostClass::SharedAccess;
                let table = self.frames.last().unwrap().outers[d as usize - 1].clone();
                let v = table.read()[i as usize];
                if matches!(v, Value::None) {
                    return Err(self.err(
                        program,
                        ErrorKind::UndefinedVariable,
                        "a variable was read before any assignment",
                    ));
                }
                self.push(v);
            }
            Instr::StoreOuter(d, i) => {
                cost = CostClass::SharedAccess;
                let v = self.pop(program)?;
                let table = self.frames.last().unwrap().outers[d as usize - 1].clone();
                let mut table = table.write();
                let slot = &mut table[i as usize];
                *slot = ops::widen_like(Some(*slot), v);
            }
            Instr::Bin(op) => {
                let operands = self.top_n(2);
                let r = ops::binary(&octx, op, operands[0], operands[1])?;
                self.drop_n(2);
                self.push(r);
                if r.as_obj().is_some() {
                    cost = CostClass::Alloc;
                }
            }
            Instr::Neg => {
                let v = self.peek(program)?;
                let r = ops::negate(&octx, v)?;
                self.drop_n(1);
                self.push(r);
            }
            Instr::Not => {
                let v = self.peek(program)?;
                let r = ops::not(&octx, v)?;
                self.drop_n(1);
                self.push(r);
            }
            Instr::Widen => {
                let v = self.pop(program)?;
                self.push(ops::widen_to(&Type::Real, v));
            }
            Instr::Pop => {
                self.pop(program)?;
            }
            Instr::Dup2 => {
                let two = self.top_n(2);
                self.push(two[0]);
                self.push(two[1]);
            }
            Instr::Jump(t) => {
                self.frames.last_mut().unwrap().ip = t as usize;
                advance = false;
            }
            Instr::JumpIfFalse(t) => {
                let v = self.pop(program)?;
                if !self.truthy(program, v)? {
                    self.frames.last_mut().unwrap().ip = t as usize;
                    advance = false;
                }
            }
            Instr::JumpIfFalsePeek(t) => {
                let v = self.peek(program)?;
                if !self.truthy(program, v)? {
                    self.frames.last_mut().unwrap().ip = t as usize;
                    advance = false;
                }
            }
            Instr::JumpIfTruePeek(t) => {
                let v = self.peek(program)?;
                if self.truthy(program, v)? {
                    self.frames.last_mut().unwrap().ip = t as usize;
                    advance = false;
                }
            }
            Instr::Call(f, argc) => {
                let argc = argc as usize;
                let callee = program.unit(f);
                let mut locals = vec![Value::None; callee.nlocals as usize];
                let args = self.top_n(argc);
                locals[..argc].copy_from_slice(&args);
                self.drop_n(argc);
                let locals = world.registry.new_table(locals);
                let stack_base = self.stack.read().len();
                // Return to the next instruction.
                self.frames.last_mut().unwrap().ip += 1;
                advance = false;
                if self.frames.len() >= 1000 {
                    return Err(self.err(
                        program,
                        ErrorKind::Value,
                        "call depth exceeded 1000 (infinite recursion?)",
                    ));
                }
                // Extend the shadow call path; Return pops the frame and
                // thereby restores the caller's node.
                let shadow_node = if tetra_obs::attribution_enabled() {
                    let parent = self.frames.last().unwrap().shadow_node;
                    tetra_obs::stack::child(parent, &callee.name)
                } else {
                    tetra_obs::stack::ROOT
                };
                self.frames.push(VmFrame {
                    unit: f,
                    ip: 0,
                    locals,
                    outers: Vec::new(),
                    stack_base,
                    shadow_node,
                });
            }
            Instr::CallBuiltin(b, argc) => {
                let argc = argc as usize;
                if b == Builtin::Sleep {
                    // Simulated: advance virtual time without real sleeping.
                    let ms = self.pop(program)?.as_int().unwrap_or(0).max(0) as u64;
                    self.push(Value::None);
                    cost = CostClass::Sleep(ms);
                } else {
                    let args = self.top_n(argc);
                    let hctx = tetra_stdlib::HostCtx {
                        heap: world.heap,
                        mutator: world.mutator,
                        roots: world.registry,
                        console: world.console,
                        thread: None,
                        line,
                    };
                    let r = tetra_stdlib::call_builtin(b, &hctx, &args)?;
                    self.drop_n(argc);
                    self.push(r);
                    cost = CostClass::Builtin;
                }
            }
            Instr::Return => {
                let value = self.pop(program)?;
                let frame = self.frames.pop().expect("return without a frame");
                self.stack.write().truncate(frame.stack_base);
                // Handlers installed inside the returning frame are gone.
                let depth = self.frames.len();
                self.handlers.retain(|h| h.frame_depth <= depth);
                if self.frames.is_empty() {
                    outcome = Outcome::Finished;
                    advance = false;
                } else {
                    self.push(value);
                    advance = false; // caller ip was advanced at Call time
                }
            }
            Instr::MakeArray(n) => {
                let n = n as usize;
                let items = self.top_n(n);
                let arr = world.heap.alloc(world.mutator, world.registry, Object::array(items));
                self.drop_n(n);
                self.push(Value::Obj(arr));
                cost = CostClass::Alloc;
            }
            Instr::MakeRange => {
                let two = self.top_n(2);
                let (Some(a), Some(b)) = (two[0].as_int(), two[1].as_int()) else {
                    return Err(self.err(program, ErrorKind::Value, "range bounds must be ints"));
                };
                const MAX_RANGE: i64 = 50_000_000;
                if b.saturating_sub(a) > MAX_RANGE {
                    return Err(self.err(
                        program,
                        ErrorKind::Value,
                        format!("range [{a} ... {b}] is too large (over {MAX_RANGE} elements)"),
                    ));
                }
                let items: Vec<Value> = (a..=b).map(Value::Int).collect();
                let arr = world.heap.alloc(world.mutator, world.registry, Object::array(items));
                self.drop_n(2);
                self.push(Value::Obj(arr));
                cost = CostClass::Alloc;
            }
            Instr::MakeTuple(n) => {
                let n = n as usize;
                let items = self.top_n(n);
                let t = world.heap.alloc(world.mutator, world.registry, Object::Tuple(items));
                self.drop_n(n);
                self.push(Value::Obj(t));
                cost = CostClass::Alloc;
            }
            Instr::MakeDict(n) => {
                let n = n as usize;
                let flat = self.top_n(2 * n);
                let mut map = std::collections::HashMap::with_capacity(n);
                for pair in flat.chunks(2) {
                    let key = pair[0].to_dict_key().ok_or_else(|| {
                        self.err(
                            program,
                            ErrorKind::Value,
                            format!("a {} cannot be a dict key", pair[0].type_name()),
                        )
                    })?;
                    map.insert(key, pair[1]);
                }
                let d = world.heap.alloc(world.mutator, world.registry, Object::dict(map));
                self.drop_n(2 * n);
                self.push(Value::Obj(d));
                cost = CostClass::Alloc;
            }
            Instr::Index => {
                let two = self.top_n(2);
                let v = ops::index_read(&octx, two[0], two[1])?;
                self.drop_n(2);
                self.push(v);
                cost = CostClass::SharedAccess;
            }
            Instr::IndexStore => {
                let three = self.top_n(3);
                ops::index_write(&octx, three[0], three[1], three[2])?;
                self.drop_n(3);
                cost = CostClass::SharedAccess;
            }
            Instr::Assert { has_msg } => {
                let msg = if has_msg { Some(self.pop(program)?) } else { None };
                let cond = self.pop(program)?;
                if !self.truthy(program, cond)? {
                    let text = match msg {
                        Some(m) => m.display(),
                        None => "assertion failed".to_string(),
                    };
                    return Err(self.err(program, ErrorKind::AssertionFailed, text));
                }
            }
            Instr::EnterLock(c) => {
                let Const::Str(name) = &program.consts[c as usize] else {
                    unreachable!("lock name constant must be a string");
                };
                outcome = Outcome::WantLock { name: name.clone(), line };
                advance = false; // scheduler advances on successful acquire
            }
            Instr::ExitLock(c) => {
                let Const::Str(name) = &program.consts[c as usize] else {
                    unreachable!("lock name constant must be a string");
                };
                outcome = Outcome::Unlocked { name: name.clone() };
            }
            Instr::Parallel(thunks) => {
                outcome = Outcome::Spawn { thunks, join: true };
            }
            Instr::Background(thunks) => {
                outcome = Outcome::Spawn { thunks, join: false };
            }
            Instr::TryPush(handler_ip) => {
                self.handlers.push(Handler {
                    frame_depth: self.frames.len(),
                    stack_height: self.stack.read().len(),
                    handler_ip,
                    locks_mark: self.held_locks.len(),
                });
            }
            Instr::TryPop => {
                self.handlers.pop();
            }
            Instr::ParallelFor(t) => {
                // Peek (not pop) so the sequence stays rooted while char
                // strings are allocated below.
                let arr = self.peek(program)?;
                let items = match arr {
                    Value::Obj(r) => match r.object() {
                        Object::Array(items) => items.lock().clone(),
                        Object::Str(s) => {
                            // Iterate characters, as the interpreter does.
                            let chars: Vec<String> = s.chars().map(|c| c.to_string()).collect();
                            let mut out = Vec::with_capacity(chars.len());
                            for c in chars {
                                let v = world.heap.alloc_str(world.mutator, world.registry, c);
                                // Root each char via the operand stack.
                                self.push(v);
                                out.push(v);
                            }
                            self.drop_n(out.len());
                            out
                        }
                        _ => {
                            return Err(self.err(
                                program,
                                ErrorKind::Value,
                                "parallel for needs an array",
                            ))
                        }
                    },
                    other => {
                        return Err(self.err(
                            program,
                            ErrorKind::Value,
                            format!("cannot iterate over a {}", other.type_name()),
                        ))
                    }
                };
                self.drop_n(1); // the sequence value
                outcome = Outcome::ParallelFor { thunk: t, items };
            }
        }

        if advance {
            if let Some(f) = self.frames.last_mut() {
                f.ip += 1;
            }
        }
        Ok((outcome, cost))
    }

    fn truthy(&self, program: &CompiledProgram, v: Value) -> Result<bool, RuntimeError> {
        v.as_bool().ok_or_else(|| {
            self.err(
                program,
                ErrorKind::Value,
                format!("condition evaluated to a {}, not a bool", v.type_name()),
            )
        })
    }

    /// Advance past the `EnterLock` the thread was parked on.
    pub fn advance_ip(&mut self) {
        if let Some(f) = self.frames.last_mut() {
            f.ip += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_tables_are_purged_from_the_registry() {
        let reg = Registry::default();
        for _ in 0..10_000 {
            drop(reg.new_table(Vec::new()));
        }
        // Every table registered above is dead by the time the next one
        // arrives; the doubling threshold keeps the tracked set near the
        // floor instead of accumulating ten thousand dead weak entries.
        assert!(
            reg.tracked_tables() <= 2 * PURGE_FLOOR,
            "tracked {} dead entries",
            reg.tracked_tables()
        );
    }

    #[test]
    fn live_tables_survive_purges() {
        let reg = Registry::default();
        let keep: Vec<Table> = (0..100).map(|i| reg.new_table(vec![Value::Int(i)])).collect();
        for _ in 0..10_000 {
            drop(reg.new_table(Vec::new()));
        }
        assert!(reg.tracked_tables() >= keep.len());
        for (i, t) in keep.iter().enumerate() {
            assert!(matches!(t.read()[0], Value::Int(v) if v == i as i64));
        }
    }
}
