//! Constant folding — the first optimization of the "native compiler"
//! path (paper §VI: "compile Tetra code into an efficient executable").
//!
//! Folding happens on the AST before bytecode generation and is strictly
//! semantics-preserving, which in an educational language includes
//! *errors*: `1 / 0` must still fail at runtime with its source line, so
//! any operation that could raise (division/modulo by a zero literal,
//! overflowing integer arithmetic) is left unfolded. Node ids and spans of
//! surviving nodes are untouched, so the checker's side tables stay valid.
//!
//! What folds:
//! * integer and real arithmetic on literals (when overflow-free);
//! * comparisons and equality on numeric/string/bool literals;
//! * `and`/`or`/`not` on bool literals (short-circuit made static);
//! * unary minus on numeric literals;
//! * `if` with a literal condition: dead arms are pruned;
//! * `while false:` is removed entirely.

use tetra_ast::{BinOp, Block, Expr, ExprKind, Program, Stmt, StmtKind, Target, UnOp};

/// Statistics reported by the pass (shown by `tetra disasm`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FoldStats {
    pub expressions_folded: usize,
    pub branches_pruned: usize,
    pub loops_removed: usize,
}

/// Fold a program, returning the optimized copy and statistics.
pub fn fold_program(program: &Program) -> (Program, FoldStats) {
    let mut stats = FoldStats::default();
    let mut out = program.clone();
    for f in &mut out.funcs {
        fold_block(&mut f.body, &mut stats);
    }
    (out, stats)
}

fn fold_block(block: &mut Block, stats: &mut FoldStats) {
    let mut new_stmts = Vec::with_capacity(block.stmts.len());
    for mut stmt in std::mem::take(&mut block.stmts) {
        match fold_stmt(&mut stmt, stats) {
            Keep::Yes => new_stmts.push(stmt),
            Keep::ReplaceWith(stmts) => new_stmts.extend(stmts),
            Keep::Drop => {}
        }
    }
    block.stmts = new_stmts;
}

enum Keep {
    Yes,
    Drop,
    ReplaceWith(Vec<Stmt>),
}

fn fold_stmt(stmt: &mut Stmt, stats: &mut FoldStats) -> Keep {
    match &mut stmt.kind {
        StmtKind::Expr(e) => {
            fold_expr(e, stats);
            Keep::Yes
        }
        StmtKind::Assign { target, value, .. } => {
            if let Target::Index { base, index, .. } = target {
                fold_expr(base, stats);
                fold_expr(index, stats);
            }
            fold_expr(value, stats);
            Keep::Yes
        }
        StmtKind::If { cond, then, elifs, els } => {
            fold_expr(cond, stats);
            for (c, b) in elifs.iter_mut() {
                fold_expr(c, stats);
                fold_block(b, stats);
            }
            fold_block(then, stats);
            if let Some(b) = els {
                fold_block(b, stats);
            }
            // Literal condition: keep only the taken arm. Only the leading
            // condition is pruned — enough for the common `if DEBUG:` use.
            match cond.kind {
                ExprKind::Bool(true) => {
                    stats.branches_pruned += 1;
                    Keep::ReplaceWith(std::mem::take(&mut then.stmts))
                }
                ExprKind::Bool(false) if elifs.is_empty() => {
                    stats.branches_pruned += 1;
                    match els {
                        Some(b) => Keep::ReplaceWith(std::mem::take(&mut b.stmts)),
                        None => Keep::Drop,
                    }
                }
                _ => Keep::Yes,
            }
        }
        StmtKind::While { cond, body } => {
            fold_expr(cond, stats);
            fold_block(body, stats);
            if matches!(cond.kind, ExprKind::Bool(false)) {
                stats.loops_removed += 1;
                Keep::Drop
            } else {
                Keep::Yes
            }
        }
        StmtKind::For { iter, body, .. } | StmtKind::ParallelFor { iter, body, .. } => {
            fold_expr(iter, stats);
            fold_block(body, stats);
            Keep::Yes
        }
        StmtKind::Parallel { body }
        | StmtKind::Background { body }
        | StmtKind::Lock { body, .. } => {
            fold_block(body, stats);
            Keep::Yes
        }
        StmtKind::Return(Some(e)) => {
            fold_expr(e, stats);
            Keep::Yes
        }
        StmtKind::Assert { cond, message } => {
            fold_expr(cond, stats);
            if let Some(m) = message {
                fold_expr(m, stats);
            }
            Keep::Yes
        }
        StmtKind::Try { body, handler, .. } => {
            fold_block(body, stats);
            fold_block(handler, stats);
            Keep::Yes
        }
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue | StmtKind::Pass => Keep::Yes,
    }
}

fn fold_expr(e: &mut Expr, stats: &mut FoldStats) {
    // Fold children first.
    match &mut e.kind {
        ExprKind::Unary { operand, .. } => fold_expr(operand, stats),
        ExprKind::Binary { lhs, rhs, .. } => {
            fold_expr(lhs, stats);
            fold_expr(rhs, stats);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                fold_expr(a, stats);
            }
        }
        ExprKind::Index { base, index } => {
            fold_expr(base, stats);
            fold_expr(index, stats);
        }
        ExprKind::Array(items) | ExprKind::Tuple(items) => {
            for a in items {
                fold_expr(a, stats);
            }
        }
        ExprKind::Range { lo, hi } => {
            fold_expr(lo, stats);
            fold_expr(hi, stats);
        }
        ExprKind::Dict(pairs) => {
            for (k, v) in pairs {
                fold_expr(k, stats);
                fold_expr(v, stats);
            }
        }
        _ => {}
    }
    // Then try to replace this node.
    if let Some(folded) = try_fold(e) {
        e.kind = folded;
        stats.expressions_folded += 1;
    }
}

/// Compute the folded form of `e`, or `None` when it must stay (not a
/// literal operation, or it could raise at runtime).
fn try_fold(e: &Expr) -> Option<ExprKind> {
    match &e.kind {
        ExprKind::Unary { op, operand } => match (op, &operand.kind) {
            (UnOp::Not, ExprKind::Bool(b)) => Some(ExprKind::Bool(!b)),
            (UnOp::Neg, ExprKind::Int(v)) => v.checked_neg().map(ExprKind::Int),
            (UnOp::Neg, ExprKind::Real(v)) => Some(ExprKind::Real(-v)),
            _ => None,
        },
        ExprKind::Binary { op, lhs, rhs } => fold_binary(*op, &lhs.kind, &rhs.kind),
        _ => None,
    }
}

fn fold_binary(op: BinOp, l: &ExprKind, r: &ExprKind) -> Option<ExprKind> {
    use BinOp::*;
    use ExprKind::*;
    match (l, r) {
        (Bool(a), Bool(b)) => match op {
            And => Some(Bool(*a && *b)),
            Or => Some(Bool(*a || *b)),
            Eq => Some(Bool(a == b)),
            Ne => Some(Bool(a != b)),
            _ => Option::None,
        },
        // Short-circuit with only the left side literal.
        (Bool(true), _) if op == Or => Some(Bool(true)),
        (Bool(false), _) if op == And => Some(Bool(false)),
        (Int(a), Int(b)) => match op {
            Add => a.checked_add(*b).map(Int),
            Sub => a.checked_sub(*b).map(Int),
            Mul => a.checked_mul(*b).map(Int),
            // Division/modulo fold only with a provably safe divisor; a
            // zero divisor must raise at runtime, not vanish at compile
            // time. checked_div also refuses i64::MIN / -1.
            Div if *b != 0 => a.checked_div(*b).map(Int),
            Mod if *b != 0 => a.checked_rem(*b).map(Int),
            Eq => Some(Bool(a == b)),
            Ne => Some(Bool(a != b)),
            Lt => Some(Bool(a < b)),
            Gt => Some(Bool(a > b)),
            Le => Some(Bool(a <= b)),
            Ge => Some(Bool(a >= b)),
            _ => Option::None,
        },
        (Real(a), Real(b)) => fold_real(op, *a, *b),
        (Int(a), Real(b)) => fold_real(op, *a as f64, *b),
        (Real(a), Int(b)) => fold_real(op, *a, *b as f64),
        (Str(a), Str(b)) => match op {
            Add => Some(Str(format!("{a}{b}"))),
            Eq => Some(Bool(a == b)),
            Ne => Some(Bool(a != b)),
            Lt => Some(Bool(a < b)),
            Gt => Some(Bool(a > b)),
            Le => Some(Bool(a <= b)),
            Ge => Some(Bool(a >= b)),
            _ => Option::None,
        },
        _ => Option::None,
    }
}

fn fold_real(op: BinOp, a: f64, b: f64) -> Option<ExprKind> {
    use BinOp::*;
    use ExprKind::*;
    match op {
        Add => Some(Real(a + b)),
        Sub => Some(Real(a - b)),
        Mul => Some(Real(a * b)),
        Div if b != 0.0 => Some(Real(a / b)),
        Mod if b != 0.0 => Some(Real(a % b)),
        Eq => Some(Bool(a == b)),
        Ne => Some(Bool(a != b)),
        Lt => Some(Bool(a < b)),
        Gt => Some(Bool(a > b)),
        Le => Some(Bool(a <= b)),
        Ge => Some(Bool(a >= b)),
        _ => Option::None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold_src(src: &str) -> (Program, FoldStats) {
        let p = tetra_parser::parse(src).unwrap();
        fold_program(&p)
    }

    fn main_source(p: &Program) -> String {
        tetra_ast::pretty::to_source(p)
    }

    #[test]
    fn arithmetic_folds() {
        let (p, stats) = fold_src("def main():\n    x = 2 + 3 * 4\n");
        assert!(main_source(&p).contains("x = 14"), "{}", main_source(&p));
        assert_eq!(stats.expressions_folded, 2);
    }

    #[test]
    fn mixed_numeric_folds_to_real() {
        let (p, _) = fold_src("def main():\n    x = 1 + 0.5\n");
        assert!(main_source(&p).contains("x = 1.5"), "{}", main_source(&p));
    }

    #[test]
    fn string_concat_and_compare_fold() {
        let (p, _) = fold_src("def main():\n    s = \"ab\" + \"cd\"\n    b = \"a\" < \"b\"\n");
        let src = main_source(&p);
        assert!(src.contains("s = \"abcd\""), "{src}");
        assert!(src.contains("b = true"), "{src}");
    }

    #[test]
    fn division_by_zero_literal_does_not_fold() {
        let (p, stats) = fold_src("def main():\n    x = 1 / 0\n    y = 7 % 0\n");
        let src = main_source(&p);
        assert!(src.contains("1 / 0"), "must keep the runtime error: {src}");
        assert!(src.contains("7 % 0"), "{src}");
        assert_eq!(stats.expressions_folded, 0);
    }

    #[test]
    fn overflow_does_not_fold() {
        let (p, stats) = fold_src("def main():\n    x = 9223372036854775807 + 1\n");
        assert!(main_source(&p).contains("9223372036854775807 + 1"));
        assert_eq!(stats.expressions_folded, 0);
    }

    #[test]
    fn logical_and_not_fold() {
        let (p, _) = fold_src("def main():\n    b = not (true and false)\n");
        assert!(main_source(&p).contains("b = true"), "{}", main_source(&p));
    }

    #[test]
    fn if_true_is_pruned_to_then_arm() {
        let (p, stats) = fold_src(
            "def main():\n    if 1 < 2:\n        print(\"kept\")\n    else:\n        print(\"dead\")\n",
        );
        let src = main_source(&p);
        assert!(src.contains("kept"), "{src}");
        assert!(!src.contains("dead"), "{src}");
        assert_eq!(stats.branches_pruned, 1);
    }

    #[test]
    fn if_false_keeps_else_arm() {
        let (p, _) = fold_src(
            "def main():\n    if false:\n        print(\"dead\")\n    else:\n        print(\"live\")\n",
        );
        let src = main_source(&p);
        assert!(src.contains("live"), "{src}");
        assert!(!src.contains("dead"), "{src}");
    }

    #[test]
    fn while_false_is_removed() {
        let (p, stats) = fold_src(
            "def main():\n    while false:\n        print(\"never\")\n    print(\"after\")\n",
        );
        let src = main_source(&p);
        assert!(!src.contains("never"), "{src}");
        assert!(src.contains("after"), "{src}");
        assert_eq!(stats.loops_removed, 1);
    }

    #[test]
    fn variables_do_not_fold() {
        let (p, stats) = fold_src("def main():\n    x = 1\n    y = x + 2\n");
        assert!(main_source(&p).contains("x + 2"));
        assert_eq!(stats.expressions_folded, 0);
    }

    #[test]
    fn folding_inside_parallel_constructs() {
        let (p, stats) = fold_src(
            "def main():\n    parallel for i in [1 ... 2 + 2]:\n        lock m:\n            x = 3 * 3\n",
        );
        let src = main_source(&p);
        assert!(src.contains("[1 ... 4]"), "{src}");
        assert!(src.contains("x = 9"), "{src}");
        assert_eq!(stats.expressions_folded, 2);
    }

    #[test]
    fn folded_program_behaviour_is_unchanged() {
        // End-to-end: fold, re-check, run on the VM, compare with the
        // unfolded interpreter result.
        let src = "\
def main():
    x = 2 * 3 + 4
    if 10 > 5:
        x += 100 / 4
    while false:
        x = 0
    print(x, \" \", \"a\" + \"b\")
";
        let parsed = tetra_parser::parse(src).unwrap();
        let (folded, stats) = fold_program(&parsed);
        assert!(stats.expressions_folded >= 3);
        let typed = tetra_types::check(folded).expect("folded program still checks");
        let program = crate::compile(&typed);
        let console = tetra_runtime::BufferConsole::new();
        crate::run(&program, crate::VmConfig::default(), console.clone()).unwrap();
        assert_eq!(console.output(), "35 ab\n");
    }

    #[test]
    fn fold_then_compile_shrinks_bytecode() {
        let src = "def main():\n    print(1 + 2 + 3 + 4 + 5)\n";
        let parsed = tetra_parser::parse(src).unwrap();
        let plain = crate::compile(&tetra_types::check(parsed.clone()).unwrap());
        let (folded, _) = fold_program(&parsed);
        let optimized = crate::compile(&tetra_types::check(folded).unwrap());
        assert!(
            optimized.instruction_count() < plain.instruction_count(),
            "{} !< {}",
            optimized.instruction_count(),
            plain.instruction_count()
        );
    }
}
