//! Bytecode definitions.
//!
//! The paper lists a native compiler as future work (§VI: "compile Tetra
//! code into an efficient executable"). This crate is that compilation
//! path: a stack bytecode with slot-resolved variables (no hash lookups),
//! plus explicit instructions for Tetra's parallel constructs.
//!
//! Parallel constructs compile each child statement / loop body into a
//! **thunk**: a code unit whose free variables compile to
//! [`Instr::LoadOuter`] / [`Instr::StoreOuter`] accesses into enclosing
//! frames — the bytecode-level equivalent of the interpreter's shared
//! symbol tables.

use tetra_ast::BinOp;
use tetra_stdlib::Builtin;

/// Compile-time constants.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    None,
    Int(i64),
    Real(f64),
    Bool(bool),
    /// String constants are materialized on the GC heap at execution time.
    Str(String),
}

/// One bytecode instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Push constant `consts[i]`.
    Const(u16),
    /// Push local slot `i`.
    LoadLocal(u16),
    /// Pop into local slot `i` (preserving the slot's realness).
    StoreLocal(u16),
    /// Push slot `i` of the frame `depth` scopes out (thunks only).
    LoadOuter(u8, u16),
    /// Pop into slot `i` of the frame `depth` scopes out.
    StoreOuter(u8, u16),
    /// Pop two operands, apply a non-logical binary operator, push result.
    Bin(BinOp),
    /// Arithmetic negation of TOS.
    Neg,
    /// Logical negation of TOS.
    Not,
    /// Convert an int TOS to real (used where the static type says `real`).
    Widen,
    /// Pop and discard TOS.
    Pop,
    /// Duplicate the top two values (compound index assignment).
    Dup2,
    /// Unconditional jump to instruction index.
    Jump(u32),
    /// Pop a bool; jump when false.
    JumpIfFalse(u32),
    /// Peek a bool (no pop); jump when false (for `and`).
    JumpIfFalsePeek(u32),
    /// Peek a bool (no pop); jump when true (for `or`).
    JumpIfTruePeek(u32),
    /// Call user function `unit` with `argc` arguments (pushed in order).
    Call(u16, u8),
    /// Call a builtin with `argc` arguments.
    CallBuiltin(Builtin, u8),
    /// Return TOS to the caller (every path pushes a value first).
    Return,
    /// Pop `n` values, push a new array.
    MakeArray(u16),
    /// Pop hi, lo ints; push the inclusive range array.
    MakeRange,
    /// Pop `n` values, push a tuple.
    MakeTuple(u16),
    /// Pop `2n` values (k1 v1 k2 v2 ...), push a dict.
    MakeDict(u16),
    /// Pop index, base; push `base[index]`.
    Index,
    /// Pop value, index, base; perform `base[index] = value`.
    IndexStore,
    /// Pop message (string, when `has_msg`) then bool; error when false.
    Assert { has_msg: bool },
    /// Acquire the named lock `consts[i]` (blocks; scheduler-visible).
    EnterLock(u16),
    /// Release the named lock `consts[i]`.
    ExitLock(u16),
    /// Spawn one thread per thunk and join them all (`parallel:`).
    Parallel(Vec<u16>),
    /// Spawn one thread per thunk without joining (`background:`).
    Background(Vec<u16>),
    /// Pop an array; run thunk `t` once per element across worker threads,
    /// passing the element as the thunk's slot-0 parameter; join.
    ParallelFor(u16),
    /// Install an error handler at instruction index `0` (patched). On a
    /// raise, the thread unwinds to this frame/stack height, pushes the
    /// error message string, and jumps to the handler.
    TryPush(u32),
    /// Remove the most recent handler (normal exit from a `try:` body).
    TryPop,
}

/// What a code unit is, for diagnostics and the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitKind {
    Function,
    /// A `parallel:`/`background:` child statement. Writes to new names go
    /// to the enclosing scope (transparent), so it declares no locals of
    /// its own unless nested constructs do.
    ParallelChild,
    /// A `parallel for` body; slot 0 is the private induction variable.
    ParallelForBody,
}

/// A compiled function or thunk.
#[derive(Debug, Clone)]
pub struct CodeUnit {
    pub name: String,
    pub kind: UnitKind,
    /// Number of parameters (stored in the first slots).
    pub params: u16,
    /// Total local slots, including parameters.
    pub nlocals: u16,
    pub code: Vec<Instr>,
    /// Source line of each instruction (same length as `code`).
    pub lines: Vec<u32>,
}

impl CodeUnit {
    pub fn line_at(&self, ip: usize) -> u32 {
        self.lines.get(ip).copied().unwrap_or(0)
    }
}

/// A fully compiled program.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Functions first (in declaration order), thunks after.
    pub units: Vec<CodeUnit>,
    /// How many of `units` are program functions.
    pub num_funcs: usize,
    pub consts: Vec<Const>,
    /// Unit index of `main`.
    pub main: u16,
}

impl CompiledProgram {
    pub fn unit(&self, idx: u16) -> &CodeUnit {
        &self.units[idx as usize]
    }

    /// Total instruction count (reported by `tetra compile`).
    pub fn instruction_count(&self) -> usize {
        self.units.iter().map(|u| u.code.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_at_is_total() {
        let unit = CodeUnit {
            name: "t".into(),
            kind: UnitKind::Function,
            params: 0,
            nlocals: 0,
            code: vec![Instr::Const(0), Instr::Return],
            lines: vec![3, 3],
        };
        assert_eq!(unit.line_at(0), 3);
        assert_eq!(unit.line_at(99), 0);
    }
}
