//! AST → bytecode compiler.
//!
//! Variables resolve to frame slots at compile time (the type checker has
//! already guaranteed every name is defined). Scoping mirrors the
//! interpreter's frame chain exactly:
//!
//! * each function is one scope;
//! * a `parallel:`/`background:` child thunk is a **transparent** scope:
//!   new names defined inside it allocate in the enclosing scope, so (as in
//!   the interpreter, and Fig. II of the paper) `a = ...` inside a parallel
//!   block is visible to the parent after the join;
//! * a `parallel for` body thunk is a real scope whose slot 0 is the
//!   private induction variable; other new names are worker-private too.

use crate::bytecode::*;
use std::collections::HashMap;
use tetra_ast::{AssignOp, BinOp, Block, Expr, ExprKind, Stmt, StmtKind, Target, Type, UnOp};
use tetra_intern::Symbol;
use tetra_stdlib::Builtin;
use tetra_types::{Callee, TypedProgram};

/// Compile a checked program to bytecode.
pub fn compile(typed: &TypedProgram) -> CompiledProgram {
    let mut c =
        Compiler { typed, units: Vec::new(), consts: Vec::new(), const_map: HashMap::new() };
    let num_funcs = typed.program.funcs.len();
    // Reserve function unit slots so thunk indices follow them.
    for f in &typed.program.funcs {
        c.units.push(CodeUnit {
            name: f.name.to_string(),
            kind: UnitKind::Function,
            params: f.params.len() as u16,
            nlocals: 0,
            code: Vec::new(),
            lines: Vec::new(),
        });
    }
    for (idx, f) in typed.program.funcs.iter().enumerate() {
        let mut fc = FnCompiler::new(&mut c, idx);
        for p in &f.params {
            fc.define_named(p.name);
        }
        fc.set_line(f.span.line);
        fc.block(&f.body);
        // Implicit `return none` for paths that fall off the end.
        let none = fc.comp.intern(Const::None);
        fc.emit(Instr::Const(none));
        fc.emit(Instr::Return);
        let (code, lines, nlocals) = fc.finish_function();
        let unit = &mut c.units[idx];
        unit.code = code;
        unit.lines = lines;
        unit.nlocals = nlocals;
    }
    let main = typed.program.func_index("main").unwrap_or(0) as u16;
    CompiledProgram { units: c.units, num_funcs, consts: c.consts, main }
}

#[derive(PartialEq, Eq, Hash)]
enum ConstKey {
    None,
    Int(i64),
    RealBits(u64),
    Bool(bool),
    Str(String),
}

struct Compiler<'t> {
    typed: &'t TypedProgram,
    units: Vec<CodeUnit>,
    consts: Vec<Const>,
    const_map: HashMap<ConstKey, u16>,
}

impl Compiler<'_> {
    fn intern(&mut self, c: Const) -> u16 {
        let key = match &c {
            Const::None => ConstKey::None,
            Const::Int(v) => ConstKey::Int(*v),
            Const::Real(v) => ConstKey::RealBits(v.to_bits()),
            Const::Bool(v) => ConstKey::Bool(*v),
            Const::Str(s) => ConstKey::Str(s.clone()),
        };
        if let Some(&i) = self.const_map.get(&key) {
            return i;
        }
        let i = self.consts.len() as u16;
        self.consts.push(c);
        self.const_map.insert(key, i);
        i
    }
}

struct Scope {
    names: HashMap<Symbol, u16>,
    nlocals: u16,
    transparent: bool,
}

struct PartialUnit {
    code: Vec<Instr>,
    lines: Vec<u32>,
    /// (break patch sites, continue patch sites, open trys at loop entry)
    /// per open loop.
    loops: Vec<(Vec<usize>, Vec<usize>, usize)>,
    /// Number of `try:` bodies currently open in this unit.
    open_trys: usize,
    kind: UnitKind,
    name: String,
    params: u16,
}

struct FnCompiler<'c, 't> {
    comp: &'c mut Compiler<'t>,
    func_idx: usize,
    scopes: Vec<Scope>,
    parts: Vec<PartialUnit>,
    cur_line: u32,
}

impl<'c, 't> FnCompiler<'c, 't> {
    fn new(comp: &'c mut Compiler<'t>, func_idx: usize) -> Self {
        let name = comp.typed.program.funcs[func_idx].name.to_string();
        let params = comp.typed.program.funcs[func_idx].params.len() as u16;
        FnCompiler {
            comp,
            func_idx,
            scopes: vec![Scope { names: HashMap::new(), nlocals: 0, transparent: false }],
            parts: vec![PartialUnit {
                code: Vec::new(),
                lines: Vec::new(),
                loops: Vec::new(),
                open_trys: 0,
                kind: UnitKind::Function,
                name,
                params,
            }],
            cur_line: 0,
        }
    }

    fn finish_function(mut self) -> (Vec<Instr>, Vec<u32>, u16) {
        debug_assert_eq!(self.parts.len(), 1);
        debug_assert_eq!(self.scopes.len(), 1);
        let part = self.parts.pop().unwrap();
        let scope = self.scopes.pop().unwrap();
        (part.code, part.lines, scope.nlocals)
    }

    // ---- emission helpers ---------------------------------------------------

    fn set_line(&mut self, line: u32) {
        self.cur_line = line;
    }

    fn emit(&mut self, i: Instr) -> usize {
        let part = self.parts.last_mut().unwrap();
        part.code.push(i);
        part.lines.push(self.cur_line);
        part.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.parts.last().unwrap().code.len() as u32
    }

    fn patch_jump(&mut self, at: usize) {
        let target = self.here();
        let part = self.parts.last_mut().unwrap();
        match &mut part.code[at] {
            Instr::Jump(t)
            | Instr::JumpIfFalse(t)
            | Instr::JumpIfFalsePeek(t)
            | Instr::JumpIfTruePeek(t) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    // ---- scopes ---------------------------------------------------------------

    /// Resolve a name to (depth, slot); depth 0 is the current unit.
    fn resolve(&self, name: Symbol) -> Option<(u8, u16)> {
        for (d, scope) in self.scopes.iter().rev().enumerate() {
            if let Some(&slot) = scope.names.get(&name) {
                return Some((d as u8, slot));
            }
        }
        None
    }

    /// Define a named variable: in the innermost *non-transparent* scope.
    fn define_named(&mut self, name: Symbol) -> (u8, u16) {
        let depth = self
            .scopes
            .iter()
            .rev()
            .position(|s| !s.transparent)
            .expect("function scope is never transparent");
        let idx = self.scopes.len() - 1 - depth;
        let scope = &mut self.scopes[idx];
        let slot = scope.nlocals;
        scope.nlocals += 1;
        scope.names.insert(name, slot);
        (depth as u8, slot)
    }

    /// Allocate a hidden slot in the current unit (loop bookkeeping).
    fn define_hidden(&mut self) -> u16 {
        let scope = self.scopes.last_mut().unwrap();
        let slot = scope.nlocals;
        scope.nlocals += 1;
        slot
    }

    fn load(&mut self, depth: u8, slot: u16) {
        if depth == 0 {
            self.emit(Instr::LoadLocal(slot));
        } else {
            self.emit(Instr::LoadOuter(depth, slot));
        }
    }

    fn store(&mut self, depth: u8, slot: u16) {
        if depth == 0 {
            self.emit(Instr::StoreLocal(slot));
        } else {
            self.emit(Instr::StoreOuter(depth, slot));
        }
    }

    /// Resolve-or-define for assignment targets.
    fn target_slot(&mut self, name: Symbol) -> (u8, u16) {
        match self.resolve(name) {
            Some(x) => x,
            None => self.define_named(name),
        }
    }

    /// Slot for a `for` loop's induction variable. The interpreter *defines*
    /// the variable in the innermost frame each iteration, so the walk must
    /// not cross a worker-scope boundary: a `for v` inside a `parallel for`
    /// body gets a worker-private `v` even when an outer `v` exists.
    /// Transparent (`parallel:` child) scopes are crossed, as the
    /// interpreter shares the function frame with those children.
    fn loop_var_slot(&mut self, name: Symbol) -> (u8, u16) {
        for (d, scope) in self.scopes.iter().rev().enumerate() {
            if let Some(&slot) = scope.names.get(&name) {
                return (d as u8, slot);
            }
            if !scope.transparent {
                break;
            }
        }
        self.define_named(name)
    }

    // ---- thunks ---------------------------------------------------------------

    /// Compile `body` into a new thunk unit; returns its unit index.
    fn thunk(
        &mut self,
        kind: UnitKind,
        name: String,
        params: u16,
        body: impl FnOnce(&mut Self),
    ) -> u16 {
        self.scopes.push(Scope {
            names: HashMap::new(),
            nlocals: params,
            transparent: kind == UnitKind::ParallelChild,
        });
        self.parts.push(PartialUnit {
            code: Vec::new(),
            lines: Vec::new(),
            loops: Vec::new(),
            open_trys: 0,
            kind,
            name,
            params,
        });
        body(self);
        let none = self.comp.intern(Const::None);
        self.emit(Instr::Const(none));
        self.emit(Instr::Return);
        let part = self.parts.pop().unwrap();
        let scope = self.scopes.pop().unwrap();
        let idx = self.comp.units.len() as u16;
        self.comp.units.push(CodeUnit {
            name: part.name,
            kind: part.kind,
            params: part.params,
            nlocals: scope.nlocals,
            code: part.code,
            lines: part.lines,
        });
        idx
    }

    // ---- statements ------------------------------------------------------------

    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        self.set_line(s.span.line);
        match &s.kind {
            StmtKind::Pass => {}
            StmtKind::Expr(e) => {
                self.expr(e);
                self.emit(Instr::Pop);
            }
            StmtKind::Assign { target, op, value } => self.assign(target, *op, value),
            StmtKind::Return(v) => {
                match v {
                    Some(e) => {
                        self.expr(e);
                        let ret = self.comp.typed.program.funcs[self.func_idx].ret.clone();
                        self.maybe_widen(&ret, e);
                    }
                    None => {
                        let none = self.comp.intern(Const::None);
                        self.emit(Instr::Const(none));
                    }
                }
                self.emit(Instr::Return);
            }
            StmtKind::Assert { cond, message } => {
                self.expr(cond);
                if let Some(m) = message {
                    self.expr(m);
                }
                self.emit(Instr::Assert { has_msg: message.is_some() });
            }
            StmtKind::If { cond, then, elifs, els } => {
                // Chain of conditional jumps; all arms jump to the end.
                let mut end_jumps = Vec::new();
                self.expr(cond);
                let mut next = self.emit(Instr::JumpIfFalse(0));
                self.block(then);
                end_jumps.push(self.emit(Instr::Jump(0)));
                for (c, b) in elifs {
                    self.patch_jump(next);
                    self.expr(c);
                    next = self.emit(Instr::JumpIfFalse(0));
                    self.block(b);
                    end_jumps.push(self.emit(Instr::Jump(0)));
                }
                self.patch_jump(next);
                if let Some(b) = els {
                    self.block(b);
                }
                for j in end_jumps {
                    self.patch_jump(j);
                }
            }
            StmtKind::While { cond, body } => {
                let top = self.here();
                self.expr(cond);
                let exit = self.emit(Instr::JumpIfFalse(0));
                {
                    let part = self.parts.last_mut().unwrap();
                    let trys = part.open_trys;
                    part.loops.push((Vec::new(), Vec::new(), trys));
                }
                self.block(body);
                let (breaks, continues, _) = self.parts.last_mut().unwrap().loops.pop().unwrap();
                for c in continues {
                    // `continue` in a while loop re-tests the condition.
                    let part = self.parts.last_mut().unwrap();
                    if let Instr::Jump(t) = &mut part.code[c] {
                        *t = top;
                    }
                }
                self.emit(Instr::Jump(top));
                self.patch_jump(exit);
                for b in breaks {
                    self.patch_jump(b);
                }
            }
            StmtKind::For { var, iter, body, .. } => {
                // seq → hidden slot; i → hidden slot; loop with Index.
                self.expr(iter);
                let seq = self.define_hidden();
                self.emit(Instr::StoreLocal(seq));
                let zero = self.comp.intern(Const::Int(0));
                self.emit(Instr::Const(zero));
                let i = self.define_hidden();
                self.emit(Instr::StoreLocal(i));
                let (vd, vs) = self.loop_var_slot(*var);
                let top = self.here();
                self.emit(Instr::LoadLocal(i));
                self.emit(Instr::LoadLocal(seq));
                self.emit(Instr::CallBuiltin(Builtin::Len, 1));
                self.emit(Instr::Bin(BinOp::Lt));
                let exit = self.emit(Instr::JumpIfFalse(0));
                self.emit(Instr::LoadLocal(seq));
                self.emit(Instr::LoadLocal(i));
                self.emit(Instr::Index);
                self.store(vd, vs);
                {
                    let part = self.parts.last_mut().unwrap();
                    let trys = part.open_trys;
                    part.loops.push((Vec::new(), Vec::new(), trys));
                }
                self.block(body);
                let (breaks, continues, _) = self.parts.last_mut().unwrap().loops.pop().unwrap();
                let incr = self.here();
                for c in continues {
                    let part = self.parts.last_mut().unwrap();
                    if let Instr::Jump(t) = &mut part.code[c] {
                        *t = incr;
                    }
                }
                self.emit(Instr::LoadLocal(i));
                let one = self.comp.intern(Const::Int(1));
                self.emit(Instr::Const(one));
                self.emit(Instr::Bin(BinOp::Add));
                self.emit(Instr::StoreLocal(i));
                self.emit(Instr::Jump(top));
                self.patch_jump(exit);
                for b in breaks {
                    self.patch_jump(b);
                }
            }
            StmtKind::Break => {
                self.pop_trys_to_loop_entry();
                let at = self.emit(Instr::Jump(0));
                let part = self.parts.last_mut().unwrap();
                if let Some((breaks, _, _)) = part.loops.last_mut() {
                    breaks.push(at);
                }
            }
            StmtKind::Continue => {
                self.pop_trys_to_loop_entry();
                let at = self.emit(Instr::Jump(0));
                let part = self.parts.last_mut().unwrap();
                if let Some((_, continues, _)) = part.loops.last_mut() {
                    continues.push(at);
                }
            }
            StmtKind::Lock { name, body } => {
                let c = self.comp.intern(Const::Str(name.to_string()));
                self.emit(Instr::EnterLock(c));
                self.block(body);
                self.set_line(s.span.line);
                self.emit(Instr::ExitLock(c));
            }
            StmtKind::Parallel { body } => {
                let thunks = self.child_thunks(body);
                self.set_line(s.span.line);
                self.emit(Instr::Parallel(thunks));
            }
            StmtKind::Background { body } => {
                let thunks = self.child_thunks(body);
                self.set_line(s.span.line);
                self.emit(Instr::Background(thunks));
            }
            StmtKind::Try { body, err_name, handler, .. } => {
                let push_at = self.emit(Instr::TryPush(0));
                self.parts.last_mut().unwrap().open_trys += 1;
                self.block(body);
                self.parts.last_mut().unwrap().open_trys -= 1;
                self.set_line(s.span.line);
                self.emit(Instr::TryPop);
                let skip = self.emit(Instr::Jump(0));
                // Handler entry: the raise mechanism pushes the error
                // message; bind it to the catch variable first.
                let handler_ip = self.here();
                {
                    let part = self.parts.last_mut().unwrap();
                    if let Instr::TryPush(t) = &mut part.code[push_at] {
                        *t = handler_ip;
                    }
                }
                let (d, slot) = self.target_slot(*err_name);
                self.store(d, slot);
                self.block(handler);
                self.patch_jump(skip);
            }
            StmtKind::ParallelFor { var, iter, body, .. } => {
                self.expr(iter);
                let name = format!("parallel-for@{}", s.span.line);
                let var = *var;
                let body = body.clone();
                let t = self.thunk(UnitKind::ParallelForBody, name, 1, |me| {
                    // Slot 0 of the thunk is the private induction variable.
                    me.scopes.last_mut().unwrap().names.insert(var, 0);
                    me.block(&body);
                });
                self.set_line(s.span.line);
                self.emit(Instr::ParallelFor(t));
            }
        }
    }

    /// Emit `TryPop`s for every `try:` opened since the innermost loop's
    /// entry — `break`/`continue` jump out of those bodies structurally.
    fn pop_trys_to_loop_entry(&mut self) {
        let (open, entry) = {
            let part = self.parts.last().unwrap();
            let entry = part.loops.last().map(|(_, _, t)| *t).unwrap_or(0);
            (part.open_trys, entry)
        };
        for _ in entry..open {
            self.emit(Instr::TryPop);
        }
    }

    fn child_thunks(&mut self, body: &Block) -> Vec<u16> {
        let mut out = Vec::with_capacity(body.stmts.len());
        for (i, child) in body.stmts.iter().enumerate() {
            let name = format!("parallel@{}#{i}", child.span.line);
            let child = child.clone();
            let t = self.thunk(UnitKind::ParallelChild, name, 0, |me| {
                me.stmt(&child);
            });
            out.push(t);
        }
        out
    }

    fn assign(&mut self, target: &Target, op: AssignOp, value: &Expr) {
        match target {
            Target::Name { name, .. } => match op.binop() {
                None => {
                    self.expr(value);
                    self.widen_for_var(*name, value);
                    let (d, s) = self.target_slot(*name);
                    self.store(d, s);
                }
                Some(binop) => {
                    let (d, s) = self.target_slot(*name);
                    self.load(d, s);
                    self.expr(value);
                    self.emit(Instr::Bin(binop));
                    self.store(d, s);
                }
            },
            Target::Index { base, index, .. } => match op.binop() {
                None => {
                    self.expr(base);
                    self.expr(index);
                    self.expr(value);
                    self.emit(Instr::IndexStore);
                }
                Some(binop) => {
                    self.expr(base);
                    self.expr(index);
                    self.emit(Instr::Dup2);
                    self.emit(Instr::Index);
                    self.expr(value);
                    self.emit(Instr::Bin(binop));
                    self.emit(Instr::IndexStore);
                }
            },
        }
    }

    /// Emit `Widen` when the expected static type is real but the value
    /// expression is an int.
    fn maybe_widen(&mut self, expected: &Type, value: &Expr) {
        if *expected == Type::Real && self.comp.typed.expr_types.get(&value.id) == Some(&Type::Int)
        {
            self.emit(Instr::Widen);
        }
    }

    fn widen_for_var(&mut self, name: Symbol, value: &Expr) {
        let ty = self.comp.typed.var_types.get(&(self.func_idx, name)).cloned();
        if let Some(ty) = ty {
            self.maybe_widen(&ty, value);
        }
    }

    // ---- expressions ------------------------------------------------------------

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Int(v) => {
                let c = self.comp.intern(Const::Int(*v));
                self.emit(Instr::Const(c));
            }
            ExprKind::Real(v) => {
                let c = self.comp.intern(Const::Real(*v));
                self.emit(Instr::Const(c));
            }
            ExprKind::Bool(v) => {
                let c = self.comp.intern(Const::Bool(*v));
                self.emit(Instr::Const(c));
            }
            ExprKind::None => {
                let c = self.comp.intern(Const::None);
                self.emit(Instr::Const(c));
            }
            ExprKind::Str(s) => {
                let c = self.comp.intern(Const::Str(s.clone()));
                self.emit(Instr::Const(c));
            }
            ExprKind::Var(name) => match self.resolve(*name) {
                Some((d, s)) => self.load(d, s),
                None => {
                    // Unreachable after checking; compile to a slot that
                    // will read as unassigned.
                    let (d, s) = self.define_named(*name);
                    self.load(d, s);
                }
            },
            ExprKind::Unary { op, operand } => {
                self.expr(operand);
                match op {
                    UnOp::Neg => self.emit(Instr::Neg),
                    UnOp::Not => self.emit(Instr::Not),
                };
            }
            ExprKind::Binary { op, lhs, rhs } => match op {
                BinOp::And => {
                    self.expr(lhs);
                    let j = self.emit(Instr::JumpIfFalsePeek(0));
                    self.emit(Instr::Pop);
                    self.expr(rhs);
                    self.patch_jump(j);
                }
                BinOp::Or => {
                    self.expr(lhs);
                    let j = self.emit(Instr::JumpIfTruePeek(0));
                    self.emit(Instr::Pop);
                    self.expr(rhs);
                    self.patch_jump(j);
                }
                _ => {
                    self.expr(lhs);
                    self.expr(rhs);
                    self.emit(Instr::Bin(*op));
                }
            },
            ExprKind::Call { callee, args } => {
                match self.comp.typed.callees.get(&e.id).copied() {
                    Some(Callee::User(idx)) => {
                        let params: Vec<Type> = self.comp.typed.program.funcs[idx]
                            .params
                            .iter()
                            .map(|p| p.ty.clone())
                            .collect();
                        for (arg, pt) in args.iter().zip(&params) {
                            self.expr(arg);
                            self.maybe_widen(pt, arg);
                        }
                        self.emit(Instr::Call(idx as u16, args.len() as u8));
                    }
                    Some(Callee::Builtin(b)) => {
                        for arg in args {
                            self.expr(arg);
                        }
                        self.emit(Instr::CallBuiltin(b, args.len() as u8));
                    }
                    None => {
                        // Unchecked AST fallback: user functions shadow builtins.
                        if let Some(idx) = self.comp.typed.program.func_index(callee.as_str()) {
                            for arg in args {
                                self.expr(arg);
                            }
                            self.emit(Instr::Call(idx as u16, args.len() as u8));
                        } else if let Some(b) = Builtin::lookup(callee.as_str()) {
                            for arg in args {
                                self.expr(arg);
                            }
                            self.emit(Instr::CallBuiltin(b, args.len() as u8));
                        } else {
                            // Produce a deterministic runtime error.
                            let c = self.comp.intern(Const::Bool(false));
                            self.emit(Instr::Const(c));
                            self.emit(Instr::Assert { has_msg: false });
                            let n = self.comp.intern(Const::None);
                            self.emit(Instr::Const(n));
                        }
                    }
                }
            }
            ExprKind::Index { base, index } => {
                self.expr(base);
                self.expr(index);
                self.emit(Instr::Index);
            }
            ExprKind::Array(items) => {
                for item in items {
                    self.expr(item);
                }
                self.emit(Instr::MakeArray(items.len() as u16));
            }
            ExprKind::Range { lo, hi } => {
                self.expr(lo);
                self.expr(hi);
                self.emit(Instr::MakeRange);
            }
            ExprKind::Tuple(items) => {
                for item in items {
                    self.expr(item);
                }
                self.emit(Instr::MakeTuple(items.len() as u16));
            }
            ExprKind::Dict(pairs) => {
                for (k, v) in pairs {
                    self.expr(k);
                    self.expr(v);
                }
                self.emit(Instr::MakeDict(pairs.len() as u16));
            }
        }
    }
}
