//! E10 — the skewed-loop scheduler benchmark.
//!
//! A `parallel for` whose item `i` costs ~i² inner iterations is the
//! worst case for static contiguous chunking: the last chunk holds the
//! heaviest items and the whole loop serializes on it. The work-stealing
//! pool (interpreter) and the deterministic dynamic-chunking model (VM)
//! balance the tail instead.
//!
//! The headline rows are virtual-time (deterministic on any host, so CI
//! can assert the dynamic/static improvement); the wall-clock group runs
//! the real-thread interpreter with and without the pool for completeness
//! (only meaningful on a multi-core host).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tetra::{programs, BufferConsole, VmConfig};
use tetra_bench::compile;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const ITEMS: i64 = 64;

fn run_virtual(bytecode: &tetra::vm::CompiledProgram, workers: usize, dynamic: bool) -> u64 {
    let console = BufferConsole::new();
    let cfg = VmConfig { workers, dynamic_chunking: dynamic, ..VmConfig::default() };
    tetra::vm::run(bytecode, cfg, console).expect("skewed sim").virtual_elapsed
}

fn print_tables(c: &mut Criterion) {
    let program = compile(&programs::skewed(ITEMS));
    let bytecode = program.bytecode();
    eprintln!();
    eprintln!("E10 — skewed loop ({ITEMS} items, item i costs ~i^2): virtual time");
    eprintln!(
        "{:>8} {:>16} {:>16} {:>12}",
        "threads", "pool (dynamic)", "static chunks", "improvement"
    );
    for t in THREADS {
        let dynamic = run_virtual(&bytecode, t, true);
        let fixed = run_virtual(&bytecode, t, false);
        eprintln!(
            "{:>8} {:>16} {:>16} {:>11.2}x",
            t,
            dynamic,
            fixed,
            fixed as f64 / dynamic as f64
        );
        // Deterministic rows for the CI smoke: the skewed loop must beat
        // static chunking at T=4 (see .github/workflows/ci.yml).
        c.report_value(
            "e10_sched_virtual",
            "virtual_elapsed_units",
            Some(&format!("pool-{t}")),
            dynamic,
        );
        c.report_value(
            "e10_sched_virtual",
            "virtual_elapsed_units",
            Some(&format!("static-{t}")),
            fixed,
        );
    }
    eprintln!();
}

fn bench_sim_wallclock(c: &mut Criterion) {
    print_tables(c);
    let program = compile(&programs::skewed(ITEMS));
    let bytecode = program.bytecode();
    let mut group = c.benchmark_group("e10_sched_sim");
    group.sample_size(10);
    for (label, dynamic) in [("pool", true), ("static", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &dynamic, |b, &d| {
            b.iter(|| {
                let console = BufferConsole::new();
                let cfg = VmConfig { workers: 4, dynamic_chunking: d, ..VmConfig::default() };
                tetra::vm::run(&bytecode, cfg, console).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_interp_wallclock(c: &mut Criterion) {
    let program = compile(&programs::skewed(48));
    let mut group = c.benchmark_group("e10_sched_interp_wallclock");
    group.sample_size(10);
    for (label, use_pool) in [("pool", true), ("no-pool", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &use_pool, |b, &up| {
            b.iter(|| {
                let console = BufferConsole::new();
                let cfg = tetra::InterpConfig {
                    worker_threads: 4,
                    use_pool: up,
                    ..tetra::InterpConfig::default()
                };
                program.run_with(cfg, console).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim_wallclock, bench_interp_wallclock);
criterion_main!(benches);
