//! E7 — construct-overhead ablations behind §IV's remark that "a lot of
//! effort was put into ensuring that the interpreter actually provides
//! speedup ... more can be done to improve the efficiency of the
//! interpreter":
//!
//! * spawn/join cost of `parallel:` blocks (per thread);
//! * lock acquisition cost, contended vs uncontended;
//! * tree-walking interpreter vs bytecode VM on identical sequential code
//!   (the future-work compiler's payoff);
//! * `parallel for` chunking vs one-thread-per-statement spawning.

use criterion::{criterion_group, criterion_main, Criterion};
use tetra::{BufferConsole, InterpConfig, Tetra, VmConfig};
use tetra_bench::compile;

fn run_interp(p: &Tetra) {
    let console = BufferConsole::new();
    p.run_with(InterpConfig { worker_threads: 4, ..InterpConfig::default() }, console).unwrap();
}

fn bench_spawn_join(c: &mut Criterion) {
    // N sequential parallel blocks of one trivial statement each: the
    // measured time is dominated by thread create + join.
    let spawn =
        compile("def main():\n    for i in [1 ... 20]:\n        parallel:\n            pass\n");
    let no_spawn = compile("def main():\n    for i in [1 ... 20]:\n        pass\n");
    let mut group = c.benchmark_group("e7_spawn_join");
    group.sample_size(10);
    group.bench_function("20_parallel_blocks", |b| b.iter(|| run_interp(&spawn)));
    group.bench_function("20_plain_iterations", |b| b.iter(|| run_interp(&no_spawn)));
    group.finish();
}

fn bench_locks(c: &mut Criterion) {
    let uncontended = compile(
        "def main():\n    x = 0\n    for i in [1 ... 500]:\n        lock m:\n            x += 1\n    print(x)\n",
    );
    let contended = compile(
        "def main():\n    x = 0\n    parallel for i in [1 ... 500]:\n        lock m:\n            x += 1\n    print(x)\n",
    );
    let unlocked = compile(
        "def main():\n    x = 0\n    for i in [1 ... 500]:\n        x += 1\n    print(x)\n",
    );
    let mut group = c.benchmark_group("e7_locks");
    group.sample_size(10);
    group.bench_function("sequential_unlocked", |b| b.iter(|| run_interp(&unlocked)));
    group.bench_function("sequential_locked", |b| b.iter(|| run_interp(&uncontended)));
    group.bench_function("parallel_contended", |b| b.iter(|| run_interp(&contended)));
    group.finish();
}

fn bench_interp_vs_vm(c: &mut Criterion) {
    // Same sequential workload under both engines. The bytecode VM pays
    // for its determinism: every value lives behind shared GC-rootable
    // tables and the scheduler accounts virtual time per instruction, so
    // the instrumented VM runs ~2x slower than the tree-walker in wall
    // clock while providing reproducible schedules and virtual-time
    // speedup measurement. (A production native compiler — the paper's
    // §VI plan — would drop the instrumentation.)
    let src = "\
def work() int:
    total = 0
    i = 0
    while i < 20000:
        total += i % 7 - i % 3
        i += 1
    return total

def main():
    print(work())
";
    let program = compile(src);
    let bytecode = program.bytecode();
    let mut group = c.benchmark_group("e7_engine_comparison");
    group.sample_size(10);
    group.bench_function("tree_walking_interpreter", |b| {
        b.iter(|| {
            let console = BufferConsole::new();
            program.run_with(InterpConfig::default(), console).unwrap()
        })
    });
    group.bench_function("bytecode_vm", |b| {
        b.iter(|| {
            let console = BufferConsole::new();
            tetra::vm::run(&bytecode, VmConfig { workers: 1, ..VmConfig::default() }, console)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_parallel_for_chunking(c: &mut Criterion) {
    // `parallel for` over 64 items uses min(workers, items) threads with
    // chunks; the naive alternative (a parallel block per item) pays 64
    // spawns. Both computed results are identical.
    let chunked = compile(
        "def main():\n    out = fill(64, 0)\n    parallel for i in [0 ... 63]:\n        out[i] = i * i\n    print(out[63])\n",
    );
    let mut per_item = String::from("def main():\n    out = fill(64, 0)\n    parallel:\n");
    for i in 0..64 {
        per_item.push_str(&format!("        out[{i}] = {i} * {i}\n"));
    }
    per_item.push_str("    print(out[63])\n");
    let per_item = compile(&per_item);
    let mut group = c.benchmark_group("e7_parallel_for_chunking");
    group.sample_size(10);
    group.bench_function("chunked_parallel_for", |b| b.iter(|| run_interp(&chunked)));
    group.bench_function("one_thread_per_item", |b| b.iter(|| run_interp(&per_item)));
    group.finish();
}

fn bench_gc_pressure(c: &mut Criterion) {
    // Allocation-heavy vs allocation-free loops: quantifies the GC tax.
    let allocating = compile(
        "def main():\n    s = \"\"\n    for i in [1 ... 300]:\n        s = str(i % 10)\n    print(s)\n",
    );
    let scalar = compile(
        "def main():\n    x = 0\n    for i in [1 ... 300]:\n        x = i % 10\n    print(x)\n",
    );
    let mut group = c.benchmark_group("e7_gc_pressure");
    group.sample_size(10);
    group.bench_function("allocating_loop", |b| b.iter(|| run_interp(&allocating)));
    group.bench_function("scalar_loop", |b| b.iter(|| run_interp(&scalar)));
    group.finish();
}

fn bench_gc_stress_ablation(c: &mut Criterion) {
    // DESIGN.md's GC-knob ablation: the same allocation-heavy program with
    // the normal adaptive threshold vs collect-on-every-allocation. The
    // gap is the total cost of stop-the-world collections.
    let src = "\
def main():
    parts = fill(0, \"\")
    for i in [1 ... 120]:
        append(parts, str(i))
    print(len(join(parts, \",\")))
";
    let program = compile(src);
    let mut group = c.benchmark_group("e7_gc_stress_ablation");
    group.sample_size(10);
    group.bench_function("adaptive_threshold", |b| {
        b.iter(|| {
            let console = BufferConsole::new();
            program.run_with(InterpConfig::default(), console).unwrap()
        })
    });
    group.bench_function("collect_every_alloc", |b| {
        b.iter(|| {
            let console = BufferConsole::new();
            let cfg = InterpConfig {
                gc: tetra::runtime::HeapConfig { stress: true, ..Default::default() },
                ..InterpConfig::default()
            };
            program.run_with(cfg, console).unwrap()
        })
    });
    group.finish();
}

fn bench_deadlock_detection_overhead(c: &mut Criterion) {
    // Detection walks the wait-for graph only on the contended path; this
    // measures that the knob is effectively free when enabled.
    let src = "\
def main():
    x = 0
    parallel for i in [1 ... 300]:
        lock m:
            x += 1
    print(x)
";
    let program = compile(src);
    let mut group = c.benchmark_group("e7_deadlock_detection");
    group.sample_size(10);
    for detect in [true, false] {
        let label = if detect { "detection_on" } else { "detection_off" };
        group.bench_function(label, |b| {
            b.iter(|| {
                let console = BufferConsole::new();
                let cfg = InterpConfig {
                    worker_threads: 4,
                    detect_deadlocks: detect,
                    ..InterpConfig::default()
                };
                program.run_with(cfg, console).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_spawn_join,
    bench_locks,
    bench_interp_vs_vm,
    bench_parallel_for_chunking,
    bench_gc_pressure,
    bench_gc_stress_ablation,
    bench_deadlock_detection_overhead
);
criterion_main!(benches);
