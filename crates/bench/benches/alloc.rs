//! E9 — allocation-heavy `parallel for` microbenchmarks for the sharded
//! GC heap (DESIGN.md, "GC design").
//!
//! Every loop body below allocates — strings via concatenation, arrays via
//! literals and `append` — so the benchmark measures the allocator itself,
//! not the work between allocations. Before the sharded heap, each
//! allocation pushed onto one global `Mutex<Vec<_>>`, so at T=4 the
//! workers serialized on that lock; with per-mutator segments the hot
//! path touches only thread-private memory plus a few relaxed atomics.
//!
//! * `array_churn`: each iteration builds a short-lived array and appends
//!   to it (1 and 4 threads);
//! * `string_churn`: each iteration concatenates strings, allocating a
//!   fresh one per `+` (1 and 4 threads);
//! * `mixed_retain`: workers append every eighth array into a shared
//!   accumulator so the sweep always has live objects to skip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tetra::{BufferConsole, HeapConfig, InterpConfig, Tetra};
use tetra_bench::compile;

fn run_threads(p: &Tetra, threads: usize) {
    // A small threshold keeps the collector honest: the benchmark exercises
    // allocation *and* the per-segment sweep, not just free-list pops.
    let console = BufferConsole::new();
    p.run_with(
        InterpConfig {
            worker_threads: threads,
            gc: HeapConfig {
                initial_threshold: 1 << 18,
                min_threshold: 1 << 18,
                ..HeapConfig::default()
            },
            ..InterpConfig::default()
        },
        console,
    )
    .unwrap();
}

fn bench_array_churn(c: &mut Criterion) {
    let p = compile(
        "def main():\n    parallel for i in [1 ... 8000]:\n        a = [i, i + 1, i + 2]\n        append(a, i * 2)\n        append(a, i * 3)\n",
    );
    let mut group = c.benchmark_group("e9_alloc_array_churn");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| run_threads(&p, t))
        });
    }
    group.finish();
}

fn bench_string_churn(c: &mut Criterion) {
    let p = compile(
        "def main():\n    parallel for i in [1 ... 6000]:\n        s = \"item-\" + str(i)\n        s = s + \"-suffix\"\n        s = s + str(i + 1)\n",
    );
    let mut group = c.benchmark_group("e9_alloc_string_churn");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| run_threads(&p, t))
        });
    }
    group.finish();
}

fn bench_mixed_retain(c: &mut Criterion) {
    // `keep` survives every collection, so sweeps must walk live slots and
    // the census (under --heap-profile) stays non-trivial.
    let p = compile(
        "def main():\n    keep = [0]\n    parallel for i in [1 ... 6000]:\n        t = [i, i * 2]\n        if i % 8 == 0:\n            lock keep:\n                append(keep, i)\n    print(len(keep) > 0)\n",
    );
    let mut group = c.benchmark_group("e9_alloc_mixed_retain");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| run_threads(&p, t))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_array_churn, bench_string_churn, bench_mixed_retain);
criterion_main!(benches);
