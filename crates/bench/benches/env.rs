//! E8 — environment-access microbenchmarks for the resolver's
//! slot-addressed fast path (DESIGN.md, "Name resolution and slot
//! layouts").
//!
//! Before the resolver, every identifier read and write in the
//! tree-walking interpreter hashed the name and walked the frame chain's
//! `HashMap`s; now a resolved identifier is one `RwLock` acquisition plus
//! a vector index. These loops make variable access the entire workload:
//!
//! * a tight read/write loop over function-frame locals (1 thread);
//! * a `parallel for` body writing worker-private names (1 and 4 threads);
//! * a shadowed-access loop: workers reading names from the enclosing
//!   shared frame while rebinding their own (1 and 4 threads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tetra::{BufferConsole, InterpConfig, Tetra};
use tetra_bench::compile;

fn run_threads(p: &Tetra, threads: usize) {
    let console = BufferConsole::new();
    p.run_with(InterpConfig { worker_threads: threads, ..InterpConfig::default() }, console)
        .unwrap();
}

fn bench_tight_read_write(c: &mut Criterion) {
    // Locals only: every access resolves to (up 0, slot) in the single
    // function frame.
    let p = compile(
        "def main():\n    x = 0\n    i = 0\n    while i < 30000:\n        x = x + i\n        i = i + 1\n    print(x)\n",
    );
    let mut group = c.benchmark_group("e8_env_access");
    group.sample_size(10);
    group.bench_function("tight_read_write_loop", |b| b.iter(|| run_threads(&p, 1)));
    group.finish();
}

fn bench_worker_private(c: &mut Criterion) {
    // Worker-private writes: the induction variable and a fresh name both
    // live in the worker's layout-backed private frame.
    let p = compile(
        "def main():\n    parallel for i in [1 ... 20000]:\n        t = 0\n        t = t + i\n        t = t + 1\n",
    );
    let mut group = c.benchmark_group("e8_env_worker_private");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| run_threads(&p, t))
        });
    }
    group.finish();
}

fn bench_shadowed_access(c: &mut Criterion) {
    // Shadowed access: workers read `base`/`scale` through the frame chain
    // (resolved to the enclosing shared frame) while rebinding private `t`.
    let p = compile(
        "def main():\n    base = 7\n    scale = 3\n    parallel for i in [1 ... 20000]:\n        t = base + i\n        t = t + scale\n        t = t + base\n",
    );
    let mut group = c.benchmark_group("e8_env_shadowed");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| run_threads(&p, t))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tight_read_write, bench_worker_private, bench_shadowed_access);
criterion_main!(benches);
