//! E5 & E6 — the paper's §IV speedup evaluation.
//!
//! "To test the speedup we used two Tetra programs: one which calculates
//! the first million primes, and one which solves an instance of the
//! travelling salesman problem. Each of these programs achieves
//! approximately 5X speedup when run on 8 cores which is a 62.5%
//! efficiency rate."
//!
//! This target prints both virtual-time speedup tables (the reproduction
//! of the paper's numbers — deterministic on any host) and benchmarks the
//! simulator's wall-clock throughput per thread count with Criterion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tetra::experiments::{render_table, simulated_speedup};
use tetra::{programs, BufferConsole, VmConfig};
use tetra_bench::compile;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn print_tables(c: &mut Criterion) {
    let rows = simulated_speedup(&programs::primes(20_000, 64), &THREADS).expect("primes sweep");
    eprintln!();
    eprint!(
        "{}",
        render_table(
            "E5 — primes workload, virtual time (paper: ~5x at T=8, 62.5% efficiency)",
            &rows
        )
    );
    // Record the deterministic virtual-time results in the JSON so CI can
    // smoke-check the speedup curve (e.g. >1.5x at T=4) without rerunning.
    for r in &rows {
        c.report_value(
            "e5_primes_virtual",
            "virtual_elapsed_units",
            Some(&r.threads.to_string()),
            r.elapsed,
        );
    }
    let rows = simulated_speedup(&programs::tsp(9), &THREADS).expect("tsp sweep");
    eprint!(
        "{}",
        render_table("E6 — travelling salesman workload, virtual time (paper: ~5x at T=8)", &rows)
    );
    for r in &rows {
        c.report_value(
            "e6_tsp_virtual",
            "virtual_elapsed_units",
            Some(&r.threads.to_string()),
            r.elapsed,
        );
    }
    eprintln!();
}

fn bench_primes(c: &mut Criterion) {
    print_tables(c);
    let program = compile(&programs::primes(4_000, 64));
    let bytecode = program.bytecode();
    let mut group = c.benchmark_group("e5_primes_sim");
    group.sample_size(10);
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let console = BufferConsole::new();
                let cfg = VmConfig { workers: t, ..VmConfig::default() };
                tetra::vm::run(&bytecode, cfg, console).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_tsp(c: &mut Criterion) {
    let program = compile(&programs::tsp(8));
    let bytecode = program.bytecode();
    let mut group = c.benchmark_group("e6_tsp_sim");
    group.sample_size(10);
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let console = BufferConsole::new();
                let cfg = VmConfig { workers: t, ..VmConfig::default() };
                tetra::vm::run(&bytecode, cfg, console).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_interp_wallclock(c: &mut Criterion) {
    // Wall-clock speedup of the real-thread interpreter: only meaningful
    // on a multi-core host; included so the harness is complete.
    let program = compile(&programs::primes(3_000, 16));
    let mut group = c.benchmark_group("e5_primes_interp_wallclock");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let console = BufferConsole::new();
                let cfg =
                    tetra::InterpConfig { worker_threads: t, ..tetra::InterpConfig::default() };
                program.run_with(cfg, console).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_primes, bench_tsp, bench_interp_wallclock);
criterion_main!(benches);
