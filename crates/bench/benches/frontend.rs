//! Supporting benchmark: front-end throughput (lex → parse → check →
//! bytecode) on a generated many-function program. Not a paper table, but
//! the IDE re-runs this pipeline on every edit, so it must stay fast.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tetra_bench::large_program;

fn bench_frontend(c: &mut Criterion) {
    let src = large_program(120);
    let bytes = src.len() as u64;
    let mut group = c.benchmark_group("frontend");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("lex", |b| {
        b.iter(|| tetra::lexer::tokenize(&src).unwrap());
    });
    group.bench_function("lex_parse", |b| {
        b.iter(|| tetra::parser::parse(&src).unwrap());
    });
    group.bench_function("lex_parse_check", |b| {
        b.iter(|| tetra::types::check(tetra::parser::parse(&src).unwrap()).unwrap());
    });
    let typed = tetra::types::check(tetra::parser::parse(&src).unwrap()).unwrap();
    group.bench_function("bytecode_compile", |b| {
        b.iter(|| tetra::vm::compile(&typed));
    });
    group.finish();
}

criterion_group!(benches, bench_frontend);
criterion_main!(benches);
