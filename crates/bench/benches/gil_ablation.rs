//! E8 — the GIL ablation behind the paper's motivation (§I): "in a
//! multi-threaded Python program, only one thread can actually run at a
//! time. ... one cannot achieve speedup with a truly parallel program."
//!
//! Prints the side-by-side virtual-time tables (Tetra rising, GIL flat)
//! and benchmarks both modes with Criterion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tetra::experiments::{render_table, simulated_speedup, simulated_speedup_with};
use tetra::vm::CostModel;
use tetra::{programs, BufferConsole, VmConfig};
use tetra_bench::compile;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn print_tables() {
    let src = programs::primes(10_000, 64);
    let tetra_rows = simulated_speedup(&src, &THREADS).expect("tetra sweep");
    let gil_rows =
        simulated_speedup_with(&src, &THREADS, CostModel { gil: true, ..CostModel::default() })
            .expect("gil sweep");
    eprintln!();
    eprint!("{}", render_table("E8a — primes on Tetra (no GIL): speedup rises", &tetra_rows));
    eprint!(
        "{}",
        render_table("E8b — the same primes under a simulated GIL: flat at ~1x", &gil_rows)
    );
    eprintln!();
}

fn bench_gil(c: &mut Criterion) {
    print_tables();
    let program = compile(&programs::primes(3_000, 32));
    let bytecode = program.bytecode();
    let mut group = c.benchmark_group("e8_gil_ablation");
    group.sample_size(10);
    for gil in [false, true] {
        let label = if gil { "gil" } else { "tetra" };
        group.bench_with_input(BenchmarkId::new(label, 8), &gil, |b, &gil| {
            b.iter(|| {
                let console = BufferConsole::new();
                let cfg = VmConfig {
                    workers: 8,
                    cost: CostModel { gil, ..CostModel::default() },
                    ..VmConfig::default()
                };
                tetra::vm::run(&bytecode, cfg, console).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gil);
criterion_main!(benches);
