//! Front-end robustness: the lexer and parser must never panic, whatever
//! bytes a student throws at them — every failure is a rendered
//! `Diagnostic`. This is the "compiler never crashes on my homework"
//! guarantee.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary unicode text: tokenize returns Ok or Err, never panics.
    #[test]
    fn lexer_never_panics(src in "\\PC{0,200}") {
        let _ = tetra_lexer::tokenize(&src);
    }

    /// Arbitrary text through the whole parser.
    #[test]
    fn parser_never_panics(src in "\\PC{0,200}") {
        let _ = tetra_parser::parse(&src);
    }

    /// Structured noise: plausible program fragments glued together in
    /// random order still never panic, and diagnostics render cleanly.
    #[test]
    fn parser_handles_shuffled_fragments(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..20)
    ) {
        let src: String = picks.iter().map(|i| FRAGMENTS[*i]).collect();
        if let Err(d) = tetra_parser::parse(&src) {
            // Rendering against the offending source must not panic either.
            let rendered = d.render(&src);
            prop_assert!(!rendered.is_empty());
        }
    }

    /// Random indentation applied to a fixed statement sequence: layout
    /// handling (INDENT/DEDENT synthesis) never panics and errors point at
    /// real lines.
    #[test]
    fn random_indentation_is_handled(depths in prop::collection::vec(0usize..6, 1..12)) {
        let mut src = String::from("def main():\n");
        for (i, d) in depths.iter().enumerate() {
            src.push_str(&"    ".repeat(d + 1));
            src.push_str(&format!("x{i} = {i}\n"));
        }
        match tetra_parser::parse(&src) {
            Ok(_) => {}
            Err(d) => {
                prop_assert!(d.span.line as usize <= depths.len() + 1, "{d}");
            }
        }
    }
}

const FRAGMENTS: &[&str] = &[
    "def main():\n",
    "    x = 1\n",
    "    parallel:\n",
    "        y = 2\n",
    "    lock m:\n",
    "        pass\n",
    "if x:\n",
    "else:\n",
    "    return 1 +\n",
    "))(\n",
    "\"unterminated\n",
    "    [1 ... \n",
    "catch e:\n",
    "try:\n",
    "\t\tweird tabs\n",
    "@#$%\n",
    "x == = 5\n",
    "    1...2...3\n",
];

#[test]
fn deeply_nested_expressions_do_not_overflow_the_parser() {
    // 40 nested parens (far beyond plausible student code) parse fine;
    // the 48-level cap protects the native stack above that.
    let mut src = String::from("def main():\n    x = ");
    src.push_str(&"(".repeat(40));
    src.push('1');
    src.push_str(&")".repeat(40));
    src.push('\n');
    let parsed = tetra_parser::parse(&src);
    assert!(parsed.is_ok(), "{parsed:?}");
}

#[test]
fn deeply_nested_blocks_hit_the_limit_not_the_stack() {
    // 150 nested ifs exceed the 64-level block limit: a clean diagnostic,
    // never a native stack overflow.
    let mut src = String::from("def main():\n");
    for depth in 0..150 {
        src.push_str(&"    ".repeat(depth + 1));
        src.push_str("if true:\n");
    }
    src.push_str(&"    ".repeat(151));
    src.push_str("pass\n");
    let err = tetra_parser::parse(&src).unwrap_err();
    assert!(err.message.contains("nested more than"), "{err}");

    // 40 deep is comfortably inside the limit.
    let mut src = String::from("def main():\n");
    for depth in 0..40 {
        src.push_str(&"    ".repeat(depth + 1));
        src.push_str("if true:\n");
    }
    src.push_str(&"    ".repeat(41));
    src.push_str("pass\n");
    assert!(tetra_parser::parse(&src).is_ok());
}

#[test]
fn deeply_nested_expressions_hit_the_limit_not_the_stack() {
    let mut src = String::from("def main():\n    x = ");
    src.push_str(&"(".repeat(2000));
    src.push('1');
    src.push_str(&")".repeat(2000));
    src.push('\n');
    let err = tetra_parser::parse(&src).unwrap_err();
    assert!(err.message.contains("nested more than"), "{err}");
    // Very long unary chains are also capped cleanly.
    let src = format!("def main():\n    x = {}1\n", "-".repeat(3000));
    let err = tetra_parser::parse(&src).unwrap_err();
    assert!(err.message.contains("nested more than"), "{err}");
}

#[test]
fn pathological_but_valid_inputs() {
    // A very long single line.
    let long_sum = (0..2000).map(|i| i.to_string()).collect::<Vec<_>>().join(" + ");
    let src = format!("def main():\n    x = {long_sum}\n    print(x)\n");
    assert!(tetra_parser::parse(&src).is_ok());
    // Many tiny functions.
    let mut src = String::new();
    for i in 0..500 {
        src.push_str(&format!("def f{i}():\n    pass\n"));
    }
    src.push_str("def main():\n    pass\n");
    assert!(tetra_parser::parse(&src).is_ok());
}
