//! The recursive-descent parser core: token cursor, declarations and
//! statements. Expression parsing lives in [`crate::exprs`].

use tetra_ast::*;
use tetra_intern::Symbol;
use tetra_lexer::{Diagnostic, Span, Stage, Token, TokenKind};

/// Parse a complete Tetra source file into a [`Program`].
pub fn parse(source: &str) -> Result<Program, Diagnostic> {
    let tokens = tetra_lexer::tokenize(source)?;
    Parser::new(tokens).program()
}

/// Maximum block nesting (a student construct 64 deep is a bug, and the
/// recursive-descent parser must not overflow the native stack).
const MAX_BLOCK_DEPTH: u32 = 64;

pub(crate) struct Parser {
    toks: Vec<Token>,
    pos: usize,
    next_id: u32,
    block_depth: u32,
    pub(crate) expr_depth: u32,
}

impl Parser {
    pub(crate) fn new(toks: Vec<Token>) -> Self {
        Parser { toks, pos: 0, next_id: 0, block_depth: 0, expr_depth: 0 }
    }

    // ---- token cursor -----------------------------------------------------

    pub(crate) fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    pub(crate) fn peek_span(&self) -> Span {
        self.toks[self.pos].span
    }

    pub(crate) fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    pub(crate) fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    pub(crate) fn expect(&mut self, kind: &TokenKind) -> Result<Token, Diagnostic> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    pub(crate) fn error(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::new(Stage::Parse, msg, self.peek_span())
    }

    pub(crate) fn fresh(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    pub(crate) fn expect_ident(&mut self, what: &str) -> Result<(Symbol, Span), Diagnostic> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok((name, t.span))
            }
            other => Err(self.error(format!("expected {what}, found {}", other.describe()))),
        }
    }

    // ---- program & declarations -------------------------------------------

    pub(crate) fn program(mut self) -> Result<Program, Diagnostic> {
        let mut funcs: Vec<FuncDef> = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Newline => {
                    self.bump();
                }
                TokenKind::Def => {
                    let f = self.func_def()?;
                    if let Some(prev) = funcs.iter().find(|p| p.name == f.name) {
                        return Err(Diagnostic::new(
                            Stage::Parse,
                            format!("function `{}` is defined more than once", f.name),
                            f.span,
                        )
                        .with_help(format!("the first definition is at line {}", prev.span.line)));
                    }
                    funcs.push(f);
                }
                other => return Err(self
                    .error(format!("expected a function definition, found {}", other.describe()))
                    .with_help(
                        "Tetra programs are lists of `def` functions; execution starts at main()",
                    )),
            }
        }
        Ok(Program { funcs, node_count: self.next_id })
    }

    fn func_def(&mut self) -> Result<FuncDef, Diagnostic> {
        let def_tok = self.expect(&TokenKind::Def)?;
        let (name, name_span) = self.expect_ident("a function name")?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let (pname, pspan) = self.expect_ident("a parameter name")?;
                let ty = self.parse_type().map_err(|d| {
                    d.with_help("parameters need declared types, e.g. `def f(x int, v [real]):`")
                })?;
                let id = self.fresh();
                if params.iter().any(|p: &Param| p.name == pname) {
                    return Err(Diagnostic::new(
                        Stage::Parse,
                        format!("duplicate parameter name `{pname}`"),
                        pspan,
                    ));
                }
                params.push(Param { name: pname, ty, span: pspan, id });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        // Optional return type before the colon.
        let ret = if self.at(&TokenKind::Colon) { Type::None } else { self.parse_type()? };
        self.expect(&TokenKind::Colon)?;
        let body = self.block()?;
        let id = self.fresh();
        Ok(FuncDef { name, params, ret, body, span: def_tok.span.to(name_span), id })
    }

    /// Parse a type annotation: `int`, `real`, `string`, `bool`, `none`,
    /// `[T]`, `{K: V}` or `(T1, T2, ...)`.
    pub(crate) fn parse_type(&mut self) -> Result<Type, Diagnostic> {
        match self.peek().clone() {
            TokenKind::TyInt => {
                self.bump();
                Ok(Type::Int)
            }
            TokenKind::TyReal => {
                self.bump();
                Ok(Type::Real)
            }
            TokenKind::TyString => {
                self.bump();
                Ok(Type::Str)
            }
            TokenKind::TyBool => {
                self.bump();
                Ok(Type::Bool)
            }
            TokenKind::None => {
                self.bump();
                Ok(Type::None)
            }
            TokenKind::LBracket => {
                self.bump();
                let elem = self.parse_type()?;
                self.expect(&TokenKind::RBracket)?;
                Ok(Type::array(elem))
            }
            TokenKind::LBrace => {
                self.bump();
                let key = self.parse_type()?;
                self.expect(&TokenKind::Colon)?;
                let value = self.parse_type()?;
                self.expect(&TokenKind::RBrace)?;
                Ok(Type::dict(key, value))
            }
            TokenKind::LParen => {
                self.bump();
                let mut parts = vec![self.parse_type()?];
                while self.eat(&TokenKind::Comma) {
                    parts.push(self.parse_type()?);
                }
                self.expect(&TokenKind::RParen)?;
                if parts.len() < 2 {
                    return Err(self
                        .error("a tuple type needs at least two element types")
                        .with_help("write the element type directly instead of `(T)`"));
                }
                Ok(Type::Tuple(parts))
            }
            other => Err(self.error(format!("expected a type, found {}", other.describe()))),
        }
    }

    // ---- blocks & statements ----------------------------------------------

    /// `NEWLINE INDENT stmt+ DEDENT`
    pub(crate) fn block(&mut self) -> Result<Block, Diagnostic> {
        if self.block_depth >= MAX_BLOCK_DEPTH {
            return Err(self
                .error(format!("blocks are nested more than {MAX_BLOCK_DEPTH} levels deep"))
                .with_help("split this code into functions"));
        }
        self.block_depth += 1;
        let result = self.block_inner();
        self.block_depth -= 1;
        result
    }

    fn block_inner(&mut self) -> Result<Block, Diagnostic> {
        self.expect(&TokenKind::Newline)?;
        if !self.at(&TokenKind::Indent) {
            return Err(self
                .error("expected an indented block")
                .with_help("the body of a `:` statement must be indented"));
        }
        self.bump();
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::Dedent) && !self.at(&TokenKind::Eof) {
            if self.eat(&TokenKind::Newline) {
                continue;
            }
            stmts.push(self.stmt()?);
        }
        self.eat(&TokenKind::Dedent);
        Ok(Block::new(stmts))
    }

    pub(crate) fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::If => self.if_stmt(),
            TokenKind::While => {
                self.bump();
                let cond = self.expr()?;
                self.expect(&TokenKind::Colon)?;
                let body = self.block()?;
                let id = self.fresh();
                Ok(Stmt { kind: StmtKind::While { cond, body }, span, id })
            }
            TokenKind::For => {
                self.bump();
                let (var, iter, body) = self.for_tail()?;
                let var_id = self.fresh();
                let id = self.fresh();
                Ok(Stmt { kind: StmtKind::For { var, var_id, iter, body }, span, id })
            }
            TokenKind::Parallel => {
                self.bump();
                if self.eat(&TokenKind::For) {
                    let (var, iter, body) = self.for_tail()?;
                    let var_id = self.fresh();
                    let id = self.fresh();
                    Ok(Stmt { kind: StmtKind::ParallelFor { var, var_id, iter, body }, span, id })
                } else {
                    self.expect(&TokenKind::Colon)?;
                    let body = self.block()?;
                    let id = self.fresh();
                    Ok(Stmt { kind: StmtKind::Parallel { body }, span, id })
                }
            }
            TokenKind::Background => {
                self.bump();
                self.expect(&TokenKind::Colon)?;
                let body = self.block()?;
                let id = self.fresh();
                Ok(Stmt { kind: StmtKind::Background { body }, span, id })
            }
            TokenKind::Lock => {
                self.bump();
                // Lock names live in their own namespace but lex as
                // identifiers (or keywords shadowing identifiers are not
                // allowed — an identifier is required).
                let (name, _) = self.expect_ident("a lock name")?;
                self.expect(&TokenKind::Colon)?;
                let body = self.block()?;
                let id = self.fresh();
                Ok(Stmt { kind: StmtKind::Lock { name, body }, span, id })
            }
            TokenKind::Try => {
                self.bump();
                self.expect(&TokenKind::Colon)?;
                let body = self.block()?;
                self.expect(&TokenKind::Catch)
                    .map_err(|d| d.with_help("every `try:` needs a `catch <name>:` clause"))?;
                let (err_name, _) = self.expect_ident("an error variable name")?;
                self.expect(&TokenKind::Colon)?;
                let handler = self.block()?;
                let err_id = self.fresh();
                let id = self.fresh();
                Ok(Stmt { kind: StmtKind::Try { body, err_name, err_id, handler }, span, id })
            }
            TokenKind::Catch => Err(self
                .error("`catch` without a preceding `try:` block")
                .with_help("write `try:` above, at the same indentation")),
            TokenKind::Return => {
                self.bump();
                let value = if self.at(&TokenKind::Newline) { None } else { Some(self.expr()?) };
                self.expect(&TokenKind::Newline)?;
                let id = self.fresh();
                Ok(Stmt { kind: StmtKind::Return(value), span, id })
            }
            TokenKind::Break => {
                self.bump();
                self.expect(&TokenKind::Newline)?;
                let id = self.fresh();
                Ok(Stmt { kind: StmtKind::Break, span, id })
            }
            TokenKind::Continue => {
                self.bump();
                self.expect(&TokenKind::Newline)?;
                let id = self.fresh();
                Ok(Stmt { kind: StmtKind::Continue, span, id })
            }
            TokenKind::Pass => {
                self.bump();
                self.expect(&TokenKind::Newline)?;
                let id = self.fresh();
                Ok(Stmt { kind: StmtKind::Pass, span, id })
            }
            TokenKind::Assert => {
                self.bump();
                let cond = self.expr()?;
                let message = if self.eat(&TokenKind::Comma) { Some(self.expr()?) } else { None };
                self.expect(&TokenKind::Newline)?;
                let id = self.fresh();
                Ok(Stmt { kind: StmtKind::Assert { cond, message }, span, id })
            }
            TokenKind::Def => Err(self
                .error("function definitions cannot be nested")
                .with_help("move this `def` to the top level")),
            _ => self.expr_or_assign_stmt(),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let span = self.peek_span();
        self.expect(&TokenKind::If)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::Colon)?;
        let then = self.block()?;
        let mut elifs = Vec::new();
        let mut els = None;
        loop {
            if self.at(&TokenKind::Elif) {
                self.bump();
                let c = self.expr()?;
                self.expect(&TokenKind::Colon)?;
                let b = self.block()?;
                elifs.push((c, b));
            } else if self.at(&TokenKind::Else) {
                self.bump();
                self.expect(&TokenKind::Colon)?;
                els = Some(self.block()?);
                break;
            } else {
                break;
            }
        }
        let id = self.fresh();
        Ok(Stmt { kind: StmtKind::If { cond, then, elifs, els }, span, id })
    }

    /// The common tail of `for` and `parallel for`: `var in seq: block`.
    fn for_tail(&mut self) -> Result<(Symbol, Expr, Block), Diagnostic> {
        let (var, _) = self.expect_ident("a loop variable")?;
        self.expect(&TokenKind::In)?;
        let iter = self.expr()?;
        self.expect(&TokenKind::Colon)?;
        let body = self.block()?;
        Ok((var, iter, body))
    }

    /// Parse either an expression statement or an assignment. We parse a full
    /// expression first and re-interpret it as an assignment target when an
    /// `=`-family operator follows.
    fn expr_or_assign_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let span = self.peek_span();
        let first = self.expr()?;
        let op = match self.peek() {
            TokenKind::Assign => Some(AssignOp::Set),
            TokenKind::PlusAssign => Some(AssignOp::Add),
            TokenKind::MinusAssign => Some(AssignOp::Sub),
            TokenKind::StarAssign => Some(AssignOp::Mul),
            TokenKind::SlashAssign => Some(AssignOp::Div),
            TokenKind::PercentAssign => Some(AssignOp::Mod),
            _ => None,
        };
        let kind = match op {
            Some(op) => {
                self.bump();
                let target = self.expr_to_target(first)?;
                let value = self.expr()?;
                StmtKind::Assign { target, op, value }
            }
            None => {
                // Plain expression statement: restrict to calls to catch the
                // classic `x == 1` typo? No — any expression is legal, but a
                // bare comparison gets a hint.
                if let ExprKind::Binary { op: BinOp::Eq, .. } = first.kind {
                    return Err(Diagnostic::new(
                        Stage::Parse,
                        "this `==` comparison has no effect as a statement",
                        first.span,
                    )
                    .with_help("did you mean `=` (assignment)?"));
                }
                StmtKind::Expr(first)
            }
        };
        self.expect(&TokenKind::Newline)?;
        let id = self.fresh();
        Ok(Stmt { kind, span, id })
    }

    fn expr_to_target(&mut self, e: Expr) -> Result<Target, Diagnostic> {
        match e.kind {
            ExprKind::Var(name) => Ok(Target::Name { name, span: e.span, id: e.id }),
            ExprKind::Index { base, index } => {
                Ok(Target::Index { base: *base, index: *index, span: e.span, id: e.id })
            }
            _ => Err(Diagnostic::new(Stage::Parse, "invalid assignment target", e.span)
                .with_help("only variables and element accesses like `a[i]` can be assigned to")),
        }
    }
}
