//! Expression parsing (Pratt-style precedence climbing over the same token
//! cursor as [`crate::parser`]).
//!
//! Precedence, lowest first, matching Python where Tetra borrows syntax:
//!
//! | level | operators |
//! |-------|-----------|
//! | 1 | `or` |
//! | 2 | `and` |
//! | 3 | `not` (unary) |
//! | 4 | `==` `!=` `<` `>` `<=` `>=` (non-chaining) |
//! | 5 | `+` `-` |
//! | 6 | `*` `/` `%` |
//! | 7 | unary `-` |
//! | 8 | postfix call / index |

use crate::parser::Parser;
use tetra_ast::*;
use tetra_intern::Symbol;
use tetra_lexer::{Diagnostic, Stage, TokenKind};

/// Maximum expression nesting (parentheses, unary chains, literals).
/// Each level costs ~10 recursive-descent frames (~20 KiB in debug
/// builds); 48 keeps the parser inside a 2 MiB test-thread stack while
/// being far beyond human code.
const MAX_EXPR_DEPTH: u32 = 48;

impl Parser {
    pub(crate) fn expr(&mut self) -> Result<Expr, Diagnostic> {
        if self.expr_depth >= MAX_EXPR_DEPTH {
            return Err(Diagnostic::new(
                Stage::Parse,
                format!("expression is nested more than {MAX_EXPR_DEPTH} levels deep"),
                self.peek_span(),
            )
            .with_help("break the expression into intermediate variables"));
        }
        self.expr_depth += 1;
        let result = self.or_expr();
        self.expr_depth -= 1;
        result
    }

    fn mk(&mut self, kind: ExprKind, span: tetra_lexer::Span) -> Expr {
        Expr { kind, span, id: self.fresh() }
    }

    fn or_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.and_expr()?;
        while self.at(&TokenKind::Or) {
            self.bump();
            let rhs = self.and_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = self.mk(
                ExprKind::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                span,
            );
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.not_expr()?;
        while self.at(&TokenKind::And) {
            self.bump();
            let rhs = self.not_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = self.mk(
                ExprKind::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                span,
            );
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, Diagnostic> {
        if self.at(&TokenKind::Not) {
            let start = self.peek_span();
            self.bump();
            self.expr_depth += 1;
            if self.expr_depth >= MAX_EXPR_DEPTH {
                self.expr_depth -= 1;
                return Err(Diagnostic::new(
                    Stage::Parse,
                    format!("expression is nested more than {MAX_EXPR_DEPTH} levels deep"),
                    start,
                ));
            }
            let operand = self.not_expr();
            self.expr_depth -= 1;
            let operand = operand?;
            let span = start.to(operand.span);
            return Ok(self.mk(ExprKind::Unary { op: UnOp::Not, operand: Box::new(operand) }, span));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, Diagnostic> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            TokenKind::Eq => Some(BinOp::Eq),
            TokenKind::Ne => Some(BinOp::Ne),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::Le => Some(BinOp::Le),
            TokenKind::Ge => Some(BinOp::Ge),
            _ => None,
        };
        let Some(op) = op else { return Ok(lhs) };
        self.bump();
        let rhs = self.additive()?;
        // Reject chained comparisons explicitly — Python chains them, Tetra
        // keeps the simpler non-chaining rule; an explicit error prevents
        // silent mis-parses like (a < b) < c.
        if matches!(
            self.peek(),
            TokenKind::Eq
                | TokenKind::Ne
                | TokenKind::Lt
                | TokenKind::Gt
                | TokenKind::Le
                | TokenKind::Ge
        ) {
            return Err(Diagnostic::new(
                Stage::Parse,
                "comparisons cannot be chained",
                self.peek_span(),
            )
            .with_help("write `a < b and b < c` instead of `a < b < c`"));
        }
        let span = lhs.span.to(rhs.span);
        Ok(self.mk(ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }, span))
    }

    fn additive(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            let span = lhs.span.to(rhs.span);
            lhs = self.mk(ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }, span);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            let span = lhs.span.to(rhs.span);
            lhs = self.mk(ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }, span);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, Diagnostic> {
        if self.at(&TokenKind::Minus) {
            let start = self.peek_span();
            self.bump();
            self.expr_depth += 1;
            if self.expr_depth >= MAX_EXPR_DEPTH {
                self.expr_depth -= 1;
                return Err(Diagnostic::new(
                    Stage::Parse,
                    format!("expression is nested more than {MAX_EXPR_DEPTH} levels deep"),
                    start,
                ));
            }
            let operand = self.unary();
            self.expr_depth -= 1;
            let operand = operand?;
            let span = start.to(operand.span);
            return Ok(self.mk(ExprKind::Unary { op: UnOp::Neg, operand: Box::new(operand) }, span));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, Diagnostic> {
        let mut e = self.atom()?;
        loop {
            if self.at(&TokenKind::LBracket) {
                self.bump();
                let index = self.expr()?;
                let rb = self.expect(&TokenKind::RBracket)?;
                let span = e.span.to(rb.span);
                e = self.mk(ExprKind::Index { base: Box::new(e), index: Box::new(index) }, span);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr, Diagnostic> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(self.mk(ExprKind::Int(v), span))
            }
            TokenKind::Real(v) => {
                self.bump();
                Ok(self.mk(ExprKind::Real(v), span))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(self.mk(ExprKind::Str(s), span))
            }
            TokenKind::Bool(v) => {
                self.bump();
                Ok(self.mk(ExprKind::Bool(v), span))
            }
            TokenKind::None => {
                self.bump();
                Ok(self.mk(ExprKind::None, span))
            }
            // Type keywords in call position are the conversion builtins:
            // `int("42")`, `real(n)`, `string` has `str(...)` instead.
            TokenKind::TyInt | TokenKind::TyReal => {
                let callee = if self.at(&TokenKind::TyInt) { "int" } else { "real" };
                self.bump();
                if !self.at(&TokenKind::LParen) {
                    return Err(Diagnostic::new(
                        Stage::Parse,
                        format!("`{callee}` is a type name; only the conversion call `{callee}(...)` can appear in an expression"),
                        span,
                    ));
                }
                self.bump();
                let mut args = Vec::new();
                if !self.at(&TokenKind::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                let rp = self.expect(&TokenKind::RParen)?;
                let cspan = span.to(rp.span);
                Ok(self.mk(ExprKind::Call { callee: Symbol::intern(callee), args }, cspan))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at(&TokenKind::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    let rp = self.expect(&TokenKind::RParen)?;
                    let cspan = span.to(rp.span);
                    Ok(self.mk(ExprKind::Call { callee: name, args }, cspan))
                } else {
                    Ok(self.mk(ExprKind::Var(name), span))
                }
            }
            TokenKind::LParen => {
                self.bump();
                let first = self.expr()?;
                if self.eat(&TokenKind::Comma) {
                    // Tuple literal.
                    let mut items = vec![first];
                    if !self.at(&TokenKind::RParen) {
                        loop {
                            items.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    let rp = self.expect(&TokenKind::RParen)?;
                    let tspan = span.to(rp.span);
                    if items.len() < 2 {
                        return Err(Diagnostic::new(
                            Stage::Parse,
                            "a tuple literal needs at least two elements",
                            tspan,
                        ));
                    }
                    Ok(self.mk(ExprKind::Tuple(items), tspan))
                } else {
                    self.expect(&TokenKind::RParen)?;
                    Ok(first)
                }
            }
            TokenKind::LBracket => {
                self.bump();
                if self.at(&TokenKind::RBracket) {
                    let rb = self.bump();
                    return Ok(self.mk(ExprKind::Array(vec![]), span.to(rb.span)));
                }
                let first = self.expr()?;
                if self.eat(&TokenKind::Ellipsis) {
                    // Range literal [lo ... hi].
                    let hi = self.expr()?;
                    let rb = self.expect(&TokenKind::RBracket)?;
                    let rspan = span.to(rb.span);
                    return Ok(
                        self.mk(ExprKind::Range { lo: Box::new(first), hi: Box::new(hi) }, rspan)
                    );
                }
                let mut items = vec![first];
                while self.eat(&TokenKind::Comma) {
                    if self.at(&TokenKind::RBracket) {
                        break; // allow trailing comma
                    }
                    items.push(self.expr()?);
                }
                let rb = self.expect(&TokenKind::RBracket)?;
                Ok(self.mk(ExprKind::Array(items), span.to(rb.span)))
            }
            TokenKind::LBrace => {
                self.bump();
                let mut pairs = Vec::new();
                if !self.at(&TokenKind::RBrace) {
                    loop {
                        let k = self.expr()?;
                        self.expect(&TokenKind::Colon)?;
                        let v = self.expr()?;
                        pairs.push((k, v));
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                        if self.at(&TokenKind::RBrace) {
                            break; // trailing comma
                        }
                    }
                }
                let rb = self.expect(&TokenKind::RBrace)?;
                Ok(self.mk(ExprKind::Dict(pairs), span.to(rb.span)))
            }
            other => Err(self.error(format!("expected an expression, found {}", other.describe()))),
        }
    }
}
