//! # tetra-parser
//!
//! A hand-written recursive-descent parser for the Tetra educational
//! parallel programming language.
//!
//! The paper's implementation used Bison; this reimplementation uses
//! recursive descent over the same grammar (see DESIGN.md §2 for the
//! substitution rationale). The parser consumes the token stream produced by
//! [`tetra_lexer::tokenize`] — including the synthesized layout tokens — and
//! produces a [`tetra_ast::Program`].
//!
//! ## Example
//!
//! ```
//! let program = tetra_parser::parse("def main():\n    print(1 + 2)\n").unwrap();
//! assert_eq!(program.funcs.len(), 1);
//! assert_eq!(program.funcs[0].name, "main");
//! ```

mod exprs;
mod parser;

pub use parser::parse;

#[cfg(test)]
mod tests {
    use super::parse;
    use tetra_ast::*;

    fn main_body(src: &str) -> Vec<Stmt> {
        let p = parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"));
        p.func("main").expect("no main").body.stmts.clone()
    }

    fn first_expr(src_expr: &str) -> Expr {
        let src = format!("def main():\n    x = {src_expr}\n");
        let stmts = main_body(&src);
        match &stmts[0].kind {
            StmtKind::Assign { value, .. } => value.clone(),
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn parses_paper_figure_1() {
        let src = "\
# a simple factorial function
def fact(x int) int:
    if x == 0:
        return 1
    else:
        return x * fact(x - 1)

# a main function which handles I/O
def main():
    print(\"enter n: \")
    n = read_int()
    print(n, \"! = \", fact(n))
";
        let p = parse(src).unwrap();
        assert_eq!(p.funcs.len(), 2);
        let fact = p.func("fact").unwrap();
        assert_eq!(fact.params.len(), 1);
        assert_eq!(fact.params[0].ty, Type::Int);
        assert_eq!(fact.ret, Type::Int);
        assert!(matches!(fact.body.stmts[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn parses_paper_figure_2() {
        let src = "\
# sum a range of numbers
def sumr(nums [int], a int, b int) int:
    total = 0
    i = a
    while i <= b:
        total += nums[i]
        i += 1
    return total

# sum an array of numbers in parallel
def sum(nums [int]) int:
    mid = len(nums) / 2
    parallel:
        a = sumr(nums, 0, mid - 1)
        b = sumr(nums, mid, len(nums) - 1)
    return a + b

# print the sum of 1 through 100
def main():
    print(sum([1 ... 100]))
";
        let p = parse(src).unwrap();
        assert_eq!(p.funcs.len(), 3);
        let sum = p.func("sum").unwrap();
        assert_eq!(sum.params[0].ty, Type::array(Type::Int));
        let parallel = sum
            .body
            .stmts
            .iter()
            .find(|s| matches!(s.kind, StmtKind::Parallel { .. }))
            .expect("parallel block");
        if let StmtKind::Parallel { body } = &parallel.kind {
            assert_eq!(body.len(), 2, "two statements run in two threads");
        }
    }

    #[test]
    fn parses_paper_figure_3() {
        let src = "\
# find the max of an array
def max(nums [int]) int:
    largest = 0
    parallel for num in nums:
        if num > largest:
            lock largest:
                if num > largest:
                    largest = num
    return largest

# run it on some numbers
def main():
    nums = [18, 32, 96, 48, 60]
    print(max(nums))
";
        let p = parse(src).unwrap();
        let stats = visit::ParallelStats::of(&p);
        assert_eq!(stats.parallel_fors, 1);
        assert_eq!(stats.lock_blocks, 1);
        assert_eq!(stats.lock_names, vec!["largest".to_string()]);
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let e = first_expr("1 + 2 * 3");
        match e.kind {
            ExprKind::Binary { op: BinOp::Add, rhs, .. } => {
                assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn precedence_comparison_over_logic() {
        // a == 1 or b == 2  →  (a == 1) or (b == 2)
        let e = first_expr("a == 1 or b == 2");
        match e.kind {
            ExprKind::Binary { op: BinOp::Or, lhs, rhs } => {
                assert!(matches!(lhs.kind, ExprKind::Binary { op: BinOp::Eq, .. }));
                assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Eq, .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn not_binds_looser_than_comparison() {
        // not a == b  →  not (a == b)
        let e = first_expr("not a == b");
        match e.kind {
            ExprKind::Unary { op: UnOp::Not, operand } => {
                assert!(matches!(operand.kind, ExprKind::Binary { op: BinOp::Eq, .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn subtraction_is_left_associative() {
        // 10 - 3 - 2 → (10 - 3) - 2
        let e = first_expr("10 - 3 - 2");
        match e.kind {
            ExprKind::Binary { op: BinOp::Sub, lhs, rhs } => {
                assert!(matches!(lhs.kind, ExprKind::Binary { op: BinOp::Sub, .. }));
                assert!(matches!(rhs.kind, ExprKind::Int(2)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn unary_minus_nests() {
        let e = first_expr("--5");
        assert!(matches!(e.kind, ExprKind::Unary { op: UnOp::Neg, .. }));
    }

    #[test]
    fn chained_comparison_is_rejected_with_help() {
        let err = parse("def main():\n    x = 1 < 2 < 3\n").unwrap_err();
        assert!(err.message.contains("chained"), "{err}");
    }

    #[test]
    fn indexing_chains() {
        let e = first_expr("m[i][j]");
        match e.kind {
            ExprKind::Index { base, .. } => {
                assert!(matches!(base.kind, ExprKind::Index { .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn index_assignment_target() {
        let stmts = main_body("def main():\n    a[0] = 5\n    m[i][j] += 1\n");
        assert!(matches!(
            &stmts[0].kind,
            StmtKind::Assign { target: Target::Index { .. }, op: AssignOp::Set, .. }
        ));
        assert!(matches!(
            &stmts[1].kind,
            StmtKind::Assign { target: Target::Index { .. }, op: AssignOp::Add, .. }
        ));
    }

    #[test]
    fn invalid_assignment_target_is_rejected() {
        let err = parse("def main():\n    1 + 2 = 3\n").unwrap_err();
        assert!(err.message.contains("assignment target"), "{err}");
    }

    #[test]
    fn equality_as_statement_gets_hint() {
        let err = parse("def main():\n    x == 1\n").unwrap_err();
        assert!(err.help.as_deref().unwrap_or("").contains("assignment"), "{err:?}");
    }

    #[test]
    fn tuple_and_dict_literals() {
        let e = first_expr("(1, \"a\", true)");
        assert!(matches!(e.kind, ExprKind::Tuple(ref items) if items.len() == 3));
        let e = first_expr("{1: \"one\", 2: \"two\"}");
        assert!(matches!(e.kind, ExprKind::Dict(ref pairs) if pairs.len() == 2));
        let e = first_expr("{}");
        assert!(matches!(e.kind, ExprKind::Dict(ref pairs) if pairs.is_empty()));
    }

    #[test]
    fn parenthesized_expr_is_not_a_tuple() {
        let e = first_expr("(1 + 2)");
        assert!(matches!(e.kind, ExprKind::Binary { .. }));
    }

    #[test]
    fn empty_and_trailing_comma_arrays() {
        let e = first_expr("[]");
        assert!(matches!(e.kind, ExprKind::Array(ref v) if v.is_empty()));
        let e = first_expr("[1, 2, 3,]");
        assert!(matches!(e.kind, ExprKind::Array(ref v) if v.len() == 3));
    }

    #[test]
    fn range_literal() {
        let e = first_expr("[1 ... 100]");
        match e.kind {
            ExprKind::Range { lo, hi } => {
                assert!(matches!(lo.kind, ExprKind::Int(1)));
                assert!(matches!(hi.kind, ExprKind::Int(100)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn range_with_expressions() {
        let e = first_expr("[a + 1 ... n * 2]");
        assert!(matches!(e.kind, ExprKind::Range { .. }));
    }

    #[test]
    fn nested_function_defs_rejected() {
        let err = parse("def main():\n    def inner():\n        pass\n").unwrap_err();
        assert!(err.message.contains("nested"), "{err}");
    }

    #[test]
    fn duplicate_function_rejected() {
        let err = parse("def f():\n    pass\ndef f():\n    pass\n").unwrap_err();
        assert!(err.message.contains("more than once"), "{err}");
    }

    #[test]
    fn duplicate_parameter_rejected() {
        let err = parse("def f(a int, a int):\n    pass\n").unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn missing_block_is_helpful() {
        let err = parse("def main():\nx = 1\n").unwrap_err();
        assert!(err.message.contains("indented"), "{err}");
    }

    #[test]
    fn background_block_parses() {
        let src = "def main():\n    background:\n        work()\n    print(\"later\")\n";
        let stmts = main_body(src);
        assert!(matches!(stmts[0].kind, StmtKind::Background { .. }));
    }

    #[test]
    fn assert_with_and_without_message() {
        let stmts =
            main_body("def main():\n    assert x > 0\n    assert x > 0, \"x must be positive\"\n");
        assert!(matches!(stmts[0].kind, StmtKind::Assert { message: None, .. }));
        assert!(matches!(stmts[1].kind, StmtKind::Assert { message: Some(_), .. }));
    }

    #[test]
    fn complex_types_parse() {
        let src = "def f(m [[real]], d {string: int}, t (int, string)) [int]:\n    return []\n";
        let p = parse(src).unwrap();
        let f = p.func("f").unwrap();
        assert_eq!(f.params[0].ty, Type::array(Type::array(Type::Real)));
        assert_eq!(f.params[1].ty, Type::dict(Type::Str, Type::Int));
        assert_eq!(f.params[2].ty, Type::Tuple(vec![Type::Int, Type::Str]));
        assert_eq!(f.ret, Type::array(Type::Int));
    }

    #[test]
    fn elif_chain() {
        let src = "\
def main():
    if a:
        x = 1
    elif b:
        x = 2
    elif c:
        x = 3
    else:
        x = 4
";
        let stmts = main_body(src);
        match &stmts[0].kind {
            StmtKind::If { elifs, els, .. } => {
                assert_eq!(elifs.len(), 2);
                assert!(els.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn node_ids_are_unique() {
        let src = "def main():\n    x = 1 + 2\n    y = x * x\n";
        let p = parse(src).unwrap();
        let mut seen = std::collections::HashSet::new();
        struct Collect<'a>(&'a mut std::collections::HashSet<u32>);
        impl Visitor for Collect<'_> {
            fn visit_expr(&mut self, e: &Expr) {
                assert!(self.0.insert(e.id.0), "duplicate id {:?}", e.id);
                visit::walk_expr(self, e);
            }
        }
        use tetra_ast::visit::{self, Visitor};
        visit::walk_program(&mut Collect(&mut seen), &p);
        assert!(!seen.is_empty());
        assert!(p.node_count as usize >= seen.len());
    }

    #[test]
    fn round_trip_through_pretty_printer() {
        let src = "\
def max(nums [int]) int:
    largest = 0
    parallel for num in nums:
        if num > largest:
            lock largest:
                if num > largest:
                    largest = num
    return largest

def main():
    nums = [18, 32, 96, 48, 60]
    print(max(nums))
";
        let p1 = parse(src).unwrap();
        let printed = pretty::to_source(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("re-parse failed: {e}\n---\n{printed}"));
        // Compare pretty-printed forms (spans and ids differ).
        assert_eq!(printed, pretty::to_source(&p2));
    }

    #[test]
    fn multiline_array_in_brackets() {
        let src = "def main():\n    x = [1,\n         2,\n         3]\n    print(x)\n";
        let stmts = main_body(src);
        assert!(matches!(
            &stmts[0].kind,
            StmtKind::Assign { value: Expr { kind: ExprKind::Array(v), .. }, .. } if v.len() == 3
        ));
    }
}
