//! End-to-end tests of the `tetra` binary: every subcommand is exercised
//! against the shipped example programs, including a scripted interactive
//! debugger session.

use std::io::Write;
use std::process::{Command, Stdio};

fn tetra() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tetra"))
}

fn examples_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/tetra")
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("tetra-cli-test-{name}-{}.tet", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path
}

#[test]
fn run_executes_a_program() {
    let out = tetra().arg("run").arg(examples_dir().join("parallel_sum.tet")).output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), "5050\n");
}

#[test]
fn run_reads_stdin() {
    let mut child = tetra()
        .arg("run")
        .arg(examples_dir().join("factorial.tet"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(b"7\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("7! = 5040"));
}

#[test]
fn run_reports_runtime_errors_with_nonzero_exit() {
    let path = write_temp("div", "def main():\n    print(1 / 0)\n");
    let out = tetra().arg("run").arg(&path).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("divide by zero"), "{err}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn check_reports_parallel_inventory() {
    let out = tetra().arg("check").arg(examples_dir().join("parallel_max.tet")).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 parallel for"), "{text}");
    assert!(text.contains("lock names: largest"), "{text}");
}

#[test]
fn check_renders_type_errors_with_carets() {
    let path = write_temp("typeerr", "def main():\n    x = 1 + \"a\"\n");
    let out = tetra().arg("check").arg(&path).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot add int and string"), "{err}");
    assert!(err.contains('^'), "{err}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn tokens_ast_pretty_disasm_render() {
    let file = examples_dir().join("parallel_sum.tet");
    let toks = tetra().arg("tokens").arg(&file).output().unwrap();
    assert!(String::from_utf8_lossy(&toks.stdout).contains("Parallel"));
    let ast = tetra().arg("ast").arg(&file).output().unwrap();
    assert!(String::from_utf8_lossy(&ast.stdout).contains("Parallel@"));
    let pretty = tetra().arg("pretty").arg(&file).output().unwrap();
    assert!(String::from_utf8_lossy(&pretty.stdout).contains("parallel:"));
    let disasm = tetra().arg("disasm").arg(&file).output().unwrap();
    let text = String::from_utf8_lossy(&disasm.stdout);
    assert!(text.contains("parallel [") || text.contains("parallel ["), "{text}");
    assert!(text.contains("func"), "{text}");
}

#[test]
fn sim_prints_virtual_time_stats() {
    let out = tetra()
        .arg("sim")
        .arg(examples_dir().join("parallel_max.tet"))
        .args(["--threads", "4"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout), "96\n");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("virtual time units"), "{err}");
}

#[test]
fn trace_reports_races() {
    let out = tetra()
        .arg("trace")
        .arg(examples_dir().join("race.tet"))
        .args(["--threads", "2"])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("thread timeline"), "{text}");
    assert!(text.contains("possible data race"), "{text}");
}

#[test]
fn trace_is_clean_for_locked_counter() {
    let out = tetra().arg("trace").arg(examples_dir().join("counter.tet")).output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("no data races detected"), "{text}");
}

#[test]
fn bench_prints_speedup_table() {
    let out =
        tetra().args(["bench", "primes", "--scale", "800", "--threads", "1,2,4"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("speedup"), "{text}");
    assert!(text.lines().count() >= 5, "{text}");
}

#[test]
fn deadlock_detection_from_cli() {
    let out = tetra().arg("run").arg(examples_dir().join("deadlock.tet")).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("deadlock"), "{err}");
}

#[test]
fn scripted_debugger_session() {
    // Drive `tetra debug` through a full session: breakpoint, run,
    // inspect, step, resume — all over pipes.
    let path =
        write_temp("dbg", "def main():\n    x = 1\n    y = x + 1\n    z = y * 2\n    print(z)\n");
    let mut child = tetra()
        .arg("debug")
        .arg(&path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let script = "break 3\nrun\nwait\nlocals 0\nstep 0\nlocals 0\nrun\nquit\n";
    child.stdin.as_mut().unwrap().write_all(script.as_bytes()).unwrap();
    let out = child.wait_with_output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("breakpoint at line 3"), "{text}");
    assert!(text.contains("x = 1"), "locals should show x: {text}");
    // After one step past line 3, y exists.
    assert!(text.contains("y = 2"), "stepping should reveal y: {text}");
    assert!(text.contains("4"), "program output (z) should appear: {text}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn help_and_unknown_commands() {
    let out = tetra().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
    let out = tetra().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn gc_stats_flag_reports() {
    let path = write_temp(
        "gcstats",
        "def main():\n    s = \"\"\n    for i in [1 ... 50]:\n        s = s + str(i)\n    print(len(s))\n",
    );
    let out = tetra().args(["run", "--gc-stats", "--gc-stress"]).arg(&path).output().unwrap();
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("allocations"), "{err}");
    assert!(err.contains("collections"), "{err}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn gc_stats_reports_phases_and_allocator_counters() {
    let path = write_temp(
        "gcphases",
        "def main():\n    s = \"\"\n    for i in [1 ... 80]:\n        s = s + str(i)\n    print(len(s))\n",
    );
    let out = tetra()
        .args(["run", "--gc-stats", "--gc-stress", "--gc-threads", "2"])
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("mark"), "phase breakdown missing: {err}");
    assert!(err.contains("sweep"), "phase breakdown missing: {err}");
    assert!(err.contains("fast-path"), "allocator counters missing: {err}");
    assert!(err.contains("segment refills"), "allocator counters missing: {err}");
    let _ = std::fs::remove_file(path);
}
