//! Subcommand implementations for the `tetra` driver.

use crate::debug_cli;
use std::sync::Arc;
use tetra::{experiments, programs, InterpConfig, StdConsole, Tetra, VmConfig};

const USAGE: &str = "\
tetra — the Tetra educational parallel programming language

USAGE:
  tetra run <file.tet> [--threads N] [--gil] [--gc-stress] [--gc-stats] [--gc-threads N]
                       [--no-detect] [--no-pool] [--trace out.json] [--metrics] [--heap-profile]
                       (--no-pool: spawn a thread per chunk instead of the
                       persistent work-stealing pool)
  tetra profile <file.tet> [--threads N] [--flame out.folded]
                                    run with tracing and print a profile report
                                    (--flame also writes collapsed stacks for
                                    flame-graph tools)
  tetra check <file.tet>            parse + type-check only
  tetra tokens <file.tet>           dump the token stream
  tetra ast <file.tet>              dump the AST
  tetra pretty <file.tet>           re-print canonical source
  tetra disasm <file.tet> [--fold]  compile to bytecode and disassemble
  tetra sim <file.tet> [--threads N] [--gil] [--no-pool] [--trace out.json] [--metrics]
                       [--heap-profile]
                                    deterministic virtual-time run (VM;
                                    --no-pool models static chunking)
  tetra trace <file.tet> [--threads N]
                                    run with tracing: thread timeline + data races
  tetra debug <file.tet> [--threads N]
                                    interactive parallel debugger (per-thread stepping)
  tetra bench <primes|tsp|sum|gil> [--threads 1,2,4,8] [--scale N]
                                    reproduce the paper's speedup tables (virtual time)
";

/// Parse `--flag value` style options out of the argument list.
struct Opts {
    positional: Vec<String>,
    threads: Option<usize>,
    thread_list: Vec<usize>,
    scale: Option<i64>,
    gil: bool,
    gc_stress: bool,
    gc_stats: bool,
    /// Cap on parallel mark workers (`--gc-threads`; None = one per core).
    gc_threads: Option<usize>,
    no_detect: bool,
    /// Bypass the work-stealing pool (interp) / dynamic chunking (sim).
    no_pool: bool,
    fold: bool,
    trace: Option<String>,
    metrics: bool,
    heap_profile: bool,
    flame: Option<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        positional: Vec::new(),
        threads: None,
        thread_list: vec![1, 2, 4, 8],
        scale: None,
        gil: false,
        gc_stress: false,
        gc_stats: false,
        gc_threads: None,
        no_detect: false,
        no_pool: false,
        fold: false,
        trace: None,
        metrics: false,
        heap_profile: false,
        flame: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                if v.contains(',') {
                    o.thread_list = v
                        .split(',')
                        .map(|p| p.trim().parse::<usize>().map_err(|e| e.to_string()))
                        .collect::<Result<_, _>>()?;
                } else {
                    let n = v.parse::<usize>().map_err(|e| e.to_string())?;
                    o.threads = Some(n);
                    o.thread_list = vec![n];
                }
            }
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                o.scale = Some(v.parse::<i64>().map_err(|e| e.to_string())?);
            }
            "--trace" => {
                let v = it.next().ok_or("--trace needs an output path")?;
                o.trace = Some(v.clone());
            }
            "--metrics" => o.metrics = true,
            "--heap-profile" => o.heap_profile = true,
            "--flame" => {
                let v = it.next().ok_or("--flame needs an output path")?;
                o.flame = Some(v.clone());
            }
            "--gil" => o.gil = true,
            "--gc-stress" => o.gc_stress = true,
            "--gc-stats" => o.gc_stats = true,
            "--gc-threads" => {
                let v = it.next().ok_or("--gc-threads needs a value")?;
                o.gc_threads = Some(v.parse::<usize>().map_err(|e| e.to_string())?);
            }
            "--no-detect" => o.no_detect = true,
            "--no-pool" => o.no_pool = true,
            "--fold" => o.fold = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`\n\n{USAGE}"))
            }
            other => o.positional.push(other.to_string()),
        }
    }
    Ok(o)
}

/// Tell the user when an exported trace is incomplete: per-thread ring
/// buffers drop their oldest events once full, and corrupt slots (torn
/// writes) are skipped rather than decoded.
fn warn_truncation(trace: &tetra::obs::session::Trace) {
    if trace.dropped_events > 0 {
        let per_thread: Vec<String> =
            trace.dropped_by_thread.iter().map(|(tid, n)| format!("thread {tid}: {n}")).collect();
        eprintln!(
            "warning: trace truncated — {} oldest event(s) dropped (ring full; {}); \
             re-run with a larger buffer or a shorter program",
            trace.dropped_events,
            per_thread.join(", "),
        );
    }
    if trace.corrupt_events > 0 {
        eprintln!("warning: {} corrupt event slot(s) skipped during export", trace.corrupt_events);
    }
}

fn read_source(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn compile_file(path: &str) -> Result<(Tetra, String), String> {
    let src = read_source(path)?;
    match Tetra::compile(&src) {
        Ok(p) => Ok((p, src)),
        Err(e) => Err(e.render()),
    }
}

pub fn dispatch(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(USAGE.to_string());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "run" => run(rest),
        "profile" => profile(rest),
        "check" => check(rest),
        "tokens" => tokens(rest),
        "ast" => ast(rest),
        "pretty" => pretty(rest),
        "disasm" => disasm(rest),
        "sim" => sim(rest),
        "trace" => trace(rest),
        "debug" => debug(rest),
        "bench" => bench(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

fn need_file(o: &Opts) -> Result<&str, String> {
    o.positional.first().map(|s| s.as_str()).ok_or_else(|| USAGE.to_string())
}

fn interp_config(o: &Opts) -> InterpConfig {
    let mut c = InterpConfig::default();
    if let Some(t) = o.threads {
        c.worker_threads = t;
    }
    c.gil = o.gil;
    c.gc.stress = o.gc_stress;
    c.gc.gc_threads = o.gc_threads.unwrap_or(0);
    c.detect_deadlocks = !o.no_detect;
    c.use_pool = !o.no_pool;
    c
}

fn run(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let (program, _src) = compile_file(need_file(&o)?)?;
    let observing = o.trace.is_some() || o.metrics || o.heap_profile;
    if observing {
        tetra::obs::session::begin(tetra::obs::session::Config {
            trace: o.trace.is_some(),
            metrics: o.metrics,
            heap_profile: o.heap_profile,
            ..Default::default()
        });
    }
    let result = program.run_with(interp_config(&o), Arc::new(StdConsole));
    if observing {
        let trace = tetra::obs::session::end();
        if let Some(path) = &o.trace {
            std::fs::write(path, tetra::obs::chrome::export(&trace))
                .map_err(|e| format!("cannot write trace to `{path}`: {e}"))?;
            eprintln!(
                "trace: {} events from {} thread(s) written to {path}",
                trace.events.len(),
                trace.thread_names().len(),
            );
            warn_truncation(&trace);
        }
        if o.metrics {
            eprint!("{}", trace.metrics.render());
        }
        if o.heap_profile {
            eprint!("{}", tetra::obs::profile::heap_report(&trace));
        }
    }
    let stats = result.map_err(|e| e.to_string())?;
    if o.gc_stats {
        eprintln!(
            "gc: {} allocations, {} collections, {} objects freed, {} live",
            stats.gc.allocations,
            stats.gc.collections,
            stats.gc.objects_freed,
            stats.gc.live_objects
        );
        eprintln!(
            "gc pauses: {} us total, {} us max (mark {} us, sweep {} us)",
            stats.gc.pause_total_us, stats.gc.pause_max_us, stats.gc.mark_us, stats.gc.sweep_us
        );
        eprintln!(
            "gc allocator: {} fast-path, {} segment refills, {} mark worker(s) max",
            stats.gc.alloc_fast_path, stats.gc.segment_refills, stats.gc.mark_workers
        );
        eprintln!(
            "threads: {} spawned; locks: {} acquisitions ({} contended)",
            stats.threads_spawned, stats.lock_acquisitions.0, stats.lock_acquisitions.1
        );
    }
    Ok(())
}

fn profile(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let path = need_file(&o)?;
    let (program, src) = compile_file(path)?;
    tetra::obs::session::begin(tetra::obs::session::Config::default());
    let result = program.run_with(interp_config(&o), Arc::new(StdConsole));
    let trace = tetra::obs::session::end();
    // Report even when the program failed: the trace up to the error is
    // usually exactly what the user wants to see.
    let source_lines: Vec<String> = src.lines().map(str::to_string).collect();
    eprintln!();
    eprint!("{}", tetra::obs::profile::report(&trace, Some(&source_lines)));
    if let Some(out) = &o.flame {
        std::fs::write(out, tetra::obs::flame::write_folded(&trace))
            .map_err(|e| format!("cannot write flame output to `{out}`: {e}"))?;
        eprintln!("flame: collapsed stacks written to {out} (flamegraph.pl / speedscope)");
    }
    result.map(|_| ()).map_err(|e| e.to_string())
}

fn check(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let (program, _) = compile_file(need_file(&o)?)?;
    let stats = tetra::ast::visit::ParallelStats::of(&program.typed().program);
    println!(
        "ok: {} function(s), {} parallel block(s), {} parallel for(s), {} background block(s), {} lock block(s)",
        program.typed().program.funcs.len(),
        stats.parallel_blocks,
        stats.parallel_fors,
        stats.background_blocks,
        stats.lock_blocks,
    );
    if !stats.lock_names.is_empty() {
        println!("lock names: {}", stats.lock_names.join(", "));
    }
    Ok(())
}

fn tokens(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let src = read_source(need_file(&o)?)?;
    let toks = tetra::lexer::tokenize(&src).map_err(|e| e.render(&src))?;
    for t in toks {
        println!("{:>4}:{:<3} {:?}", t.span.line, t.span.col, t.kind);
    }
    Ok(())
}

fn ast(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let (program, _) = compile_file(need_file(&o)?)?;
    print!("{}", tetra::ast::pretty::tree(&program.typed().program));
    Ok(())
}

fn pretty(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let (program, _) = compile_file(need_file(&o)?)?;
    print!("{}", tetra::ast::pretty::to_source(&program.typed().program));
    Ok(())
}

fn disasm(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let (program, _) = compile_file(need_file(&o)?)?;
    let (program, note) = if o.fold {
        let (opt, stats) = program.optimized().map_err(|e| e.render())?;
        (
            opt,
            format!(
                "; folded {} expression(s), pruned {} branch(es), removed {} loop(s)\n",
                stats.expressions_folded, stats.branches_pruned, stats.loops_removed
            ),
        )
    } else {
        (program, String::new())
    };
    let bc = program.bytecode();
    print!("{note}");
    println!("; {} unit(s), {} instruction(s)", bc.units.len(), bc.instruction_count());
    print!("{}", tetra::vm::disassemble(&bc));
    Ok(())
}

fn sim(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let (program, _) = compile_file(need_file(&o)?)?;
    let mut cfg = VmConfig {
        workers: o.threads.unwrap_or(4),
        dynamic_chunking: !o.no_pool,
        cost: tetra::vm::CostModel { gil: o.gil, ..Default::default() },
        ..VmConfig::default()
    };
    cfg.gc.gc_threads = o.gc_threads.unwrap_or(0);
    let observing = o.trace.is_some() || o.metrics || o.heap_profile;
    if observing {
        tetra::obs::session::begin(tetra::obs::session::Config {
            trace: o.trace.is_some(),
            metrics: o.metrics,
            heap_profile: o.heap_profile,
            ..Default::default()
        });
    }
    let result = program.simulate_with(cfg, Arc::new(StdConsole));
    if observing {
        let trace = tetra::obs::session::end();
        if let Some(path) = &o.trace {
            std::fs::write(path, tetra::obs::chrome::export(&trace))
                .map_err(|e| format!("cannot write trace to `{path}`: {e}"))?;
            eprintln!(
                "trace: {} events from {} thread(s) written to {path}",
                trace.events.len(),
                trace.thread_names().len(),
            );
            warn_truncation(&trace);
        }
        if o.metrics {
            eprint!("{}", trace.metrics.render());
        }
        if o.heap_profile {
            eprint!("{}", tetra::obs::profile::heap_report(&trace));
        }
    }
    let stats = result.map_err(|e| e.to_string())?;
    eprintln!(
        "sim: {} virtual time units, {} instructions, {} thread(s), {} contended lock waits",
        stats.virtual_elapsed, stats.instructions, stats.threads, stats.lock_contentions
    );
    Ok(())
}

fn trace(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let (program, _) = compile_file(need_file(&o)?)?;
    let dbg = tetra::debugger::Debugger::tracer();
    let interp = program.debug(interp_config(&o), Arc::new(StdConsole), dbg.clone());
    let result = interp.run();
    println!("\n=== thread timeline ===");
    print!("{}", tetra::debugger::timeline::render(&dbg.events()));
    let races = dbg.races();
    if races.is_empty() {
        println!("\nno data races detected");
    } else {
        println!("\n=== possible data races ===");
        for r in races {
            println!("  {}", r.message);
        }
    }
    result.map(|_| ()).map_err(|e| e.to_string())
}

fn debug(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let (program, src) = compile_file(need_file(&o)?)?;
    debug_cli::interactive(program, src, interp_config(&o))
}

fn bench(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let which = o.positional.first().map(|s| s.as_str()).unwrap_or("primes");
    let threads = o.thread_list.clone();
    let (title, src) = match which {
        "primes" => (
            "E5: primes workload (paper §IV) — virtual-time speedup",
            programs::primes(o.scale.unwrap_or(20_000), 64),
        ),
        "tsp" => (
            "E6: travelling salesman workload (paper §IV) — virtual-time speedup",
            programs::tsp(o.scale.unwrap_or(9)),
        ),
        "sum" => (
            "Fig. II parallel sum, scaled — virtual-time speedup",
            format!(
                "def main():\n    total = 0\n    parallel for i in [1 ... {}]:\n        lock t:\n            total += i\n    print(total)\n",
                o.scale.unwrap_or(50_000)
            ),
        ),
        "gil" => (
            "E8: primes under a simulated GIL — speedup stays ~1x",
            programs::primes(o.scale.unwrap_or(5_000), 64),
        ),
        other => return Err(format!("unknown benchmark `{other}` (primes|tsp|sum|gil)")),
    };
    let rows = if which == "gil" {
        experiments::simulated_speedup_with(
            &src,
            &threads,
            tetra::vm::CostModel { gil: true, ..Default::default() },
        )
    } else {
        experiments::simulated_speedup(&src, &threads)
    }
    .map_err(|e| e.to_string())?;
    print!("{}", experiments::render_table(title, &rows));
    Ok(())
}
