//! `tetra` — the command-line driver.
//!
//! The paper's system ships "a command line driver program ... which simply
//! calls the interpreter on its argument from start to finish" (§IV); this
//! driver adds the rest of the toolbox built in this reproduction:
//!
//! ```text
//! tetra run <file.tet> [--threads N] [--gil] [--gc-stress] [--gc-stats]
//!                      [--trace out.json] [--metrics] [--heap-profile]
//! tetra profile <file.tet> [--flame out.folded]  # paths/lines/locks/heap/GC
//! tetra check <file.tet>
//! tetra tokens <file.tet>
//! tetra ast <file.tet>
//! tetra pretty <file.tet>
//! tetra disasm <file.tet>
//! tetra sim <file.tet> [--threads N] [--gil] [--heap-profile]
//! tetra trace <file.tet> [--threads N]         # thread timeline + races
//! tetra debug <file.tet>                       # interactive parallel debugger
//! tetra bench (primes|tsp|sum|gil) [--threads 1,2,4,8]
//! ```

mod commands;
mod debug_cli;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
