//! The interactive parallel debugger — the command-line form of the
//! paper's IDE debugging workflow (§III): one "code view" per thread,
//! stepped independently.
//!
//! Commands (also printed by `help`):
//!
//! ```text
//! break <line>      set a breakpoint
//! clear <line>      remove a breakpoint
//! run               start / resume all threads
//! threads           show every Tetra thread with state and current line
//! paused            show suspended threads
//! step <tid>        run one statement of thread <tid>
//! cont <tid>        resume thread <tid> until the next breakpoint
//! locals <tid>      show the variables visible to a paused thread
//! where <tid>       show the source line a paused thread is stopped at
//! watch <name>      pause any thread after it writes <name>
//! hits              list recorded watchpoint hits
//! races             show data races detected so far
//! timeline          render the thread timeline
//! quit              cancel the program and exit
//! ```

use std::io::{BufRead, Write};
use std::sync::Arc;
use tetra::{debugger::Debugger, InterpConfig, StdConsole, Tetra};

pub fn interactive(program: Tetra, src: String, config: InterpConfig) -> Result<(), String> {
    let dbg = Debugger::new(true);
    let interp = program.debug(config, Arc::new(StdConsole), dbg.clone());
    let runner = std::thread::spawn(move || interp.run());
    println!("tetra debugger — program paused at entry; type `help` for commands");

    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        print!("(tdb) ");
        let _ = std::io::stdout().flush();
        line.clear();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            dbg.stop();
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            [] => {}
            ["help"] => println!("{}", HELP),
            ["break", n] => match n.parse::<u32>() {
                Ok(n) => {
                    dbg.set_breakpoint(n);
                    println!("breakpoint at line {n}");
                }
                Err(_) => println!("usage: break <line>"),
            },
            ["clear", n] => {
                if let Ok(n) = n.parse::<u32>() {
                    dbg.clear_breakpoint(n);
                }
            }
            ["run"] => {
                dbg.resume_all();
                println!("running");
            }
            ["wait"] => {
                // Block until some thread pauses (breakpoint hit) — the
                // synchronization point for scripted sessions.
                if dbg.wait_until(std::time::Duration::from_secs(10), |p| !p.is_empty()) {
                    for p in dbg.paused() {
                        println!("thread {} paused before line {}", p.thread, p.line);
                    }
                } else {
                    println!("timed out: nothing paused");
                }
            }
            ["watch", name] => {
                dbg.watch(*name);
                println!("watching writes to `{name}`");
            }
            ["unwatch", name] => {
                dbg.unwatch(name);
            }
            ["hits"] => {
                for (tid, name, line) in dbg.watch_hits() {
                    println!("thread {tid} wrote `{name}` at line {line}");
                }
            }
            ["paused"] => {
                for p in dbg.paused() {
                    println!("thread {} paused before line {}", p.thread, p.line);
                }
            }
            ["step", t] => match t.parse::<u32>() {
                Ok(t) => {
                    dbg.step(t);
                    // Give the thread a moment to land on its next statement.
                    dbg.wait_until(std::time::Duration::from_secs(2), |paused| {
                        paused.iter().any(|p| p.thread == t)
                    });
                    show_where(&dbg, &src, t);
                }
                Err(_) => println!("usage: step <tid>"),
            },
            ["cont", t] => {
                if let Ok(t) = t.parse::<u32>() {
                    dbg.resume(t);
                }
            }
            ["locals", t] => match t.parse::<u32>() {
                Ok(t) => match dbg.paused().iter().find(|p| p.thread == t) {
                    Some(p) => {
                        for (name, value) in &p.locals {
                            println!("  {name} = {value}");
                        }
                    }
                    None => println!("thread {t} is not paused"),
                },
                Err(_) => println!("usage: locals <tid>"),
            },
            ["where", t] => {
                if let Ok(t) = t.parse::<u32>() {
                    show_where(&dbg, &src, t);
                }
            }
            ["threads"] => {
                for p in dbg.paused() {
                    println!("thread {}: paused before line {}", p.thread, p.line);
                }
            }
            ["races"] => {
                let races = dbg.races();
                if races.is_empty() {
                    println!("no data races detected so far");
                }
                for r in races {
                    println!("  {}", r.message);
                }
            }
            ["timeline"] => {
                print!("{}", tetra::debugger::timeline::render(&dbg.events()));
            }
            ["quit"] | ["exit"] => {
                dbg.stop();
                break;
            }
            other => println!("unknown command {:?}; type `help`", other.join(" ")),
        }
        if runner.is_finished() {
            break;
        }
    }

    match runner.join() {
        Ok(Ok(_)) => {
            println!("program finished");
            Ok(())
        }
        Ok(Err(e)) if e.kind == tetra::runtime::ErrorKind::Cancelled => {
            println!("program cancelled");
            Ok(())
        }
        Ok(Err(e)) => Err(e.to_string()),
        Err(_) => Err("the interpreter panicked".to_string()),
    }
}

fn show_where(dbg: &Arc<Debugger>, src: &str, t: u32) {
    match dbg.paused().iter().find(|p| p.thread == t) {
        Some(p) => {
            let text = src.lines().nth(p.line.saturating_sub(1) as usize).unwrap_or("");
            println!("thread {} before line {}: {}", t, p.line, text.trim_end());
        }
        None => println!("thread {t} is not paused (running, blocked or finished)"),
    }
}

const HELP: &str = "\
  break <line>   set a breakpoint        clear <line>   remove it
  run            resume all threads      wait           block until a pause
  paused         list suspended threads
  step <tid>     one statement of <tid>  cont <tid>     resume <tid>
  locals <tid>   variables of <tid>      where <tid>    current source line
  watch <name>   pause writers of <name> hits           list watch hits
  races          detected data races     timeline       thread timeline
  quit           cancel and exit";
