//! # tetra-intern
//!
//! A global string interner shared by every stage of the Tetra pipeline.
//!
//! Identifiers are interned once (in the lexer, usually) into a [`Symbol`] —
//! a `Copy` 4-byte handle that compares and hashes as an integer. The
//! interpreter and VM hot paths never touch string contents; the debugger,
//! race detector and error paths recover the spelling with
//! [`Symbol::as_str`], which is lock-free: interned strings live in an
//! append-only chunked table whose slots are `OnceLock`s, so readers never
//! contend with writers and a resolved `&'static str` stays valid forever.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// Capacity of the first chunk; chunk `c` holds `FIRST_CHUNK << c` entries.
const FIRST_CHUNK: u32 = 512;
/// 32 doubling chunks cover u32::MAX symbols.
const CHUNK_COUNT: usize = 32;

type Chunk = Box<[OnceLock<&'static str>]>;

struct Interner {
    /// Spelling → id. Intern *hits* take the shared read lock; only the
    /// first sighting of a spelling takes the writer lock.
    map: RwLock<HashMap<&'static str, u32>>,
    /// Append-only id → spelling storage. Slots are written exactly once
    /// (under the map lock) and read without any lock.
    chunks: [OnceLock<Chunk>; CHUNK_COUNT],
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        map: RwLock::new(HashMap::new()),
        chunks: [const { OnceLock::new() }; CHUNK_COUNT],
    })
}

/// Split a symbol index into (chunk, offset within chunk).
#[inline]
fn locate(index: u32) -> (usize, usize) {
    // Chunks double: c=0 holds FIRST_CHUNK ids, c=1 the next 2*FIRST_CHUNK…
    // so id / FIRST_CHUNK + 1 has its top bit at the chunk number.
    let n = index / FIRST_CHUNK + 1;
    let chunk = (31 - n.leading_zeros()) as usize;
    let chunk_start = ((1u64 << chunk) - 1) as u32 * FIRST_CHUNK;
    (chunk, (index - chunk_start) as usize)
}

/// An interned identifier: 4 bytes, `Copy`, integer compare/hash.
///
/// Two `Symbol`s are equal iff their spellings are equal. `Ord` compares
/// spellings (lexicographic), so sorted listings stay human-ordered.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Intern a string, returning its stable handle. O(1) amortized; only
    /// the first sighting of a spelling takes the writer lock.
    pub fn intern(name: &str) -> Symbol {
        let it = interner();
        if let Some(&id) = it.map.read().unwrap().get(name) {
            return Symbol(id);
        }
        let mut map = it.map.write().unwrap();
        // Re-check: another thread may have interned between the locks.
        if let Some(&id) = map.get(name) {
            return Symbol(id);
        }
        let id = map.len() as u32;
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let (chunk_no, offset) = locate(id);
        let chunk = it.chunks[chunk_no].get_or_init(|| {
            let cap = (FIRST_CHUNK as usize) << chunk_no;
            (0..cap).map(|_| OnceLock::new()).collect()
        });
        chunk[offset].set(leaked).expect("symbol slot written twice");
        map.insert(leaked, id);
        Symbol(id)
    }

    /// The spelling. Lock-free: two relaxed-ish `OnceLock` reads.
    #[inline]
    pub fn as_str(self) -> &'static str {
        let it = interner();
        let (chunk_no, offset) = locate(self.0);
        let chunk = it.chunks[chunk_no].get().expect("symbol from a foreign interner");
        chunk[offset].get().expect("symbol from a foreign interner")
    }

    /// The raw id — a dense index usable for side tables.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Symbol) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_spelling_same_symbol() {
        let a = Symbol::intern("alpha");
        let b = Symbol::intern("alpha");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
        assert_eq!(a.as_str(), "alpha");
    }

    #[test]
    fn distinct_spellings_distinct_symbols() {
        assert_ne!(Symbol::intern("x"), Symbol::intern("y"));
        assert_eq!(Symbol::intern("x"), "x");
    }

    #[test]
    fn round_trips_survive_many_symbols() {
        // Force several chunk allocations and verify every spelling
        // round-trips (the property the debugger display relies on).
        let syms: Vec<(String, Symbol)> = (0..4096)
            .map(|i| (format!("sym_rt_{i}"), Symbol::intern(&format!("sym_rt_{i}"))))
            .collect();
        for (name, sym) in &syms {
            assert_eq!(sym.as_str(), name.as_str());
            assert_eq!(*sym, Symbol::intern(name));
        }
    }

    #[test]
    fn ord_is_lexicographic() {
        let mut v = [Symbol::intern("zeta"), Symbol::intern("beta"), Symbol::intern("iota")];
        v.sort();
        let names: Vec<&str> = v.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, ["beta", "iota", "zeta"]);
    }

    #[test]
    fn concurrent_intern_and_read() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..2000 {
                        let s = Symbol::intern(&format!("concurrent_{}", i % 257));
                        assert_eq!(s.as_str(), format!("concurrent_{}", i % 257));
                        let _ = t;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn locate_covers_chunk_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(FIRST_CHUNK - 1), (0, FIRST_CHUNK as usize - 1));
        assert_eq!(locate(FIRST_CHUNK), (1, 0));
        assert_eq!(locate(3 * FIRST_CHUNK - 1), (1, 2 * FIRST_CHUNK as usize - 1));
        assert_eq!(locate(3 * FIRST_CHUNK), (2, 0));
    }
}
