//! API-compatible subset of the `criterion` crate for offline builds.
//!
//! The build environment has no crates.io access, so this crate implements
//! the benchmark-harness surface the workspace uses: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `sample_size`,
//! `throughput`, `bench_function`, `bench_with_input`, [`BenchmarkId`] and
//! `b.iter(..)`.
//!
//! Instead of criterion's statistical analysis it takes `sample_size`
//! wall-clock samples per benchmark (after one warm-up call) and reports
//! mean / min / max. On exit each bench binary additionally writes a
//! machine-readable `BENCH_<target>.json` at the workspace root with one
//! record per benchmark (group, name, parameter, thread count when the
//! parameter is numeric, and nanosecond timings).

use std::fmt::Display;
use std::path::PathBuf;
use std::time::Instant;

pub use std::hint::black_box;

/// One completed measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub group: String,
    pub name: String,
    /// `BenchmarkId` parameter, when one was given.
    pub parameter: Option<String>,
    pub samples: u64,
    pub mean_ns: u128,
    pub min_ns: u128,
    pub max_ns: u128,
    pub throughput_bytes: Option<u64>,
}

/// Top-level harness state; collects results across groups.
pub struct Criterion {
    results: Vec<BenchResult>,
    /// `--test` mode (`cargo test --benches`): run once, skip reporting.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { results: Vec::new(), test_mode }
    }
}

impl Criterion {
    /// Record a deterministic, externally computed scalar (e.g. a
    /// virtual-time result from the VM simulator) as a result row next to
    /// the wall-clock benchmarks, so it lands in `BENCH_<target>.json`
    /// where CI smoke checks can read it.
    pub fn report_value(
        &mut self,
        group: impl Into<String>,
        name: impl Into<String>,
        parameter: Option<&str>,
        value_ns: u64,
    ) {
        if self.test_mode {
            return;
        }
        self.results.push(BenchResult {
            group: group.into(),
            name: name.into(),
            parameter: parameter.map(|p| p.to_string()),
            samples: 1,
            mean_ns: value_ns as u128,
            min_ns: value_ns as u128,
            max_ns: value_ns as u128,
            throughput_bytes: None,
        });
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10, throughput: None }
    }

    /// Prints the human-readable table and writes `BENCH_<target>.json`.
    /// Called by `criterion_main!`.
    pub fn final_summary(&self) {
        if self.test_mode || self.results.is_empty() {
            return;
        }
        println!("\n{:<62} {:>12} {:>12} {:>12}", "benchmark", "mean", "min", "max");
        for r in &self.results {
            let label = match &r.parameter {
                Some(p) => format!("{}/{}/{}", r.group, r.name, p),
                None => format!("{}/{}", r.group, r.name),
            };
            println!(
                "{:<62} {:>12} {:>12} {:>12}",
                label,
                format_ns(r.mean_ns),
                format_ns(r.min_ns),
                format_ns(r.max_ns)
            );
            if let Some(bytes) = r.throughput_bytes {
                let secs = r.mean_ns as f64 / 1e9;
                if secs > 0.0 {
                    println!("{:<62} {:>38.1} MiB/s", "", bytes as f64 / (1024.0 * 1024.0) / secs);
                }
            }
        }
        if let Err(e) = self.write_json() {
            eprintln!("warning: could not write benchmark JSON: {e}");
        }
    }

    fn write_json(&self) -> std::io::Result<()> {
        let path = output_path();
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str("  {");
            out.push_str(&format!("\"group\": {}, ", json_str(&r.group)));
            out.push_str(&format!("\"name\": {}, ", json_str(&r.name)));
            match &r.parameter {
                Some(p) => out.push_str(&format!("\"parameter\": {}, ", json_str(p))),
                None => out.push_str("\"parameter\": null, "),
            }
            // Numeric parameters in this suite are thread counts.
            let threads: Option<u64> = r.parameter.as_deref().and_then(|p| p.parse().ok());
            match threads {
                Some(t) => out.push_str(&format!("\"threads\": {t}, ")),
                None => out.push_str("\"threads\": null, "),
            }
            out.push_str(&format!(
                "\"samples\": {}, \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}",
                r.samples, r.mean_ns, r.min_ns, r.max_ns
            ));
            if let Some(b) = r.throughput_bytes {
                out.push_str(&format!(", \"throughput_bytes\": {b}"));
            }
            out.push_str(if i + 1 == self.results.len() { "}\n" } else { "},\n" });
        }
        out.push_str("]\n");
        std::fs::write(&path, out)?;
        println!("\nwrote {}", path.display());
        Ok(())
    }
}

/// `BENCH_<target>.json`, placed at the workspace root when it can be
/// found by walking up from the current directory, else in the current
/// directory.
fn output_path() -> PathBuf {
    let stem = std::env::args()
        .next()
        .map(|argv0| {
            let file = PathBuf::from(argv0);
            let stem = file.file_stem().and_then(|s| s.to_str()).unwrap_or("bench").to_string();
            // Strip cargo's trailing `-<metadata hash>`.
            match stem.rsplit_once('-') {
                Some((base, hash))
                    if hash.len() == 16 && hash.chars().all(|c| c.is_ascii_hexdigit()) =>
                {
                    base.to_string()
                }
                _ => stem,
            }
        })
        .unwrap_or_else(|| "bench".to_string());
    let file = format!("BENCH_{stem}.json");
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("ROADMAP.md").exists() || dir.join("Cargo.lock").exists() {
            return dir.join(&file);
        }
        let has_workspace_manifest = std::fs::read_to_string(dir.join("Cargo.toml"))
            .map(|s| s.contains("[workspace]"))
            .unwrap_or(false);
        if has_workspace_manifest {
            return dir.join(&file);
        }
        if !dir.pop() {
            return PathBuf::from(file);
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Units for [`BenchmarkGroup::throughput`].
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A named benchmark id, optionally carrying a parameter (e.g. a thread
/// count).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    pub function_name: String,
    pub parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { function_name: function_name.into(), parameter: Some(parameter.to_string()) }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { function_name: String::new(), parameter: Some(parameter.to_string()) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId { function_name: name.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { function_name: name, parameter: None }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(id, |b| f(b));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id, |b| f(b, input));
        self
    }

    fn run_one(&mut self, id: BenchmarkId, mut run: impl FnMut(&mut Bencher)) {
        let samples = if self.criterion.test_mode { 1 } else { self.sample_size };
        let mut bencher = Bencher { samples: Vec::with_capacity(samples), target: samples };
        run(&mut bencher);
        if bencher.samples.is_empty() {
            return;
        }
        let sum: u128 = bencher.samples.iter().sum();
        let result = BenchResult {
            group: self.name.clone(),
            name: if id.function_name.is_empty() { self.name.clone() } else { id.function_name },
            parameter: id.parameter,
            samples: bencher.samples.len() as u64,
            mean_ns: sum / bencher.samples.len() as u128,
            min_ns: *bencher.samples.iter().min().unwrap(),
            max_ns: *bencher.samples.iter().max().unwrap(),
            throughput_bytes: match self.throughput {
                Some(Throughput::Bytes(b)) => Some(b),
                _ => None,
            },
        };
        self.criterion.results.push(result);
    }

    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; `iter` performs the timed runs.
pub struct Bencher {
    samples: Vec<u128>,
    target: usize,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up call, untimed.
        black_box(f());
        for _ in 0..self.target {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed().as_nanos());
        }
    }
}

/// Declares a group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion { results: Vec::new(), test_mode: false };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("work", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
        assert_eq!(c.results.len(), 1);
        let r = &c.results[0];
        assert_eq!((r.group.as_str(), r.name.as_str()), ("g", "work"));
        assert_eq!(r.samples, 3);
        assert!(r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns);
    }

    #[test]
    fn benchmark_id_parameter_parses_as_threads() {
        let id = BenchmarkId::from_parameter(8);
        assert_eq!(id.parameter.as_deref(), Some("8"));
        let id = BenchmarkId::new("gil_on", 4);
        assert_eq!(id.function_name, "gil_on");
        assert_eq!(id.parameter.as_deref(), Some("4"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
