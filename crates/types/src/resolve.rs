//! Resolution pass: assigns every identifier a `(frame_depth, slot)`
//! coordinate so the execution engines can replace name-hashing chain walks
//! with direct indexed loads and stores.
//!
//! ## Scope model
//!
//! Tetra has exactly two kinds of scope at runtime:
//!
//! * the **function frame** — parameters plus every name assigned at
//!   function level. `parallel:` and `background:` bodies introduce *no*
//!   scope: children share the parent's frame (paper §IV).
//! * a **`parallel for` worker frame** — each worker pushes a private frame
//!   holding its copy of the induction variable plus any names the body
//!   defines fresh.
//!
//! ## Soundness against the dynamic semantics
//!
//! The interpreter's dynamic rule is: *reads* walk innermost → outermost and
//! stop at the first frame that binds the name; *assignments* update the
//! innermost frame that already binds the name, else define in the innermost
//! frame. "Binds" is a runtime property — a name is bound only once an
//! assignment actually executed. The resolver therefore tracks, per scope
//! and per program point, whether a name is **definitely** bound, **maybe**
//! bound (only on some control-flow paths: `if` branches, loop bodies,
//! `parallel` children, `catch` handlers), or **never** bound. An access
//! resolves to the first scope (innermost out) whose status is *definite*;
//! if the walk meets a *maybe* first, the coordinate stays dynamic and the
//! engines fall back to the name-based walk, which is always correct.
//!
//! A single-frame chain (function level, outside any `parallel for`) is the
//! common case and needs no such care: every walk can only land in the one
//! frame, so all accesses resolve to its layout slot unconditionally.

use std::collections::HashMap;
use std::sync::Arc;
use tetra_ast::{Block, Expr, ExprKind, FuncDef, NodeId, Program, Stmt, StmtKind, Target};
use tetra_intern::Symbol;
use tetra_runtime::SlotLayout;

/// Coordinate sentinel: identifier must use the dynamic name-based path.
pub const DYNAMIC: u32 = u32::MAX;

/// Per-program resolution results, keyed by [`NodeId`].
#[derive(Debug, Clone, Default)]
pub struct Resolution {
    /// `(up << 16) | slot` per node id; [`DYNAMIC`] when unresolved.
    coords: Vec<u32>,
    /// Frame layout per function, in declaration order.
    func_layouts: Vec<Arc<SlotLayout>>,
    /// Worker-frame layout per `parallel for` statement (keyed by the
    /// statement's id). Slot 0 is always the induction variable.
    pfor_layouts: HashMap<NodeId, Arc<SlotLayout>>,
}

impl Resolution {
    /// The `(frames_up, slot)` coordinate of an identifier node, or `None`
    /// when the access must take the dynamic fallback.
    #[inline]
    pub fn coord(&self, id: NodeId) -> Option<(usize, usize)> {
        let c = self.coords.get(id.0 as usize).copied().unwrap_or(DYNAMIC);
        if c == DYNAMIC {
            None
        } else {
            Some(((c >> 16) as usize, (c & 0xFFFF) as usize))
        }
    }

    /// The frame layout of function `func` (declaration index). Parameters
    /// occupy slots `0..params.len()` in order.
    pub fn func_layout(&self, func: usize) -> Arc<SlotLayout> {
        self.func_layouts.get(func).cloned().unwrap_or_else(SlotLayout::empty)
    }

    /// The worker-frame layout of a `parallel for` statement. Slot 0 is the
    /// induction variable.
    pub fn pfor_layout(&self, stmt: NodeId) -> Arc<SlotLayout> {
        self.pfor_layouts.get(&stmt).cloned().unwrap_or_else(SlotLayout::empty)
    }

    /// An all-dynamic resolution: every access takes the name-based path.
    /// Used by the differential-test oracle and REPL-style evaluation.
    pub fn all_dynamic() -> Resolution {
        Resolution::default()
    }

    /// How many identifier nodes carry a static coordinate (diagnostics).
    pub fn resolved_count(&self) -> usize {
        self.coords.iter().filter(|c| **c != DYNAMIC).count()
    }
}

/// Run the resolution pass over a type-checked program.
pub fn resolve(program: &Program) -> Resolution {
    let mut r = Resolver {
        coords: vec![DYNAMIC; program.node_count as usize],
        scopes: Vec::new(),
        pfor_layouts: HashMap::new(),
        cond_depth: 0,
    };
    let mut func_layouts = Vec::with_capacity(program.funcs.len());
    for f in &program.funcs {
        func_layouts.push(r.resolve_func(f));
    }
    Resolution { coords: r.coords, func_layouts, pfor_layouts: r.pfor_layouts }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Bound on every path reaching this program point.
    Definite,
    /// Bound on some paths only.
    Maybe,
}

struct Scope {
    names: Vec<Symbol>,
    status: HashMap<Symbol, Status>,
    /// `cond_depth` at scope entry; writes made deeper than this are only
    /// maybe-executed from the scope's point of view.
    base_depth: u32,
}

impl Scope {
    fn slot_of(&self, name: Symbol) -> Option<usize> {
        self.names.iter().position(|n| *n == name)
    }
}

struct Resolver {
    coords: Vec<u32>,
    /// Innermost scope last.
    scopes: Vec<Scope>,
    pfor_layouts: HashMap<NodeId, Arc<SlotLayout>>,
    cond_depth: u32,
}

impl Resolver {
    fn resolve_func(&mut self, f: &FuncDef) -> Arc<SlotLayout> {
        let mut names: Vec<Symbol> = f.params.iter().map(|p| p.name).collect();
        collect_assigned(&f.body, &mut names);
        let mut scope = Scope { names, status: HashMap::new(), base_depth: 0 };
        for p in &f.params {
            scope.status.insert(p.name, Status::Definite);
            // Parameters also get coordinates so engines can bind arguments
            // by slot; slot i == parameter i by construction.
        }
        self.cond_depth = 0;
        self.scopes.push(scope);
        for (i, p) in f.params.iter().enumerate() {
            self.record(p.id, 0, i);
        }
        self.block(&f.body);
        let scope = self.scopes.pop().expect("function scope");
        SlotLayout::new(scope.names)
    }

    fn record(&mut self, id: NodeId, up: usize, slot: usize) {
        debug_assert!(up < u16::MAX as usize && slot < u16::MAX as usize);
        if let Some(c) = self.coords.get_mut(id.0 as usize) {
            *c = ((up as u32) << 16) | slot as u32;
        }
    }

    fn innermost(&mut self) -> &mut Scope {
        self.scopes.last_mut().expect("at least one scope")
    }

    /// Mark `name` as written in scope `up` frames out, respecting the
    /// current conditional depth.
    fn mark_written(&mut self, up: usize, name: Symbol) {
        let cond_depth = self.cond_depth;
        let idx = self.scopes.len() - 1 - up;
        let scope = &mut self.scopes[idx];
        let definite = cond_depth == scope.base_depth;
        let entry = scope.status.entry(name).or_insert(if definite {
            Status::Definite
        } else {
            Status::Maybe
        });
        if definite {
            *entry = Status::Definite;
        }
    }

    /// Resolve a read: first scope (innermost out) definitely binding the
    /// name; dynamic if a maybe-bound scope intervenes or nothing binds it.
    fn resolve_read(&self, name: Symbol) -> Option<(usize, usize)> {
        if self.scopes.len() == 1 {
            // Single-frame chain: every walk lands here; a missing slot
            // means the dynamic path errors too, via the same fallback.
            return self.scopes[0].slot_of(name).map(|s| (0, s));
        }
        for (up, scope) in self.scopes.iter().rev().enumerate() {
            match scope.status.get(&name) {
                Some(Status::Definite) => return scope.slot_of(name).map(|s| (up, s)),
                Some(Status::Maybe) => return None,
                None => continue,
            }
        }
        None
    }

    /// Resolve a plain assignment: like a read walk, but a name bound
    /// nowhere defines a fresh slot in the innermost scope.
    fn resolve_write(&mut self, name: Symbol) -> Option<(usize, usize)> {
        if self.scopes.len() == 1 {
            let coord = self.scopes[0].slot_of(name).map(|s| (0, s));
            if coord.is_some() {
                self.mark_written(0, name);
            }
            return coord;
        }
        for (up, scope) in self.scopes.iter().rev().enumerate() {
            match scope.status.get(&name) {
                Some(Status::Definite) => {
                    let coord = scope.slot_of(name).map(|s| (up, s));
                    if coord.is_some() {
                        self.mark_written(up, name);
                    }
                    return coord;
                }
                Some(Status::Maybe) => return None,
                None => continue,
            }
        }
        let coord = self.innermost().slot_of(name).map(|s| (0, s));
        if coord.is_some() {
            self.mark_written(0, name);
        }
        coord
    }

    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn conditional_block(&mut self, b: &Block) {
        self.cond_depth += 1;
        self.block(b);
        self.cond_depth -= 1;
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Expr(e) => self.expr(e),
            StmtKind::Assign { target, op, value } => {
                self.expr(value);
                match target {
                    Target::Name { name, id, .. } => {
                        // A compound assignment reads before it writes, so
                        // the name must already be definitely bound; the
                        // read walk and the write walk then agree on the
                        // frame. A plain `=` may also define fresh.
                        let coord = if op.binop().is_some() {
                            let c = self.resolve_read(*name);
                            if let Some((up, _)) = c {
                                self.mark_written(up, *name);
                            }
                            c
                        } else {
                            self.resolve_write(*name)
                        };
                        if let Some((up, slot)) = coord {
                            self.record(*id, up, slot);
                        }
                    }
                    Target::Index { base, index, .. } => {
                        self.expr(base);
                        self.expr(index);
                    }
                }
            }
            StmtKind::If { cond, then, elifs, els } => {
                self.expr(cond);
                self.conditional_block(then);
                for (c, b) in elifs {
                    self.expr(c);
                    self.conditional_block(b);
                }
                if let Some(b) = els {
                    self.conditional_block(b);
                }
            }
            StmtKind::While { cond, body } => {
                self.expr(cond);
                self.conditional_block(body);
            }
            StmtKind::For { var, var_id, iter, body } => {
                self.expr(iter);
                // The induction variable is (re)defined in the innermost
                // frame each iteration; it is definitely bound inside the
                // body, but the loop may run zero times.
                let prior = self.innermost().status.get(var).copied();
                if let Some(slot) = self.innermost().slot_of(*var) {
                    self.record(*var_id, 0, slot);
                }
                self.innermost().status.insert(*var, Status::Definite);
                self.conditional_block(body);
                if prior != Some(Status::Definite) {
                    self.innermost().status.insert(*var, Status::Maybe);
                }
            }
            StmtKind::ParallelFor { var, var_id, iter, body } => {
                self.expr(iter);
                // Worker frames hold the induction variable at slot 0 plus
                // every name the body might define fresh. Unused slots stay
                // unbound and cost nothing.
                let mut names = vec![*var];
                collect_assigned(body, &mut names);
                self.record(*var_id, 0, 0);
                self.cond_depth += 1;
                let mut scope =
                    Scope { names, status: HashMap::new(), base_depth: self.cond_depth };
                scope.status.insert(*var, Status::Definite);
                self.scopes.push(scope);
                self.block(body);
                let scope = self.scopes.pop().expect("pfor scope");
                self.cond_depth -= 1;
                self.pfor_layouts.insert(s.id, SlotLayout::new(scope.names));
            }
            StmtKind::Parallel { body } | StmtKind::Background { body } => {
                // Children share the frame but run concurrently: none of
                // their writes can be treated as ordered before a sibling's
                // reads, so everything they bind is only maybe-bound.
                self.conditional_block(body);
            }
            StmtKind::Lock { body, .. } => self.block(body),
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    self.expr(e);
                }
            }
            StmtKind::Break | StmtKind::Continue | StmtKind::Pass => {}
            StmtKind::Assert { cond, message } => {
                self.expr(cond);
                if let Some(m) = message {
                    self.expr(m);
                }
            }
            StmtKind::Try { body, err_name, err_id, handler } => {
                self.conditional_block(body);
                // The handler binds the error message with *assignment*
                // semantics (it may update an outer frame already binding
                // the name), and only on the error path.
                self.cond_depth += 1;
                if let Some((up, slot)) = self.resolve_write(*err_name) {
                    self.record(*err_id, up, slot);
                }
                self.block(handler);
                self.cond_depth -= 1;
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Var(name) => {
                if let Some((up, slot)) = self.resolve_read(*name) {
                    self.record(e.id, up, slot);
                }
            }
            ExprKind::Int(_)
            | ExprKind::Real(_)
            | ExprKind::Str(_)
            | ExprKind::Bool(_)
            | ExprKind::None => {}
            ExprKind::Unary { operand, .. } => self.expr(operand),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            ExprKind::Call { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::Index { base, index } => {
                self.expr(base);
                self.expr(index);
            }
            ExprKind::Array(items) | ExprKind::Tuple(items) => {
                for i in items {
                    self.expr(i);
                }
            }
            ExprKind::Range { lo, hi } => {
                self.expr(lo);
                self.expr(hi);
            }
            ExprKind::Dict(pairs) => {
                for (k, v) in pairs {
                    self.expr(k);
                    self.expr(v);
                }
            }
        }
    }
}

/// Collect, in first-appearance order, every name this block could define in
/// the *current* scope: assignment targets, loop induction variables and
/// `catch` bindings. `parallel for` bodies are skipped — they define into
/// their own worker scope.
fn collect_assigned(b: &Block, out: &mut Vec<Symbol>) {
    fn push(out: &mut Vec<Symbol>, name: Symbol) {
        if !out.contains(&name) {
            out.push(name);
        }
    }
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Assign { target: Target::Name { name, .. }, .. } => push(out, *name),
            StmtKind::Assign { .. } | StmtKind::Expr(_) => {}
            StmtKind::If { then, elifs, els, .. } => {
                collect_assigned(then, out);
                for (_, b) in elifs {
                    collect_assigned(b, out);
                }
                if let Some(b) = els {
                    collect_assigned(b, out);
                }
            }
            StmtKind::While { body, .. } | StmtKind::Lock { body, .. } => {
                collect_assigned(body, out);
            }
            StmtKind::For { var, body, .. } => {
                push(out, *var);
                collect_assigned(body, out);
            }
            StmtKind::ParallelFor { .. } => {}
            StmtKind::Parallel { body } | StmtKind::Background { body } => {
                collect_assigned(body, out);
            }
            StmtKind::Try { body, err_name, handler, .. } => {
                collect_assigned(body, out);
                push(out, *err_name);
                collect_assigned(handler, out);
            }
            StmtKind::Return(_)
            | StmtKind::Break
            | StmtKind::Continue
            | StmtKind::Pass
            | StmtKind::Assert { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetra_parser::parse;

    fn resolve_src(src: &str) -> (Program, Resolution) {
        let program = parse(src).expect("parse");
        let res = resolve(&program);
        (program, res)
    }

    /// Find the Var expression node for `name` inside function `func`.
    fn var_nodes(program: &Program, func: &str, name: &str) -> Vec<NodeId> {
        let mut out = Vec::new();
        let f = program.func(func).expect("func");
        let want = Symbol::intern(name);
        fn walk_expr(e: &Expr, want: Symbol, out: &mut Vec<NodeId>) {
            if let ExprKind::Var(n) = &e.kind {
                if *n == want {
                    out.push(e.id);
                }
            }
            match &e.kind {
                ExprKind::Unary { operand, .. } => walk_expr(operand, want, out),
                ExprKind::Binary { lhs, rhs, .. } => {
                    walk_expr(lhs, want, out);
                    walk_expr(rhs, want, out);
                }
                ExprKind::Call { args, .. } => args.iter().for_each(|a| walk_expr(a, want, out)),
                ExprKind::Index { base, index } => {
                    walk_expr(base, want, out);
                    walk_expr(index, want, out);
                }
                ExprKind::Array(xs) | ExprKind::Tuple(xs) => {
                    xs.iter().for_each(|x| walk_expr(x, want, out))
                }
                ExprKind::Range { lo, hi } => {
                    walk_expr(lo, want, out);
                    walk_expr(hi, want, out);
                }
                ExprKind::Dict(ps) => ps.iter().for_each(|(k, v)| {
                    walk_expr(k, want, out);
                    walk_expr(v, want, out);
                }),
                _ => {}
            }
        }
        fn walk_block(b: &Block, want: Symbol, out: &mut Vec<NodeId>) {
            for s in &b.stmts {
                match &s.kind {
                    StmtKind::Expr(e) => walk_expr(e, want, out),
                    StmtKind::Assign { target, value, .. } => {
                        if let Target::Index { base, index, .. } = target {
                            walk_expr(base, want, out);
                            walk_expr(index, want, out);
                        }
                        walk_expr(value, want, out);
                    }
                    StmtKind::If { cond, then, elifs, els } => {
                        walk_expr(cond, want, out);
                        walk_block(then, want, out);
                        for (c, b) in elifs {
                            walk_expr(c, want, out);
                            walk_block(b, want, out);
                        }
                        if let Some(b) = els {
                            walk_block(b, want, out);
                        }
                    }
                    StmtKind::While { cond, body } => {
                        walk_expr(cond, want, out);
                        walk_block(body, want, out);
                    }
                    StmtKind::For { iter, body, .. } | StmtKind::ParallelFor { iter, body, .. } => {
                        walk_expr(iter, want, out);
                        walk_block(body, want, out);
                    }
                    StmtKind::Parallel { body }
                    | StmtKind::Background { body }
                    | StmtKind::Lock { body, .. } => walk_block(body, want, out),
                    StmtKind::Return(Some(e)) => walk_expr(e, want, out),
                    StmtKind::Assert { cond, message } => {
                        walk_expr(cond, want, out);
                        if let Some(m) = message {
                            walk_expr(m, want, out);
                        }
                    }
                    StmtKind::Try { body, handler, .. } => {
                        walk_block(body, want, out);
                        walk_block(handler, want, out);
                    }
                    _ => {}
                }
            }
        }
        walk_block(&f.body, want, &mut out);
        out
    }

    #[test]
    fn function_level_names_resolve_to_frame_slots() {
        let (p, r) = resolve_src("def main():\n    x = 1\n    y = x + 2\n    print(y)\n");
        let layout = r.func_layout(0);
        assert_eq!(layout.names().len(), 2);
        for id in var_nodes(&p, "main", "x") {
            assert_eq!(r.coord(id), Some((0, 0)), "x reads resolve to slot 0");
        }
        for id in var_nodes(&p, "main", "y") {
            assert_eq!(r.coord(id), Some((0, 1)));
        }
    }

    #[test]
    fn params_occupy_leading_slots() {
        let (_, r) = resolve_src(
            "def add(a int, b int) int:\n    c = a + b\n    return c\ndef main():\n    print(add(1, 2))\n",
        );
        let layout = r.func_layout(0);
        assert_eq!(layout.names()[0], "a");
        assert_eq!(layout.names()[1], "b");
        assert_eq!(layout.names()[2], "c");
    }

    #[test]
    fn conditional_names_still_resolve_in_single_frame() {
        // With only the function frame in the chain, even a conditionally
        // assigned name has exactly one possible home.
        let (p, r) = resolve_src("def main():\n    if true:\n        x = 1\n    print(x)\n");
        let reads = var_nodes(&p, "main", "x");
        assert!(reads.iter().all(|id| r.coord(*id).is_some()));
    }

    #[test]
    fn pfor_induction_var_is_worker_slot_zero() {
        let (p, r) =
            resolve_src("def main():\n    parallel for i in [1 ... 4]:\n        print(i)\n");
        let reads = var_nodes(&p, "main", "i");
        assert_eq!(reads.len(), 1);
        assert_eq!(r.coord(reads[0]), Some((0, 0)), "induction var at worker slot 0");
        assert_eq!(r.pfor_layouts.len(), 1);
        let layout = r.pfor_layouts.values().next().unwrap();
        assert_eq!(layout.names()[0], "i");
    }

    #[test]
    fn pfor_body_reaches_outer_definite_names() {
        let (p, r) = resolve_src(
            "def main():\n    total = 0\n    parallel for i in [1 ... 4]:\n        lock sum:\n            total = total + i\n    print(total)\n",
        );
        let reads = var_nodes(&p, "main", "total");
        // total was definitely bound before the loop: body accesses resolve
        // one frame up.
        for id in &reads {
            let c = r.coord(*id).expect("resolved");
            assert!(c == (1, 0) || c == (0, 0), "inner (1,0) or outer (0,0), got {c:?}");
        }
        assert!(reads.iter().any(|id| r.coord(*id) == Some((1, 0))), "body read goes 1 up");
    }

    #[test]
    fn ambiguous_binding_falls_back_to_dynamic() {
        // `x` is only maybe-bound at function level when the loop body runs,
        // so the body access must stay dynamic.
        let (p, r) = resolve_src(
            "def main():\n    if true:\n        x = 1\n    parallel for i in [1 ... 2]:\n        x = 2\n    print(x)\n",
        );
        let f = p.func("main").unwrap();
        // Find the assignment target inside the parallel for body.
        let mut pfor_target = None;
        for s in &f.body.stmts {
            if let StmtKind::ParallelFor { body, .. } = &s.kind {
                for bs in &body.stmts {
                    if let StmtKind::Assign { target: Target::Name { id, .. }, .. } = &bs.kind {
                        pfor_target = Some(*id);
                    }
                }
            }
        }
        assert_eq!(r.coord(pfor_target.expect("target")), None, "must stay dynamic");
    }

    #[test]
    fn fresh_names_in_pfor_body_are_worker_private() {
        let (p, r) = resolve_src(
            "def main():\n    parallel for i in [1 ... 4]:\n        sq = i * i\n        print(sq)\n",
        );
        let reads = var_nodes(&p, "main", "sq");
        assert_eq!(reads.len(), 1);
        assert_eq!(r.coord(reads[0]), Some((0, 1)), "sq lives in the worker frame");
    }

    #[test]
    fn all_dynamic_resolution_resolves_nothing() {
        let r = Resolution::all_dynamic();
        assert_eq!(r.coord(NodeId(0)), None);
        assert_eq!(r.resolved_count(), 0);
        assert!(r.func_layout(3).is_empty());
    }
}
