//! The Tetra type checker.
//!
//! Per the paper (§II, §IV): Tetra is statically typed; parameters and
//! return types are declared; local variable types are inferred with "a
//! simple flow-based algorithm" over the function body. Each local has one
//! type for the whole function — the first assignment fixes it, later
//! assignments must conform (with implicit `int → real` widening of the
//! assigned *value*, never of the variable's type).
//!
//! Additional rules beyond the paper, chosen for teachability:
//! * `return` / `break` / `continue` may not cross a thread boundary
//!   (`parallel:`, `background:`, `parallel for`) — each is rejected
//!   statically with an explanation;
//! * a function with a non-`none` return type must return on every path;
//! * empty `[]` / `{}` literals need an expected type from context
//!   (assignment to a typed variable, argument, or return position).

use crate::resolve::Resolution;
use std::collections::HashMap;
use tetra_ast::*;
use tetra_intern::Symbol;
use tetra_lexer::{Diagnostic, Span, Stage};
use tetra_stdlib::{check_builtin_call, compatible, Builtin};

/// Who a call site resolves to. User functions shadow builtins (Fig. II
/// defines its own `sum`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Callee {
    /// Index into `Program::funcs`.
    User(usize),
    Builtin(Builtin),
}

/// A type-checked program: the AST plus the side tables later stages use.
#[derive(Debug, Clone)]
pub struct TypedProgram {
    pub program: Program,
    /// Type of every expression, keyed by its `NodeId`.
    pub expr_types: HashMap<NodeId, Type>,
    /// Resolution of every call expression, keyed by the call's `NodeId`.
    pub callees: HashMap<NodeId, Callee>,
    /// Inferred type of each local, keyed by (function index, name).
    pub var_types: HashMap<(usize, Symbol), Type>,
    /// Static (frame, slot) coordinates and frame layouts from the
    /// resolution pass; drives the engines' indexed variable access.
    pub resolution: Resolution,
}

impl TypedProgram {
    /// The type the checker assigned to an expression.
    pub fn type_of(&self, id: NodeId) -> &Type {
        &self.expr_types[&id]
    }

    /// Inferred type of a local variable in function `func`.
    pub fn var_type(&self, func: usize, name: &str) -> Option<&Type> {
        self.var_types.get(&(func, Symbol::intern(name)))
    }
}

/// Type-check a parsed program. On failure, every diagnostic found is
/// returned (the checker recovers at statement granularity).
pub fn check(program: Program) -> Result<TypedProgram, Vec<Diagnostic>> {
    let mut checker = Checker::new(&program);
    for (idx, func) in program.funcs.iter().enumerate() {
        checker.check_func(idx, func);
    }
    checker.check_main(&program);
    if checker.errors.is_empty() {
        let resolution = crate::resolve::resolve(&program);
        Ok(TypedProgram {
            program,
            expr_types: checker.expr_types,
            callees: checker.callees,
            var_types: checker.var_types,
            resolution,
        })
    } else {
        Err(checker.errors)
    }
}

struct FuncSig {
    index: usize,
    params: Vec<Type>,
    ret: Type,
}

struct Checker {
    sigs: HashMap<Symbol, FuncSig>,
    errors: Vec<Diagnostic>,
    expr_types: HashMap<NodeId, Type>,
    callees: HashMap<NodeId, Callee>,
    var_types: HashMap<(usize, Symbol), Type>,
    // Per-function state:
    locals: HashMap<Symbol, Type>,
    current_func: usize,
    current_ret: Type,
    loop_depth: u32,
    /// Name of the innermost enclosing thread-spawning construct, if any.
    parallel_ctx: Option<&'static str>,
}

/// Marker for a statement whose type checking failed; recovery continues
/// with the next statement.
struct Bail;

type CResult<T> = Result<T, Bail>;

impl Checker {
    fn new(program: &Program) -> Checker {
        let mut sigs = HashMap::new();
        for (index, f) in program.funcs.iter().enumerate() {
            sigs.insert(
                f.name,
                FuncSig {
                    index,
                    params: f.params.iter().map(|p| p.ty.clone()).collect(),
                    ret: f.ret.clone(),
                },
            );
        }
        Checker {
            sigs,
            errors: Vec::new(),
            expr_types: HashMap::new(),
            callees: HashMap::new(),
            var_types: HashMap::new(),
            locals: HashMap::new(),
            current_func: 0,
            current_ret: Type::None,
            loop_depth: 0,
            parallel_ctx: None,
        }
    }

    fn error(&mut self, msg: impl Into<String>, span: Span) -> Bail {
        self.errors.push(Diagnostic::new(Stage::Type, msg, span));
        Bail
    }

    fn error_help(&mut self, msg: impl Into<String>, span: Span, help: impl Into<String>) -> Bail {
        self.errors.push(Diagnostic::new(Stage::Type, msg, span).with_help(help));
        Bail
    }

    fn check_main(&mut self, program: &Program) {
        match program.func("main") {
            None => {
                self.errors.push(
                    Diagnostic::new(Stage::Type, "no `main` function defined", Span::DUMMY)
                        .with_help("execution starts at `def main():`"),
                );
            }
            Some(main) => {
                if !main.params.is_empty() {
                    self.errors.push(Diagnostic::new(
                        Stage::Type,
                        "`main` must not take parameters",
                        main.span,
                    ));
                }
                if main.ret != Type::None {
                    self.errors.push(Diagnostic::new(
                        Stage::Type,
                        "`main` must not declare a return type",
                        main.span,
                    ));
                }
            }
        }
    }

    fn check_func(&mut self, idx: usize, func: &FuncDef) {
        self.locals.clear();
        self.current_func = idx;
        self.current_ret = func.ret.clone();
        self.loop_depth = 0;
        self.parallel_ctx = None;
        for p in &func.params {
            self.locals.insert(p.name, p.ty.clone());
        }
        let returns = self.check_block(&func.body);
        if func.ret != Type::None && !returns {
            self.errors.push(
                Diagnostic::new(
                    Stage::Type,
                    format!(
                        "function `{}` is declared to return {} but may reach the end without returning",
                        func.name, func.ret
                    ),
                    func.span,
                )
                .with_help("add a `return` to every path through the function"),
            );
        }
        for (name, ty) in self.locals.drain() {
            self.var_types.insert((idx, name), ty);
        }
    }

    /// Check a block; returns whether it definitely returns.
    fn check_block(&mut self, block: &Block) -> bool {
        let mut returns = false;
        for stmt in &block.stmts {
            // Recover at statement granularity: an error in one statement
            // does not hide errors in the next.
            if let Ok(r) = self.check_stmt(stmt) {
                returns = returns || r;
            }
        }
        returns
    }

    /// Check one statement; `Ok(true)` means it definitely returns.
    fn check_stmt(&mut self, stmt: &Stmt) -> CResult<bool> {
        match &stmt.kind {
            StmtKind::Expr(e) => {
                self.infer(e, None)?;
                Ok(false)
            }
            StmtKind::Assign { target, op, value } => {
                self.check_assign(target, *op, value, stmt.span)?;
                Ok(false)
            }
            StmtKind::If { cond, then, elifs, els } => {
                self.check_cond(cond)?;
                let mut all_return = self.check_block(then);
                for (c, b) in elifs {
                    let _ = self.check_cond(c);
                    all_return &= self.check_block(b);
                }
                match els {
                    Some(b) => all_return &= self.check_block(b),
                    None => all_return = false,
                }
                Ok(all_return)
            }
            StmtKind::While { cond, body } => {
                self.check_cond(cond)?;
                self.loop_depth += 1;
                self.check_block(body);
                self.loop_depth -= 1;
                Ok(false)
            }
            StmtKind::For { var, var_id, iter, body } => {
                let elem = self.check_iterable(iter)?;
                self.bind_loop_var(*var, elem.clone(), *var_id, stmt.span)?;
                self.expr_types.insert(*var_id, elem);
                self.loop_depth += 1;
                self.check_block(body);
                self.loop_depth -= 1;
                Ok(false)
            }
            StmtKind::ParallelFor { var, var_id, iter, body } => {
                let elem = self.check_iterable(iter)?;
                self.bind_loop_var(*var, elem.clone(), *var_id, stmt.span)?;
                self.expr_types.insert(*var_id, elem);
                let saved = self.parallel_ctx;
                let saved_depth = self.loop_depth;
                self.parallel_ctx = Some("parallel for");
                self.loop_depth = 0; // break/continue may not cross threads
                self.check_block(body);
                self.loop_depth = saved_depth;
                self.parallel_ctx = saved;
                Ok(false)
            }
            StmtKind::Parallel { body } | StmtKind::Background { body } => {
                let which = if matches!(stmt.kind, StmtKind::Parallel { .. }) {
                    "parallel"
                } else {
                    "background"
                };
                if body.stmts.is_empty() {
                    return Err(self.error(format!("`{which}:` block is empty"), stmt.span));
                }
                let saved = self.parallel_ctx;
                let saved_depth = self.loop_depth;
                self.parallel_ctx = Some(which);
                self.loop_depth = 0;
                self.check_block(body);
                self.loop_depth = saved_depth;
                self.parallel_ctx = saved;
                Ok(false)
            }
            StmtKind::Lock { body, .. } => Ok(self.check_block(body)),
            StmtKind::Return(value) => {
                if let Some(ctx) = self.parallel_ctx {
                    return Err(self.error_help(
                        format!("`return` cannot be used inside a `{ctx}` construct"),
                        stmt.span,
                        "the statement runs in its own thread; store the result in a variable instead",
                    ));
                }
                match (value, self.current_ret.clone()) {
                    (None, Type::None) => {}
                    (None, ret) => {
                        return Err(self.error(
                            format!("this function must return a value of type {ret}"),
                            stmt.span,
                        ))
                    }
                    (Some(e), Type::None) => {
                        let t = self.infer(e, None)?;
                        if t != Type::None {
                            return Err(self.error_help(
                                format!("cannot return a {t} from a function with no declared return type"),
                                e.span,
                                "declare the return type: `def f(...) <type>:`",
                            ));
                        }
                    }
                    (Some(e), ret) => {
                        let t = self.infer(e, Some(&ret))?;
                        if !compatible(&ret, &t) {
                            return Err(self.error(
                                format!("return type mismatch: expected {ret}, found {t}"),
                                e.span,
                            ));
                        }
                    }
                }
                Ok(true)
            }
            StmtKind::Break | StmtKind::Continue => {
                let what = if matches!(stmt.kind, StmtKind::Break) { "break" } else { "continue" };
                if self.loop_depth == 0 {
                    let msg = if let Some(ctx) = self.parallel_ctx {
                        format!("`{what}` cannot cross the thread boundary of a `{ctx}` construct")
                    } else {
                        format!("`{what}` outside of a loop")
                    };
                    return Err(self.error(msg, stmt.span));
                }
                Ok(false)
            }
            StmtKind::Pass => Ok(false),
            StmtKind::Assert { cond, message } => {
                self.check_cond(cond)?;
                if let Some(m) = message {
                    self.infer(m, None)?;
                }
                Ok(false)
            }
            StmtKind::Try { body, err_name, err_id, handler } => {
                let body_returns = self.check_block(body);
                // The error variable binds the message as a string.
                match self.locals.get(err_name) {
                    None => {
                        self.locals.insert(*err_name, Type::Str);
                    }
                    Some(t) if *t == Type::Str => {}
                    Some(other) => {
                        let other = other.clone();
                        return Err(self.error(
                            format!(
                                "catch variable `{err_name}` would be a string, but `{err_name}` already has type {other}"
                            ),
                            stmt.span,
                        ));
                    }
                }
                self.expr_types.insert(*err_id, Type::Str);
                let handler_returns = self.check_block(handler);
                Ok(body_returns && handler_returns)
            }
        }
    }

    fn bind_loop_var(&mut self, var: Symbol, elem: Type, _id: NodeId, span: Span) -> CResult<()> {
        match self.locals.get(&var) {
            None => {
                self.locals.insert(var, elem);
                Ok(())
            }
            Some(existing) if *existing == elem => Ok(()),
            Some(existing) => {
                let existing = existing.clone();
                Err(self.error(
                    format!(
                        "loop variable `{var}` would have type {elem}, but `{var}` already has type {existing}"
                    ),
                    span,
                ))
            }
        }
    }

    fn check_cond(&mut self, cond: &Expr) -> CResult<()> {
        let t = self.infer(cond, Some(&Type::Bool))?;
        if t != Type::Bool {
            return Err(self.error_help(
                format!("condition must be a bool, found {t}"),
                cond.span,
                "Tetra has no truthiness: write an explicit comparison",
            ));
        }
        Ok(())
    }

    fn check_iterable(&mut self, iter: &Expr) -> CResult<Type> {
        let t = self.infer(iter, None)?;
        match t.element() {
            Some(elem) => Ok(elem),
            None => Err(self.error(format!("cannot iterate over a value of type {t}"), iter.span)),
        }
    }

    fn check_assign(
        &mut self,
        target: &Target,
        op: AssignOp,
        value: &Expr,
        span: Span,
    ) -> CResult<()> {
        match target {
            Target::Name { name, span: tspan, id } => {
                let expected = self.locals.get(name).cloned();
                match op.binop() {
                    None => {
                        let vt = self.infer(value, expected.as_ref())?;
                        match expected {
                            None => {
                                if vt == Type::None {
                                    return Err(self.error(
                                        format!("cannot assign `none` to `{name}`"),
                                        value.span,
                                    ));
                                }
                                self.locals.insert(*name, vt.clone());
                                self.expr_types.insert(*id, vt);
                            }
                            Some(et) => {
                                if !compatible(&et, &vt) {
                                    return Err(self.error_help(
                                        format!(
                                            "cannot assign a {vt} to `{name}`, which has type {et}"
                                        ),
                                        span,
                                        "a variable keeps the type of its first assignment",
                                    ));
                                }
                                self.expr_types.insert(*id, et);
                            }
                        }
                    }
                    Some(binop) => {
                        let Some(et) = expected else {
                            return Err(self
                                .error(format!("`{name}` is used before any assignment"), *tspan));
                        };
                        let vt = self.infer(value, Some(&et))?;
                        let rt = self.binary_result(binop, &et, &vt, span)?;
                        if !compatible(&et, &rt) {
                            return Err(self.error(
                                format!(
                                    "`{name} {} ...` would produce a {rt}, but `{name}` has type {et}",
                                    op.symbol()
                                ),
                                span,
                            ));
                        }
                        self.expr_types.insert(*id, et);
                    }
                }
                Ok(())
            }
            Target::Index { base, index, id, .. } => {
                let bt = self.infer(base, None)?;
                let (elem, key_desc): (Type, &str) = match &bt {
                    Type::Array(t) => {
                        let it = self.infer(index, Some(&Type::Int))?;
                        if it != Type::Int {
                            return Err(self.error(
                                format!("array index must be an int, found {it}"),
                                index.span,
                            ));
                        }
                        ((**t).clone(), "element")
                    }
                    Type::Dict(k, v) => {
                        let it = self.infer(index, Some(k))?;
                        if !compatible(k, &it) {
                            return Err(
                                self.error(format!("dict key must be {k}, found {it}"), index.span)
                            );
                        }
                        ((**v).clone(), "value")
                    }
                    Type::Str => {
                        return Err(self.error_help(
                            "strings are immutable and cannot be assigned into".to_string(),
                            span,
                            "build a new string with substr/replace/+ instead",
                        ))
                    }
                    Type::Tuple(_) => {
                        return Err(self.error(
                            "tuples are immutable and cannot be assigned into".to_string(),
                            span,
                        ))
                    }
                    other => {
                        return Err(self.error(
                            format!("cannot index into a value of type {other}"),
                            base.span,
                        ))
                    }
                };
                let effective = match op.binop() {
                    None => self.infer(value, Some(&elem))?,
                    Some(binop) => {
                        let vt = self.infer(value, Some(&elem))?;
                        self.binary_result(binop, &elem, &vt, span)?
                    }
                };
                if !compatible(&elem, &effective) {
                    return Err(self.error(
                        format!("cannot store a {effective} as the {key_desc} of a {bt}"),
                        span,
                    ));
                }
                self.expr_types.insert(*id, elem);
                Ok(())
            }
        }
    }

    /// The result type of `lhs op rhs`, or an error.
    fn binary_result(&mut self, op: BinOp, lt: &Type, rt: &Type, span: Span) -> CResult<Type> {
        use BinOp::*;
        match op {
            Add | Sub | Mul | Div | Mod => {
                if lt.is_numeric() && rt.is_numeric() {
                    if *lt == Type::Int && *rt == Type::Int {
                        Ok(Type::Int)
                    } else {
                        Ok(Type::Real)
                    }
                } else if op == Add && *lt == Type::Str && *rt == Type::Str {
                    Ok(Type::Str)
                } else if op == Add && matches!(lt, Type::Array(_)) && lt == rt {
                    Ok(lt.clone())
                } else if op == Add && (*lt == Type::Str || *rt == Type::Str) {
                    Err(self.error_help(
                        format!("cannot add {lt} and {rt}"),
                        span,
                        "convert explicitly with str(...), e.g. str(n) + \" items\"",
                    ))
                } else {
                    Err(self.error(
                        format!("operator `{}` does not apply to {lt} and {rt}", op.symbol()),
                        span,
                    ))
                }
            }
            Eq | Ne => {
                let ok = lt == rt || (lt.is_numeric() && rt.is_numeric());
                if ok {
                    Ok(Type::Bool)
                } else {
                    Err(self.error(format!("cannot compare {lt} with {rt}"), span))
                }
            }
            Lt | Gt | Le | Ge => {
                let ok =
                    (lt.is_numeric() && rt.is_numeric()) || (*lt == Type::Str && *rt == Type::Str);
                if ok {
                    Ok(Type::Bool)
                } else {
                    Err(self.error(
                        format!(
                            "operator `{}` needs two numbers or two strings, found {lt} and {rt}",
                            op.symbol()
                        ),
                        span,
                    ))
                }
            }
            And | Or => {
                if *lt == Type::Bool && *rt == Type::Bool {
                    Ok(Type::Bool)
                } else {
                    Err(self.error(
                        format!("`{}` needs bool operands, found {lt} and {rt}", op.symbol()),
                        span,
                    ))
                }
            }
        }
    }

    /// Infer the type of an expression. `expected` guides empty container
    /// literals and produces better messages; it is advisory, not checked
    /// here (callers verify compatibility).
    fn infer(&mut self, e: &Expr, expected: Option<&Type>) -> CResult<Type> {
        let t = self.infer_inner(e, expected)?;
        self.expr_types.insert(e.id, t.clone());
        Ok(t)
    }

    fn infer_inner(&mut self, e: &Expr, expected: Option<&Type>) -> CResult<Type> {
        match &e.kind {
            ExprKind::Int(_) => Ok(Type::Int),
            ExprKind::Real(_) => Ok(Type::Real),
            ExprKind::Str(_) => Ok(Type::Str),
            ExprKind::Bool(_) => Ok(Type::Bool),
            ExprKind::None => Ok(Type::None),
            ExprKind::Var(name) => match self.locals.get(name) {
                Some(t) => Ok(t.clone()),
                None => {
                    let msg = if self.sigs.contains_key(name) {
                        format!("`{name}` is a function; call it with parentheses")
                    } else {
                        format!("variable `{name}` is used before any assignment")
                    };
                    Err(self.error(msg, e.span))
                }
            },
            ExprKind::Unary { op, operand } => match op {
                UnOp::Neg => {
                    let t = self.infer(operand, expected)?;
                    if t.is_numeric() {
                        Ok(t)
                    } else {
                        Err(self.error(format!("cannot negate a {t}"), e.span))
                    }
                }
                UnOp::Not => {
                    let t = self.infer(operand, Some(&Type::Bool))?;
                    if t == Type::Bool {
                        Ok(Type::Bool)
                    } else {
                        Err(self.error(format!("`not` needs a bool, found {t}"), e.span))
                    }
                }
            },
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.infer(lhs, None)?;
                let rt = self.infer(rhs, None)?;
                self.binary_result(*op, &lt, &rt, e.span)
            }
            ExprKind::Call { callee, args } => self.check_call(e, *callee, args, expected),
            ExprKind::Index { base, index } => {
                let bt = self.infer(base, None)?;
                match &bt {
                    Type::Array(t) => {
                        let it = self.infer(index, Some(&Type::Int))?;
                        if it != Type::Int {
                            return Err(self.error(
                                format!("array index must be an int, found {it}"),
                                index.span,
                            ));
                        }
                        Ok((**t).clone())
                    }
                    Type::Str => {
                        let it = self.infer(index, Some(&Type::Int))?;
                        if it != Type::Int {
                            return Err(self.error(
                                format!("string index must be an int, found {it}"),
                                index.span,
                            ));
                        }
                        Ok(Type::Str)
                    }
                    Type::Dict(k, v) => {
                        let it = self.infer(index, Some(k))?;
                        if !compatible(k, &it) {
                            return Err(
                                self.error(format!("dict key must be {k}, found {it}"), index.span)
                            );
                        }
                        Ok((**v).clone())
                    }
                    Type::Tuple(ts) => {
                        // Tuples need a constant index so the result type is
                        // known statically.
                        self.infer(index, Some(&Type::Int))?;
                        match index.kind {
                            ExprKind::Int(i) if i >= 0 && (i as usize) < ts.len() => {
                                Ok(ts[i as usize].clone())
                            }
                            ExprKind::Int(i) => Err(self.error(
                                format!(
                                    "tuple index {i} out of bounds for a tuple of {} elements",
                                    ts.len()
                                ),
                                index.span,
                            )),
                            _ => Err(self.error_help(
                                "tuple indices must be integer literals".to_string(),
                                index.span,
                                "the element type must be known at compile time",
                            )),
                        }
                    }
                    other => {
                        Err(self
                            .error(format!("cannot index into a value of type {other}"), base.span))
                    }
                }
            }
            ExprKind::Array(items) => {
                if items.is_empty() {
                    return match expected {
                        Some(Type::Array(t)) => Ok(Type::array((**t).clone())),
                        _ => Err(self.error_help(
                            "cannot infer the element type of an empty array".to_string(),
                            e.span,
                            "give the context a type, e.g. assign it to a typed parameter or use fill(0, v)",
                        )),
                    };
                }
                let expected_elem = match expected {
                    Some(Type::Array(t)) => Some((**t).clone()),
                    _ => None,
                };
                let mut unified = self.infer(&items[0], expected_elem.as_ref())?;
                for item in &items[1..] {
                    let t = self.infer(item, Some(&unified))?;
                    unified = match self.unify_numeric(&unified, &t) {
                        Some(u) => u,
                        None => {
                            return Err(self.error(
                                format!(
                                    "array elements must share one type: found {unified} and {t}"
                                ),
                                item.span,
                            ))
                        }
                    };
                }
                Ok(Type::array(unified))
            }
            ExprKind::Range { lo, hi } => {
                for bound in [lo, hi] {
                    let t = self.infer(bound, Some(&Type::Int))?;
                    if t != Type::Int {
                        return Err(
                            self.error(format!("range bounds must be ints, found {t}"), bound.span)
                        );
                    }
                }
                Ok(Type::array(Type::Int))
            }
            ExprKind::Tuple(items) => {
                let expected_parts = match expected {
                    Some(Type::Tuple(ts)) if ts.len() == items.len() => Some(ts.clone()),
                    _ => None,
                };
                let mut parts = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    let exp = expected_parts.as_ref().map(|ts| &ts[i]);
                    parts.push(self.infer(item, exp)?);
                }
                Ok(Type::Tuple(parts))
            }
            ExprKind::Dict(pairs) => {
                if pairs.is_empty() {
                    return match expected {
                        Some(Type::Dict(k, v)) => Ok(Type::dict((**k).clone(), (**v).clone())),
                        _ => Err(self.error_help(
                            "cannot infer the key/value types of an empty dict".to_string(),
                            e.span,
                            "give the context a type, or start with one entry",
                        )),
                    };
                }
                let (ek, ev) = match expected {
                    Some(Type::Dict(k, v)) => (Some((**k).clone()), Some((**v).clone())),
                    _ => (None, None),
                };
                let mut kt = self.infer(&pairs[0].0, ek.as_ref())?;
                let mut vt = self.infer(&pairs[0].1, ev.as_ref())?;
                if !kt.is_hashable() {
                    return Err(self.error(
                        format!("{kt} cannot be a dict key (keys must be int, string or bool)"),
                        pairs[0].0.span,
                    ));
                }
                for (k, v) in &pairs[1..] {
                    let kt2 = self.infer(k, Some(&kt))?;
                    if kt2 != kt {
                        return Err(self.error(
                            format!("dict keys must share one type: found {kt} and {kt2}"),
                            k.span,
                        ));
                    }
                    let vt2 = self.infer(v, Some(&vt))?;
                    vt = match self.unify_numeric(&vt, &vt2) {
                        Some(u) => u,
                        None => {
                            return Err(self.error(
                                format!("dict values must share one type: found {vt} and {vt2}"),
                                v.span,
                            ))
                        }
                    };
                    kt = kt2;
                }
                Ok(Type::dict(kt, vt))
            }
        }
    }

    /// Unify two types for container elements: equal, or int/real → real.
    fn unify_numeric(&self, a: &Type, b: &Type) -> Option<Type> {
        if a == b {
            Some(a.clone())
        } else if a.is_numeric() && b.is_numeric() {
            Some(Type::Real)
        } else {
            None
        }
    }

    fn check_call(
        &mut self,
        e: &Expr,
        callee: Symbol,
        args: &[Expr],
        expected: Option<&Type>,
    ) -> CResult<Type> {
        // User functions shadow builtins.
        if let Some(sig) = self.sigs.get(&callee) {
            let (index, params, ret) = (sig.index, sig.params.clone(), sig.ret.clone());
            if args.len() != params.len() {
                return Err(self.error(
                    format!("`{callee}` expects {} argument(s), got {}", params.len(), args.len()),
                    e.span,
                ));
            }
            for (arg, pt) in args.iter().zip(&params) {
                let at = self.infer(arg, Some(pt))?;
                if !compatible(pt, &at) {
                    return Err(self.error(
                        format!("argument to `{callee}` has type {at}, expected {pt}"),
                        arg.span,
                    ));
                }
            }
            self.callees.insert(e.id, Callee::User(index));
            return Ok(ret);
        }
        let _ = expected;
        if let Some(b) = Builtin::lookup(callee.as_str()) {
            let mut arg_types = Vec::with_capacity(args.len());
            for arg in args {
                arg_types.push(self.infer(arg, None)?);
            }
            return match check_builtin_call(b, &arg_types) {
                Ok(ret) => {
                    self.callees.insert(e.id, Callee::Builtin(b));
                    Ok(ret)
                }
                Err(msg) => Err(self.error(msg, e.span)),
            };
        }
        let mut close: Option<Symbol> = None;
        for candidate in self.sigs.keys() {
            if candidate.as_str().eq_ignore_ascii_case(callee.as_str()) {
                close = Some(*candidate);
                break;
            }
        }
        match close {
            Some(c) => {
                let help = format!("did you mean `{c}`?");
                Err(self.error_help(format!("unknown function `{callee}`"), e.span, help))
            }
            None => Err(self.error(format!("unknown function `{callee}`"), e.span)),
        }
    }
}
