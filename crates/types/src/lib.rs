//! # tetra-types
//!
//! Type checking and flow-based local type inference for Tetra.
//!
//! "One difference from Python is that Tetra is statically typed: all types
//! are known at compile/parse time. ... Tetra does have type inference for
//! local variables" (paper §II). The checker validates a parsed
//! [`tetra_ast::Program`] and produces a [`TypedProgram`] whose side tables
//! (per-expression types, call resolutions, per-variable types) drive the
//! bytecode compiler and the debugger.

mod check;
pub mod resolve;

pub use check::{check, Callee, TypedProgram};
pub use resolve::{Resolution, DYNAMIC};

#[cfg(test)]
mod tests {
    use super::*;
    use tetra_ast::Type;
    use tetra_parser::parse;

    fn check_src(src: &str) -> Result<TypedProgram, Vec<tetra_lexer::Diagnostic>> {
        check(parse(src).expect("parse"))
    }

    fn first_error(src: &str) -> String {
        match check_src(src) {
            Ok(_) => panic!("expected a type error:\n{src}"),
            Err(errors) => errors[0].message.clone(),
        }
    }

    #[test]
    fn paper_figures_type_check() {
        let fig1 = "\
def fact(x int) int:
    if x == 0:
        return 1
    else:
        return x * fact(x - 1)

def main():
    print(\"enter n: \")
    n = read_int()
    print(n, \"! = \", fact(n))
";
        assert!(check_src(fig1).is_ok());

        let fig2 = "\
def sumr(nums [int], a int, b int) int:
    total = 0
    i = a
    while i <= b:
        total += nums[i]
        i += 1
    return total

def sum(nums [int]) int:
    mid = len(nums) / 2
    parallel:
        a = sumr(nums, 0, mid - 1)
        b = sumr(nums, mid, len(nums) - 1)
    return a + b

def main():
    print(sum([1 ... 100]))
";
        let tp = check_src(fig2).expect("fig2 checks");
        // `mid` is inferred as int (len/2 is integer division).
        let sum_idx = tp.program.func_index("sum").unwrap();
        assert_eq!(tp.var_type(sum_idx, "mid"), Some(&Type::Int));

        let fig3 = "\
def max(nums [int]) int:
    largest = 0
    parallel for num in nums:
        if num > largest:
            lock largest:
                if num > largest:
                    largest = num
    return largest

def main():
    nums = [18, 32, 96, 48, 60]
    print(max(nums))
";
        let tp = check_src(fig3).expect("fig3 checks");
        let max_idx = tp.program.func_index("max").unwrap();
        assert_eq!(tp.var_type(max_idx, "num"), Some(&Type::Int));
    }

    #[test]
    fn first_assignment_fixes_a_variable_type() {
        let err = first_error("def main():\n    x = 1\n    x = \"hello\"\n");
        assert!(err.contains("has type int"), "{err}");
    }

    #[test]
    fn int_widens_to_real_but_not_back() {
        assert!(check_src("def main():\n    x = 1.5\n    x = 2\n").is_ok());
        let err = first_error("def main():\n    x = 2\n    x = 1.5\n");
        assert!(err.contains("real"), "{err}");
    }

    #[test]
    fn use_before_assignment_is_reported() {
        let err = first_error("def main():\n    print(y)\n");
        assert!(err.contains("before any assignment"), "{err}");
    }

    #[test]
    fn function_used_as_variable_gets_hint() {
        let err = first_error("def f():\n    pass\ndef main():\n    x = f\n");
        assert!(err.contains("call it with parentheses"), "{err}");
    }

    #[test]
    fn conditions_must_be_bool() {
        let err = first_error("def main():\n    if 1:\n        pass\n");
        assert!(err.contains("bool"), "{err}");
        let err = first_error("def main():\n    while \"x\":\n        pass\n");
        assert!(err.contains("bool"), "{err}");
    }

    #[test]
    fn arithmetic_types() {
        let tp = check_src(
            "def main():\n    a = 1 + 2\n    b = 1 + 2.0\n    c = 7 / 2\n    d = 7.0 / 2\n",
        )
        .unwrap();
        let m = tp.program.func_index("main").unwrap();
        assert_eq!(tp.var_type(m, "a"), Some(&Type::Int));
        assert_eq!(tp.var_type(m, "b"), Some(&Type::Real));
        assert_eq!(tp.var_type(m, "c"), Some(&Type::Int), "int division stays int");
        assert_eq!(tp.var_type(m, "d"), Some(&Type::Real));
    }

    #[test]
    fn string_concat_and_mixed_add() {
        assert!(check_src("def main():\n    s = \"a\" + \"b\"\n").is_ok());
        let err = first_error("def main():\n    s = \"a\" + 1\n");
        assert!(err.contains("cannot add"), "{err}");
    }

    #[test]
    fn array_concat_requires_same_element_type() {
        assert!(check_src("def main():\n    a = [1] + [2, 3]\n").is_ok());
        let err = first_error("def main():\n    a = [1] + [\"x\"]\n");
        assert!(err.contains("does not apply"), "{err}");
    }

    #[test]
    fn comparisons() {
        assert!(check_src("def main():\n    b = 1 < 2.5\n    c = \"a\" < \"b\"\n").is_ok());
        let err = first_error("def main():\n    b = true < false\n");
        assert!(err.contains("two numbers or two strings"), "{err}");
        let err = first_error("def main():\n    b = 1 == \"1\"\n");
        assert!(err.contains("cannot compare"), "{err}");
    }

    #[test]
    fn logical_ops_need_bools() {
        let err = first_error("def main():\n    b = 1 and 2\n");
        assert!(err.contains("bool operands"), "{err}");
    }

    #[test]
    fn call_arity_and_types() {
        let src = "def f(a int, b string):\n    pass\ndef main():\n    f(1)\n";
        assert!(first_error(src).contains("2 argument"));
        let src = "def f(a int):\n    pass\ndef main():\n    f(\"x\")\n";
        assert!(first_error(src).contains("expected int"));
        // int → real widening at call sites.
        let src = "def f(a real):\n    pass\ndef main():\n    f(1)\n";
        assert!(check_src(src).is_ok());
    }

    #[test]
    fn user_functions_shadow_builtins() {
        let src = "\
def len(x int) int:
    return x

def main():
    print(len(5))
";
        let tp = check_src(src).unwrap();
        let call = tp.callees.values().filter(|c| matches!(c, Callee::User(_))).count();
        assert!(call >= 1, "len(5) must resolve to the user function");
    }

    #[test]
    fn unknown_function_with_suggestion() {
        let src = "def compute():\n    pass\ndef main():\n    Compute()\n";
        match check_src(src) {
            Err(errors) => {
                assert!(errors[0].help.as_deref().unwrap_or("").contains("compute"));
            }
            Ok(_) => panic!("expected error"),
        }
    }

    #[test]
    fn missing_return_is_detected() {
        let err = first_error(
            "def f(x int) int:\n    if x > 0:\n        return 1\ndef main():\n    f(1)\n",
        );
        assert!(err.contains("without returning"), "{err}");
        // An exhaustive if/else is fine.
        assert!(check_src(
            "def f(x int) int:\n    if x > 0:\n        return 1\n    else:\n        return 2\ndef main():\n    f(1)\n"
        )
        .is_ok());
    }

    #[test]
    fn return_type_mismatch() {
        let err = first_error("def f() int:\n    return \"x\"\ndef main():\n    f()\n");
        assert!(err.contains("expected int"), "{err}");
        let err = first_error("def f():\n    return 1\ndef main():\n    f()\n");
        assert!(err.contains("no declared return type"), "{err}");
    }

    #[test]
    fn return_cannot_cross_thread_boundary() {
        let err = first_error(
            "def f() int:\n    parallel:\n        return 1\n    return 2\ndef main():\n    f()\n",
        );
        assert!(err.contains("parallel"), "{err}");
        let err = first_error("def main():\n    parallel for i in [1, 2]:\n        return\n");
        assert!(err.contains("parallel for"), "{err}");
    }

    #[test]
    fn break_cannot_cross_thread_boundary() {
        let err =
            first_error("def main():\n    while true:\n        parallel:\n            break\n");
        assert!(err.contains("thread boundary"), "{err}");
        // But break inside a loop inside a parallel statement is fine.
        assert!(check_src(
            "def main():\n    parallel:\n        while true:\n            break\n        print(1)\n"
        )
        .is_ok());
    }

    #[test]
    fn break_outside_loop() {
        let err = first_error("def main():\n    break\n");
        assert!(err.contains("outside of a loop"), "{err}");
    }

    #[test]
    fn indexing_rules() {
        assert!(check_src("def main():\n    a = [1, 2]\n    x = a[0]\n").is_ok());
        let err = first_error("def main():\n    a = [1, 2]\n    x = a[\"k\"]\n");
        assert!(err.contains("index must be an int"), "{err}");
        let err = first_error("def main():\n    x = 5\n    y = x[0]\n");
        assert!(err.contains("cannot index"), "{err}");
    }

    #[test]
    fn nested_array_indexing() {
        let tp = check_src("def main():\n    m = [[1, 2], [3, 4]]\n    x = m[1][0]\n").unwrap();
        let main = tp.program.func_index("main").unwrap();
        assert_eq!(tp.var_type(main, "m"), Some(&Type::array(Type::array(Type::Int))));
        assert_eq!(tp.var_type(main, "x"), Some(&Type::Int));
    }

    #[test]
    fn string_and_tuple_immutability() {
        let err = first_error("def main():\n    s = \"abc\"\n    s[0] = \"x\"\n");
        assert!(err.contains("immutable"), "{err}");
        let err = first_error("def main():\n    t = (1, \"a\")\n    t[0] = 2\n");
        assert!(err.contains("immutable"), "{err}");
    }

    #[test]
    fn tuple_indexing_needs_literals() {
        let tp = check_src("def main():\n    t = (1, \"a\", true)\n    s = t[1]\n").unwrap();
        let main = tp.program.func_index("main").unwrap();
        assert_eq!(tp.var_type(main, "s"), Some(&Type::Str));
        let err = first_error("def main():\n    t = (1, \"a\")\n    i = 0\n    x = t[i]\n");
        assert!(err.contains("integer literals"), "{err}");
        let err = first_error("def main():\n    t = (1, \"a\")\n    x = t[5]\n");
        assert!(err.contains("out of bounds"), "{err}");
    }

    #[test]
    fn dict_literals_and_indexing() {
        let tp = check_src(
            "def main():\n    d = {\"one\": 1, \"two\": 2}\n    x = d[\"one\"]\n    d[\"three\"] = 3\n",
        )
        .unwrap();
        let main = tp.program.func_index("main").unwrap();
        assert_eq!(tp.var_type(main, "d"), Some(&Type::dict(Type::Str, Type::Int)));
        assert_eq!(tp.var_type(main, "x"), Some(&Type::Int));
        let err = first_error("def main():\n    d = {1: \"a\"}\n    x = d[\"k\"]\n");
        assert!(err.contains("key must be int"), "{err}");
        let err = first_error("def main():\n    d = {1.5: \"a\"}\n");
        assert!(err.contains("cannot be a dict key"), "{err}");
    }

    #[test]
    fn empty_containers_need_context() {
        let err = first_error("def main():\n    a = []\n");
        assert!(err.contains("empty array"), "{err}");
        let err = first_error("def main():\n    d = {}\n");
        assert!(err.contains("empty dict"), "{err}");
        // With context they are fine.
        assert!(check_src("def f(a [int]):\n    pass\ndef main():\n    f([])\n").is_ok());
        assert!(check_src("def f() [int]:\n    return []\ndef main():\n    f()\n").is_ok());
        assert!(check_src("def main():\n    a = [1]\n    a = []\n").is_ok());
    }

    #[test]
    fn mixed_numeric_array_widens_to_real() {
        let tp = check_src("def main():\n    a = [1, 2.5, 3]\n").unwrap();
        let main = tp.program.func_index("main").unwrap();
        assert_eq!(tp.var_type(main, "a"), Some(&Type::array(Type::Real)));
    }

    #[test]
    fn heterogeneous_array_rejected() {
        let err = first_error("def main():\n    a = [1, \"x\"]\n");
        assert!(err.contains("share one type"), "{err}");
    }

    #[test]
    fn for_loop_variable_types() {
        let tp = check_src(
            "def main():\n    for x in [1, 2, 3]:\n        print(x)\n    for c in \"abc\":\n        print(c)\n",
        )
        .unwrap();
        let main = tp.program.func_index("main").unwrap();
        assert_eq!(tp.var_type(main, "x"), Some(&Type::Int));
        assert_eq!(tp.var_type(main, "c"), Some(&Type::Str));
        let err = first_error("def main():\n    for x in 5:\n        pass\n");
        assert!(err.contains("cannot iterate"), "{err}");
    }

    #[test]
    fn compound_assignment_types() {
        assert!(check_src("def main():\n    x = 1\n    x += 2\n").is_ok());
        let err = first_error("def main():\n    x = 1\n    x += 0.5\n");
        assert!(err.contains("real"), "{err}");
        assert!(check_src("def main():\n    s = \"a\"\n    s += \"b\"\n").is_ok());
        let err = first_error("def main():\n    y += 1\n");
        assert!(err.contains("before any assignment"), "{err}");
    }

    #[test]
    fn index_compound_assignment() {
        assert!(check_src("def main():\n    a = [1, 2]\n    a[0] += 5\n").is_ok());
        let err = first_error("def main():\n    a = [1, 2]\n    a[0] += \"x\"\n");
        assert!(!err.is_empty());
    }

    #[test]
    fn main_constraints() {
        let errs = check_src("def helper():\n    pass\n").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("no `main`")));
        let errs = check_src("def main(x int):\n    pass\n").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("must not take parameters")));
        let errs = check_src("def main() int:\n    return 1\n").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("must not declare a return type")));
    }

    #[test]
    fn multiple_errors_are_collected() {
        let src = "def main():\n    x = 1 + \"a\"\n    y = true + 1\n    z = nope()\n";
        let errs = check_src(src).unwrap_err();
        assert!(errs.len() >= 3, "got {} errors: {errs:?}", errs.len());
    }

    #[test]
    fn expr_types_table_is_populated() {
        let tp = check_src("def main():\n    x = 1 + 2\n").unwrap();
        // Literals 1, 2 and the sum all have recorded types.
        let ints = tp.expr_types.values().filter(|t| **t == Type::Int).count();
        assert!(ints >= 3, "{:?}", tp.expr_types);
    }

    #[test]
    fn assert_statement_types() {
        assert!(check_src("def main():\n    assert 1 < 2, \"math is broken\"\n").is_ok());
        let err = first_error("def main():\n    assert 1 + 2\n");
        assert!(err.contains("bool"), "{err}");
    }

    #[test]
    fn empty_parallel_block_rejected() {
        // The parser requires a non-empty block, so `pass` makes an
        // otherwise-empty parallel block; that is allowed (one no-op thread).
        assert!(check_src("def main():\n    parallel:\n        pass\n").is_ok());
    }

    #[test]
    fn assigning_none_is_rejected() {
        let err = first_error("def f():\n    pass\ndef main():\n    x = f()\n");
        assert!(err.contains("none"), "{err}");
    }
}
