//! Per-thread interpreter state.
//!
//! Each Tetra thread — the main thread plus every thread spawned by
//! `parallel`, `background` and `parallel for` — owns one [`ThreadCtx`]:
//! its call stack of environments, a temporary root stack for values held
//! across GC points, its held-lock list, and its registration with the GC
//! and the thread registry.

use crate::hooks::{ExecEvent, HookDecision, HookPoint, Inspect, Loc};
use crate::Shared;
use std::sync::Arc;
use tetra_ast::Stmt;
use tetra_intern::Symbol;
use tetra_runtime::{
    Env, ErrorKind, FrameRef, GcRef, MutatorGuard, Object, RootSink, RootSource, RuntimeError,
    ThreadCell, ThreadState, Value,
};

/// Stack size for spawned Tetra threads: recursive tree-walking plus user
/// recursion needs room.
pub(crate) const THREAD_STACK_SIZE: usize = 32 * 1024 * 1024;

/// Maximum Tetra call depth before reporting a (catchable) error instead of
/// exhausting the native stack.
pub(crate) const MAX_CALL_DEPTH: u32 = 1000;

pub(crate) struct ThreadCtx {
    pub shared: Arc<Shared>,
    pub mutator: MutatorGuard,
    pub cell: Arc<ThreadCell>,
    /// Call stack of environments; last is the current function's.
    pub env_stack: Vec<Env>,
    /// Temporary GC roots: intermediate values alive across GC points.
    pub temps: Vec<Value>,
    /// Lock names this thread currently holds, innermost last.
    pub held_locks: Vec<Symbol>,
    pub call_depth: u32,
    /// Line of the statement currently executing.
    pub line: u32,
    /// Shadow call stack: one `tetra_obs::stack` node per user-function
    /// frame, innermost last. Maintained only while a trace or heap
    /// profile wants attribution (`tetra_obs::attribution_enabled`).
    pub shadow: Vec<u32>,
    /// Call-path node inherited at spawn: a child thread's statements
    /// attribute to the path that spawned it until it calls a function.
    pub shadow_root: u32,
    /// Trace timestamp of this thread's start (0 when tracing is off).
    pub span_start_ns: u64,
    /// Variable accesses served by a static (frame, slot) coordinate.
    pub env_slot_hits: u64,
    /// Variable accesses that fell back to the name-based chain walk.
    pub env_dynamic_fallbacks: u64,
    /// Total frames visited by those fallback walks.
    pub env_chain_depth_walked: u64,
}

/// Borrowed root view over a `ThreadCtx`'s state (avoids aliasing issues
/// between `&mut self` and the GC's `&dyn RootSource`).
pub(crate) struct RootsView<'a> {
    pub temps: &'a [Value],
    pub envs: &'a [Env],
}

impl RootSource for RootsView<'_> {
    fn roots(&self, sink: &mut RootSink) {
        for v in self.temps {
            sink.value(*v);
        }
        for env in self.envs {
            for f in env.frames() {
                sink.frame(f);
            }
        }
    }
}

/// Root source used when registering spawned threads: the environment
/// frames they will run in plus any values handed to them.
pub(crate) struct SpawnRoots {
    pub frames: Vec<FrameRef>,
    pub values: Vec<Value>,
}

impl RootSource for SpawnRoots {
    fn roots(&self, sink: &mut RootSink) {
        for f in &self.frames {
            sink.frame(f);
        }
        for v in &self.values {
            sink.value(*v);
        }
    }
}

impl ThreadCtx {
    /// Context for the main thread.
    pub fn new_main(shared: Arc<Shared>) -> ThreadCtx {
        let mutator = shared.heap.register_mutator();
        let cell = shared.threads.spawn(None, tetra_runtime::ThreadKind::Main);
        ThreadCtx {
            shared,
            mutator,
            cell,
            env_stack: vec![Env::new()],
            temps: Vec::new(),
            held_locks: Vec::new(),
            call_depth: 0,
            line: 0,
            shadow: Vec::new(),
            shadow_root: tetra_obs::stack::ROOT,
            span_start_ns: tetra_obs::now_ns(),
            env_slot_hits: 0,
            env_dynamic_fallbacks: 0,
            env_chain_depth_walked: 0,
        }
    }

    /// Context for a spawned thread. The mutator guard must come from
    /// [`tetra_runtime::Heap::register_spawned`]; this constructor exits the
    /// initial spawn safe-region. `spawn_node` is the parent's call-path
    /// node at the spawn point, inherited as this thread's attribution
    /// root.
    pub fn new_child(
        shared: Arc<Shared>,
        mutator: MutatorGuard,
        cell: Arc<ThreadCell>,
        env: Env,
        initial_temps: Vec<Value>,
        spawn_node: u32,
    ) -> ThreadCtx {
        shared.heap.exit_spawn_region(&mutator);
        ThreadCtx {
            shared,
            mutator,
            cell,
            env_stack: vec![env],
            temps: initial_temps,
            held_locks: Vec::new(),
            call_depth: 0,
            line: 0,
            shadow: Vec::new(),
            shadow_root: spawn_node,
            span_start_ns: tetra_obs::now_ns(),
            env_slot_hits: 0,
            env_dynamic_fallbacks: 0,
            env_chain_depth_walked: 0,
        }
    }

    /// The call-path node of the innermost user-function frame (or the
    /// spawn-site path for a thread that has not entered a function).
    #[inline]
    pub fn current_stack_node(&self) -> u32 {
        self.shadow.last().copied().unwrap_or(self.shadow_root)
    }

    pub fn current_env(&self) -> &Env {
        self.env_stack.last().expect("env stack never empty")
    }

    fn roots_view(&self) -> RootsView<'_> {
        RootsView { temps: &self.temps, envs: &self.env_stack }
    }

    // ---- GC integration ---------------------------------------------------

    /// GC safepoint (called once per statement). When a collection is
    /// pending, the thread flags itself `GcParked` before parking so the
    /// debugger's thread pane shows *why* it is stopped — the cell is all
    /// atomics, so inspection never blocks on a paused world.
    pub fn poll_gc(&self) {
        if self.shared.heap.gc_pending() {
            self.cell.set_state(ThreadState::GcParked);
            let view = self.roots_view();
            self.shared.heap.poll(&self.mutator, &view);
            self.cell.set_state(ThreadState::Running);
        }
    }

    /// Allocate a heap object with this thread's state as roots.
    pub fn alloc(&self, obj: Object) -> GcRef {
        let view = self.roots_view();
        self.shared.heap.alloc(&self.mutator, &view, obj)
    }

    pub fn alloc_string(&self, s: impl Into<String>) -> Value {
        Value::Obj(self.alloc(Object::Str(s.into())))
    }

    /// Run a blocking operation inside a GC safe region.
    pub fn safe_region<T>(&self, f: impl FnOnce() -> T) -> T {
        let view = self.roots_view();
        self.shared.heap.safe_region(&self.mutator, &view, f)
    }

    /// Publish this thread's roots and enter the idle safe region: called
    /// when the context is parked with no OS thread driving it (checked in
    /// between pooled `parallel for` ranges), so collections can still
    /// stop the world. Must be paired with [`ThreadCtx::resume_idle`]
    /// before the context executes again.
    pub fn suspend_idle(&self) {
        let view = self.roots_view();
        self.shared.heap.enter_idle_region(&self.mutator, &view);
    }

    /// Leave the idle safe region (waiting out any in-progress collection
    /// first); the inverse of [`ThreadCtx::suspend_idle`].
    pub fn resume_idle(&self) {
        self.shared.heap.exit_spawn_region(&self.mutator);
    }

    /// Push a temporary root; pair with [`ThreadCtx::truncate_temps`].
    pub fn push_temp(&mut self, v: Value) {
        self.temps.push(v);
    }

    pub fn temp_mark(&self) -> usize {
        self.temps.len()
    }

    pub fn truncate_temps(&mut self, mark: usize) {
        self.temps.truncate(mark);
    }

    // ---- errors ------------------------------------------------------------

    pub fn err(&self, kind: ErrorKind, msg: impl Into<String>) -> RuntimeError {
        RuntimeError::new(kind, msg, self.line)
    }

    // ---- hook plumbing ------------------------------------------------------

    /// Per-statement prologue: line bookkeeping, GC safepoint, debug hook.
    pub fn statement_prologue(&mut self, stmt: &Stmt) -> Result<(), RuntimeError> {
        self.line = stmt.span.line;
        self.cell.set_line(self.line);
        tetra_obs::stmt(self.cell.id, self.line, self.current_stack_node());
        if tetra_obs::heap_profile_enabled() {
            // Stamp the allocation site any heap object created by this
            // statement will be charged to.
            tetra_obs::heapprof::set_site(self.current_stack_node(), self.line);
        }
        self.poll_gc();
        if let Some(hook) = self.shared.hook.clone() {
            hook.on_event(&ExecEvent::Statement { id: self.cell.id, line: self.line });
            let decision = {
                let view = InspectView(self);
                let point = HookPoint {
                    thread_id: self.cell.id,
                    kind: self.cell.kind,
                    line: self.line,
                    vars: &view,
                };
                hook.on_statement(&point)
            };
            match decision {
                HookDecision::Continue => {}
                HookDecision::Stop => {
                    return Err(self.err(ErrorKind::Cancelled, "stopped by the debugger"));
                }
                HookDecision::Block => {
                    self.cell.set_state(ThreadState::Paused);
                    let id = self.cell.id;
                    let r = self.safe_region(|| hook.wait_for_resume(id));
                    self.cell.set_state(ThreadState::Running);
                    r?;
                }
            }
        }
        Ok(())
    }

    pub fn emit(&self, ev: ExecEvent) {
        if let Some(hook) = &self.shared.hook {
            hook.on_event(&ev);
        }
    }

    pub fn emit_read(&self, loc: Loc, name: Symbol) {
        if let Some(hook) = &self.shared.hook {
            hook.on_event(&ExecEvent::Read {
                id: self.cell.id,
                loc,
                name,
                line: self.line,
                locks: self.held_locks.clone(),
            });
        }
    }

    pub fn emit_write(&self, loc: Loc, name: Symbol) {
        if let Some(hook) = &self.shared.hook {
            hook.on_event(&ExecEvent::Write {
                id: self.cell.id,
                loc,
                name,
                line: self.line,
                locks: self.held_locks.clone(),
            });
        }
    }

    /// Run `f` while holding the global interpreter lock, when GIL mode is
    /// on (the `--gil` ablation, experiment E8).
    pub fn with_gil<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> T {
        match self.shared.gil.clone() {
            Some(gil) => {
                let _guard = gil.lock();
                f(self)
            }
            None => f(self),
        }
    }
}

/// Lazy variable inspection handed to debug hooks.
pub(crate) struct InspectView<'a>(pub &'a ThreadCtx);

impl Inspect for InspectView<'_> {
    fn lookup(&self, name: &str) -> Option<Value> {
        self.0.current_env().get(name)
    }

    fn locals(&self) -> Vec<(String, String)> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for frame in self.0.current_env().frames().iter().rev() {
            for (name, value) in frame.snapshot() {
                if seen.insert(name.clone()) {
                    out.push((name, value.display()));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn scope_depth(&self) -> usize {
        self.0.current_env().depth()
    }
}
