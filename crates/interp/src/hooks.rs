//! Debugger hook interface.
//!
//! The paper's IDE needs to "step through the different threads
//! independently" (§III); the interpreter exposes that by calling a
//! [`DebugHook`] before every statement, identifying the Tetra thread and
//! source line, with access to the thread's variables. The `tetra-debugger`
//! crate implements the hook; the interpreter stays UI-agnostic.

use tetra_intern::Symbol;
use tetra_runtime::{RuntimeError, ThreadKind, Value};

/// What the engine should do after a statement hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookDecision {
    /// Keep running.
    Continue,
    /// Pause this thread: the engine enters a GC safe region and calls
    /// [`DebugHook::wait_for_resume`].
    Block,
    /// Cancel the whole program (`ErrorKind::Cancelled`).
    Stop,
}

/// Identity of a memory location for the race detector: a variable slot in
/// a specific frame, or a whole heap object (array/dict element accesses).
/// Frame slots are keyed by `(frame address, slot index)` — two integers —
/// so race bookkeeping never hashes strings; the source-level name travels
/// separately in the event for display.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loc {
    /// (frame address, slot index within the frame).
    Frame(usize, u32),
    /// Heap object address.
    Obj(usize),
}

/// Execution events, emitted only while a hook is installed.
#[derive(Debug, Clone)]
pub enum ExecEvent {
    ThreadStart {
        id: u32,
        kind: ThreadKind,
        parent: Option<u32>,
        line: u32,
    },
    ThreadEnd {
        id: u32,
    },
    /// About to execute the statement at `line`.
    Statement {
        id: u32,
        line: u32,
    },
    LockWait {
        id: u32,
        name: Symbol,
        line: u32,
    },
    LockAcquired {
        id: u32,
        name: Symbol,
        line: u32,
    },
    LockReleased {
        id: u32,
        name: Symbol,
    },
    /// A variable or element read. `locks` is the thread's held lockset.
    Read {
        id: u32,
        loc: Loc,
        name: Symbol,
        line: u32,
        locks: Vec<Symbol>,
    },
    /// A variable or element write.
    Write {
        id: u32,
        loc: Loc,
        name: Symbol,
        line: u32,
        locks: Vec<Symbol>,
    },
}

impl ExecEvent {
    /// The thread the event belongs to.
    pub fn thread(&self) -> u32 {
        match self {
            ExecEvent::ThreadStart { id, .. }
            | ExecEvent::ThreadEnd { id }
            | ExecEvent::Statement { id, .. }
            | ExecEvent::LockWait { id, .. }
            | ExecEvent::LockAcquired { id, .. }
            | ExecEvent::LockReleased { id, .. }
            | ExecEvent::Read { id, .. }
            | ExecEvent::Write { id, .. } => *id,
        }
    }

    /// One-line rendering for trace output.
    pub fn describe(&self) -> String {
        match self {
            ExecEvent::ThreadStart { id, kind, parent, line } => match parent {
                Some(p) => format!("T{id} started ({}) by T{p} at line {line}", kind.label()),
                None => format!("T{id} started ({})", kind.label()),
            },
            ExecEvent::ThreadEnd { id } => format!("T{id} finished"),
            ExecEvent::Statement { id, line } => format!("T{id} line {line}"),
            ExecEvent::LockWait { id, name, line } => {
                format!("T{id} waiting for lock `{name}` at line {line}")
            }
            ExecEvent::LockAcquired { id, name, line } => {
                format!("T{id} acquired lock `{name}` at line {line}")
            }
            ExecEvent::LockReleased { id, name } => format!("T{id} released lock `{name}`"),
            ExecEvent::Read { id, name, line, .. } => format!("T{id} read {name} at line {line}"),
            ExecEvent::Write { id, name, line, .. } => {
                format!("T{id} wrote {name} at line {line}")
            }
        }
    }
}

/// A paused thread's view of its variables, captured by the hook at the
/// moment it decides to block.
pub trait Inspect {
    /// Look up a variable visible from the current statement.
    fn lookup(&self, name: &str) -> Option<Value>;
    /// All visible variables (innermost shadowing outermost), rendered.
    fn locals(&self) -> Vec<(String, String)>;
    /// Depth of the environment chain.
    fn scope_depth(&self) -> usize;
}

/// Everything the hook learns about the statement being executed.
pub struct HookPoint<'a> {
    pub thread_id: u32,
    pub kind: ThreadKind,
    pub line: u32,
    /// Lazy access to the thread's variables.
    pub vars: &'a dyn Inspect,
}

/// The debugger-side interface. All methods are called from the interpreted
/// program's own threads.
pub trait DebugHook: Send + Sync {
    /// Called before every statement, outside GC safe regions — must not
    /// block. If it returns [`HookDecision::Block`], capture whatever state
    /// you need from `point` now.
    fn on_statement(&self, point: &HookPoint<'_>) -> HookDecision;

    /// Called after `on_statement` returned `Block`, inside a GC safe
    /// region; may block until the debugger resumes thread `thread`.
    fn wait_for_resume(&self, thread: u32) -> Result<(), RuntimeError> {
        let _ = thread;
        Ok(())
    }

    /// Called for every execution event (thread lifecycle, locks, reads,
    /// writes). Must not block.
    fn on_event(&self, ev: &ExecEvent) {
        let _ = ev;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_describe_mentions_thread_and_line() {
        let ev = ExecEvent::LockAcquired { id: 3, name: "m".into(), line: 12 };
        let d = ev.describe();
        assert!(d.contains("T3"), "{d}");
        assert!(d.contains("`m`"), "{d}");
        assert!(d.contains("12"), "{d}");
        assert_eq!(ev.thread(), 3);
    }

    #[test]
    fn thread_start_shows_parent() {
        let ev =
            ExecEvent::ThreadStart { id: 2, kind: ThreadKind::Parallel, parent: Some(0), line: 9 };
        assert!(ev.describe().contains("by T0"));
    }
}
