//! Statement execution, including the four parallel constructs.
//!
//! Per the paper (§IV):
//! * `parallel:` — "launches one thread for each child node ... and waits
//!   for each of those threads to join before moving on";
//! * `background:` — "does not join the threads which were spawned";
//! * `parallel for` — workers get "their copy of the induction variable
//!   inserted into their private symbol table";
//! * `lock` — a named mutex held for the block's duration.
//!
//! Spawned threads share the parent's environment frames (the shared symbol
//! tables), register with the GC *before* the OS thread starts (so a
//! collection can never miss them), and block inside GC safe regions.

use crate::hooks::{ExecEvent, Loc};
use crate::thread::{SpawnRoots, ThreadCtx, THREAD_STACK_SIZE};
use crate::Shared;

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use tetra_ast::{AssignOp, Block, Expr, NodeId, Stmt, StmtKind, Target};
use tetra_intern::Symbol;
use tetra_runtime::{
    Env, ErrorKind, MutatorGuard, Object, RuntimeError, SlotLayout, ThreadCell, ThreadKind,
    ThreadState, Value,
};

/// Control flow result of a statement.
#[derive(Debug)]
pub enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

impl ThreadCtx {
    /// Execute a block, stopping at the first non-normal flow.
    pub fn exec_block(&mut self, block: &Block) -> Result<Flow, RuntimeError> {
        for stmt in &block.stmts {
            match self.exec_stmt(stmt)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    pub fn exec_stmt(&mut self, stmt: &Stmt) -> Result<Flow, RuntimeError> {
        self.statement_prologue(stmt)?;
        match &stmt.kind {
            StmtKind::Pass => Ok(Flow::Normal),
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Expr(e) => {
                self.with_gil(|me| me.eval(e))?;
                Ok(Flow::Normal)
            }
            StmtKind::Return(value) => {
                let v = match value {
                    Some(e) => self.with_gil(|me| me.eval(e))?,
                    None => Value::None,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Assert { cond, message } => {
                let ok = self.with_gil(|me| me.eval_bool(cond))?;
                if !ok {
                    let msg = match message {
                        Some(m) => {
                            let v = self.with_gil(|me| me.eval(m))?;
                            v.display()
                        }
                        None => {
                            format!("assert failed: {}", tetra_ast::pretty::expr_to_source(cond))
                        }
                    };
                    return Err(self.err(ErrorKind::AssertionFailed, msg));
                }
                Ok(Flow::Normal)
            }
            StmtKind::Assign { target, op, value } => {
                self.with_gil(|me| me.exec_assign(target, *op, value))?;
                Ok(Flow::Normal)
            }
            StmtKind::If { cond, then, elifs, els } => {
                if self.with_gil(|me| me.eval_bool(cond))? {
                    return self.exec_block(then);
                }
                for (c, b) in elifs {
                    if self.with_gil(|me| me.eval_bool(c))? {
                        return self.exec_block(b);
                    }
                }
                match els {
                    Some(b) => self.exec_block(b),
                    None => Ok(Flow::Normal),
                }
            }
            StmtKind::While { cond, body } => {
                while self.with_gil(|me| me.eval_bool(cond))? {
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Continue | Flow::Normal => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For { var, var_id, iter, body } => {
                let items = self.with_gil(|me| me.eval_iterable(iter))?;
                // Keep the container (temps) rooted for the loop's duration.
                let mark = self.temp_mark();
                for v in &items {
                    self.push_temp(*v);
                }
                let coord = self.shared.typed.resolution.coord(*var_id);
                let mut flow = Flow::Normal;
                for item in items {
                    match coord {
                        Some((up, slot)) => {
                            self.current_env().write_slot(up, slot, item);
                        }
                        None => {
                            self.current_env().define(*var, item);
                        }
                    }
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Continue | Flow::Normal => {}
                        ret @ Flow::Return(_) => {
                            flow = ret;
                            break;
                        }
                    }
                }
                self.truncate_temps(mark);
                Ok(flow)
            }
            StmtKind::Lock { name, body } => self.exec_lock(*name, body, stmt.span.line),
            StmtKind::Parallel { body } => {
                self.exec_parallel(body)?;
                Ok(Flow::Normal)
            }
            StmtKind::Background { body } => {
                self.exec_background(body)?;
                Ok(Flow::Normal)
            }
            StmtKind::ParallelFor { var, iter, body, .. } => {
                let items = self.with_gil(|me| me.eval_iterable(iter))?;
                self.exec_parallel_for(*var, stmt.id, items, body)?;
                Ok(Flow::Normal)
            }
            StmtKind::Try { body, err_name, err_id, handler } => {
                match self.exec_block(body) {
                    Ok(flow) => Ok(flow),
                    // A debugger cancellation must tear the program down.
                    Err(e) if e.kind == ErrorKind::Cancelled => Err(e),
                    Err(e) => {
                        // Bind the message and run the handler. Errors from
                        // spawned threads arrive here through their join.
                        let msg = self.alloc_string(e.message.clone());
                        match self.shared.typed.resolution.coord(*err_id) {
                            Some((up, slot)) => {
                                self.current_env().write_slot(up, slot, msg);
                            }
                            None => {
                                self.current_env().set(*err_name, msg);
                            }
                        }
                        self.exec_block(handler)
                    }
                }
            }
        }
    }

    /// Evaluate a `for`/`parallel for` sequence into a snapshot of items.
    /// Arrays are snapshotted at loop entry (concurrent `append`s during the
    /// loop do not change the iteration).
    fn eval_iterable(&mut self, iter: &Expr) -> Result<Vec<Value>, RuntimeError> {
        let mark = self.temp_mark();
        let v = self.eval(iter)?;
        self.push_temp(v);
        let result =
            match v {
                Value::Obj(r) => match r.object() {
                    Object::Array(items) => Ok(items.lock().clone()),
                    Object::Str(s) => {
                        // One 1-character string per char; root progressively.
                        let chars: Vec<String> = s.chars().map(|c| c.to_string()).collect();
                        let mut out = Vec::with_capacity(chars.len());
                        for c in chars {
                            let sv = self.alloc_string(c);
                            self.push_temp(sv);
                            out.push(sv);
                        }
                        Ok(out)
                    }
                    _ => Err(self
                        .err(ErrorKind::Value, format!("cannot iterate over a {}", v.type_name()))),
                },
                other => Err(self
                    .err(ErrorKind::Value, format!("cannot iterate over a {}", other.type_name()))),
            };
        self.truncate_temps(mark);
        result
    }

    fn exec_assign(
        &mut self,
        target: &Target,
        op: AssignOp,
        value: &Expr,
    ) -> Result<(), RuntimeError> {
        match target {
            Target::Name { name, id, .. } => {
                if let Some((up, slot)) = self.shared.typed.resolution.coord(*id) {
                    return self.assign_slot(*name, up, slot, op, value);
                }
                self.env_dynamic_fallbacks += 1;
                // Dynamic fallback: resolve the name once; the compound read
                // and the write go through the same located frame.
                let (found, walked) = self.current_env().get_located_walked(*name);
                self.env_chain_depth_walked += walked;
                let new = match op.binop() {
                    None => self.eval(value)?,
                    Some(binop) => {
                        let (current, _, _) = found.ok_or_else(|| {
                            self.err(
                                ErrorKind::UndefinedVariable,
                                format!("variable `{name}` was read before any assignment"),
                            )
                        })?;
                        let mark = self.temp_mark();
                        self.push_temp(current);
                        let rhs = self.eval(value)?;
                        self.push_temp(rhs);
                        let out = self.apply_binop(binop, current, rhs);
                        self.truncate_temps(mark);
                        out?
                    }
                };
                // Keep runtime reals real when the checker said so.
                let new = tetra_stdlib::ops::widen_like(found.map(|(v, _, _)| v), new);
                let (frame, slot) = self.current_env().set_located(*name, new);
                self.emit_write(Loc::Frame(frame, slot as u32), *name);
                Ok(())
            }
            Target::Index { base, index, .. } => {
                let mark = self.temp_mark();
                let b = self.eval(base)?;
                self.push_temp(b);
                let i = self.eval(index)?;
                self.push_temp(i);
                let result = (|| {
                    let new = match op.binop() {
                        None => self.eval(value)?,
                        Some(binop) => {
                            let current = self.index_read(b, i)?;
                            self.push_temp(current);
                            let rhs = self.eval(value)?;
                            self.push_temp(rhs);
                            self.apply_binop(binop, current, rhs)?
                        }
                    };
                    self.push_temp(new);
                    self.index_write(b, i, new)
                })();
                self.truncate_temps(mark);
                result
            }
        }
    }

    /// Assignment through a static (frame, slot) coordinate: one indexed
    /// read for compound operators, one indexed write, no chain walk.
    fn assign_slot(
        &mut self,
        name: Symbol,
        up: usize,
        slot: usize,
        op: AssignOp,
        value: &Expr,
    ) -> Result<(), RuntimeError> {
        self.env_slot_hits += 1;
        let current = self.current_env().read_slot(up, slot);
        let new = match op.binop() {
            None => self.eval(value)?,
            Some(binop) => {
                let current = current.ok_or_else(|| {
                    self.err(
                        ErrorKind::UndefinedVariable,
                        format!("variable `{name}` was read before any assignment"),
                    )
                })?;
                let mark = self.temp_mark();
                self.push_temp(current);
                let rhs = self.eval(value)?;
                self.push_temp(rhs);
                let out = self.apply_binop(binop, current, rhs);
                self.truncate_temps(mark);
                out?
            }
        };
        // Keep runtime reals real when the checker said so.
        let new = tetra_stdlib::ops::widen_like(current, new);
        let frame = self.current_env().write_slot(up, slot, new);
        if self.shared.hook.is_some() {
            self.emit_write(Loc::Frame(frame, slot as u32), name);
        }
        Ok(())
    }

    // ---- parallel constructs ------------------------------------------------

    fn exec_lock(&mut self, name: Symbol, body: &Block, line: u32) -> Result<Flow, RuntimeError> {
        let tid = self.cell.id;
        self.emit(ExecEvent::LockWait { id: tid, name, line });
        self.cell.set_state(ThreadState::WaitingLock);
        self.cell.set_waiting_lock(Some(name.to_string()));
        let locks = self.shared.locks.clone();
        let stack_node = self.current_stack_node();
        let acquired = self.safe_region(|| locks.acquire(tid, name.as_str(), line, stack_node));
        self.cell.set_waiting_lock(None);
        self.cell.set_state(ThreadState::Running);
        acquired?;
        self.emit(ExecEvent::LockAcquired { id: tid, name, line });
        self.held_locks.push(name);
        let result = self.exec_block(body);
        self.held_locks.pop();
        self.shared.locks.release(tid, name.as_str());
        self.emit(ExecEvent::LockReleased { id: tid, name });
        result
    }

    /// Run one logical thread per child statement and join them all. On
    /// the pool path the arms execute as pool tasks (no OS-thread spawn);
    /// `--no-pool` restores one dedicated thread per arm.
    fn exec_parallel(&mut self, body: &Block) -> Result<(), RuntimeError> {
        if !self.shared.config.use_pool {
            let handles = self.spawn_statements(body, ThreadKind::Parallel)?;
            return self.join_children(handles);
        }
        self.parallel_pooled(body)
    }

    /// `parallel:` arms as pool tasks: still one logical Tetra thread per
    /// arm (the registry, debugger and flame views are unchanged), but the
    /// arm count is decoupled from the OS thread count — extra arms queue
    /// on the pool, and the parent helps while it waits.
    fn parallel_pooled(&mut self, body: &Block) -> Result<(), RuntimeError> {
        if body.stmts.is_empty() {
            return Ok(());
        }
        let n = body.stmts.len();
        let frames = self.current_env().frames().to_vec();
        let spawn_node = self.current_stack_node();
        let arms = Arc::new(body.clone());
        let results: Arc<Mutex<Vec<Option<RuntimeError>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::with_capacity(n);
        for i in 0..n {
            // Register the arm with the GC and the thread registry before
            // it is queued, exactly as the spawn path does.
            let guard = self
                .shared
                .heap
                .register_spawned(&SpawnRoots { frames: frames.clone(), values: vec![] });
            let cell = self.shared.threads.spawn(Some(self.cell.id), ThreadKind::Parallel);
            self.emit(ExecEvent::ThreadStart {
                id: cell.id,
                kind: ThreadKind::Parallel,
                parent: Some(self.cell.id),
                line: arms.stmts[i].span.line,
            });
            let env = Env::from_frames(frames.clone());
            let shared = self.shared.clone();
            let arms = arms.clone();
            let results = results.clone();
            tasks.push(Box::new(move || {
                let mut ctx = ThreadCtx::new_child(shared, guard, cell, env, vec![], spawn_node);
                let r = ctx.exec_stmt(&arms.stmts[i]);
                ctx.finish_thread();
                if let Err(e) = r {
                    results.lock()[i] = Some(e);
                }
            }));
        }
        self.cell.set_state(ThreadState::Joining);
        let pool_result = self.safe_region(|| self.shared.pool().run_calls(tasks));
        self.cell.set_state(ThreadState::Running);
        // First error in statement order, matching the join order of the
        // spawn path.
        let first_error = results.lock().iter_mut().find_map(|r| r.take());
        match (first_error, pool_result) {
            (Some(e), _) => Err(e),
            (None, Err(_)) => Err(self.err(
                ErrorKind::ThreadError,
                "a spawned thread panicked (this is a bug in the interpreter)",
            )),
            (None, Ok(())) => Ok(()),
        }
    }

    /// Spawn one thread per child statement without joining.
    fn exec_background(&mut self, body: &Block) -> Result<(), RuntimeError> {
        let handles = self.spawn_statements(body, ThreadKind::Background)?;
        self.shared.background.lock().extend(handles);
        Ok(())
    }

    fn spawn_statements(
        &mut self,
        body: &Block,
        kind: ThreadKind,
    ) -> Result<Vec<std::thread::JoinHandle<Result<(), RuntimeError>>>, RuntimeError> {
        let frames = self.current_env().frames().to_vec();
        // Children attribute to the call path that spawned them until they
        // call a function of their own.
        let spawn_node = self.current_stack_node();
        // One shared clone of the block; each arm executes its own
        // statement out of it by index.
        let arms = Arc::new(body.clone());
        let mut handles = Vec::with_capacity(arms.stmts.len());
        for i in 0..arms.stmts.len() {
            let arms = arms.clone();
            let shared = self.shared.clone();
            let env = Env::from_frames(frames.clone());
            // Register the child with the GC before its OS thread exists.
            let guard = shared
                .heap
                .register_spawned(&SpawnRoots { frames: frames.clone(), values: vec![] });
            let cell = shared.threads.spawn(Some(self.cell.id), kind);
            self.emit(ExecEvent::ThreadStart {
                id: cell.id,
                kind,
                parent: Some(self.cell.id),
                line: arms.stmts[i].span.line,
            });
            let handle = std::thread::Builder::new()
                .name(format!("tetra-{}", cell.id))
                .stack_size(THREAD_STACK_SIZE)
                .spawn(move || {
                    let mut ctx =
                        ThreadCtx::new_child(shared, guard, cell, env, vec![], spawn_node);
                    let result = ctx.exec_stmt(&arms.stmts[i]).map(|_| ());
                    ctx.finish_thread();
                    result
                })
                .map_err(|e| self.err(ErrorKind::Io, format!("could not spawn a thread: {e}")))?;
            handles.push(handle);
        }
        Ok(handles)
    }

    fn exec_parallel_for(
        &mut self,
        var: Symbol,
        stmt_id: NodeId,
        items: Vec<Value>,
        body: &Block,
    ) -> Result<(), RuntimeError> {
        if items.is_empty() {
            return Ok(());
        }
        if !self.shared.config.use_pool {
            return self.parallel_for_spawned(var, stmt_id, items, body);
        }
        self.parallel_for_pooled(var, stmt_id, items, body)
    }

    /// `parallel for` on the work-stealing pool: the item snapshot stays
    /// rooted in the parent, workers receive index ranges that split
    /// adaptively as they are stolen, and `worker_threads` pre-created
    /// logical Tetra threads give every range a stable identity (debugger,
    /// race detector, flame) no matter which pool thread runs it.
    fn parallel_for_pooled(
        &mut self,
        var: Symbol,
        stmt_id: NodeId,
        items: Vec<Value>,
        body: &Block,
    ) -> Result<(), RuntimeError> {
        let len = items.len();
        let workers = self.shared.config.worker_threads.clamp(1, len);
        let frames = self.current_env().frames().to_vec();
        let spawn_node = self.current_stack_node();
        // The resolver's worker-frame layout puts the induction variable at
        // slot 0; an empty layout means all-dynamic resolution.
        let layout = self.shared.typed.resolution.pfor_layout(stmt_id);
        let use_slots = !layout.is_empty();
        // Root the snapshot in the parent for the whole loop: no per-worker
        // item copies, and the ranges below are plain indices.
        let mark = self.temp_mark();
        for v in &items {
            self.push_temp(*v);
        }
        // Pre-create the logical workers; executors check one out per range.
        let mut slots = Vec::with_capacity(workers);
        for _ in 0..workers {
            let guard = self
                .shared
                .heap
                .register_spawned(&SpawnRoots { frames: frames.clone(), values: vec![] });
            let cell = self.shared.threads.spawn(Some(self.cell.id), ThreadKind::ParallelFor);
            self.emit(ExecEvent::ThreadStart {
                id: cell.id,
                kind: ThreadKind::ParallelFor,
                parent: Some(self.cell.id),
                line: self.line,
            });
            let env = Env::from_frames(frames.clone()).with_private_layout(layout.clone());
            slots.push(Some(WorkerSlot::Fresh { guard, cell, env }));
        }
        let job = Arc::new(PforJob {
            shared: self.shared.clone(),
            body: Arc::new(body.clone()),
            items: Arc::new(items),
            var,
            use_slots,
            spawn_node,
            slots: Mutex::new(slots),
            next_slot: AtomicUsize::new(0),
            available: Condvar::new(),
            error: Mutex::new(None),
            cancelled: AtomicBool::new(false),
        });
        // Ranges split down to this grain as they run and get stolen.
        let grain = (len / (workers * 8)).max(1);
        let run_job = job.clone();
        self.cell.set_state(ThreadState::Joining);
        // The parent waits inside a safe region. It may execute ranges
        // itself as a helping submitter: those run on the per-worker
        // mutators checked out above, so a collection can still stop the
        // world while the parent "blocks" here.
        let (pool_result, mut ctxs) = self.safe_region(|| {
            let r =
                self.shared.pool().run_range(len, grain, move |lo, hi| run_job.run_range(lo, hi));
            // Materialize workers that never ran an item while still in
            // the safe region: `new_child` waits out pending collections,
            // which needs this thread to count as parked.
            let mut ctxs: Vec<Box<ThreadCtx>> = Vec::with_capacity(workers);
            for slot in job.slots.lock().drain(..) {
                match slot {
                    Some(WorkerSlot::Ready(ctx)) => ctxs.push(ctx),
                    Some(WorkerSlot::Fresh { guard, cell, env }) => {
                        ctxs.push(Box::new(ThreadCtx::new_child(
                            self.shared.clone(),
                            guard,
                            cell,
                            env,
                            vec![],
                            spawn_node,
                        )));
                    }
                    None => {}
                }
            }
            (r, ctxs)
        });
        self.cell.set_state(ThreadState::Running);
        // Tear the logical workers down: flush counters, emit spans and
        // thread-end events.
        for ctx in ctxs.iter_mut() {
            ctx.finish_thread();
        }
        drop(ctxs);
        self.truncate_temps(mark);
        let first_error = job.error.lock().take();
        match (first_error, pool_result) {
            (Some(e), _) => Err(e),
            (None, Err(_)) => Err(self.err(
                ErrorKind::ThreadError,
                "a spawned thread panicked (this is a bug in the interpreter)",
            )),
            (None, Ok(())) => Ok(()),
        }
    }

    /// The `--no-pool` fallback: one freshly spawned OS thread per static
    /// contiguous chunk (the pre-pool behaviour, kept as an escape hatch
    /// and as the differential baseline for the pool path).
    fn parallel_for_spawned(
        &mut self,
        var: Symbol,
        stmt_id: NodeId,
        items: Vec<Value>,
        body: &Block,
    ) -> Result<(), RuntimeError> {
        let workers = self.shared.config.worker_threads.clamp(1, items.len());
        let frames = self.current_env().frames().to_vec();
        let spawn_node = self.current_stack_node();
        let layout = self.shared.typed.resolution.pfor_layout(stmt_id);
        let body = Arc::new(body.clone());
        // Contiguous chunks, as even as possible.
        let per = items.len().div_ceil(workers);
        let mut handles = Vec::with_capacity(workers);
        for chunk in items.chunks(per) {
            let shared = self.shared.clone();
            let body = body.clone();
            let layout: Arc<SlotLayout> = layout.clone();
            // One copy of the chunk: it roots the items from registration
            // until the thread starts, then becomes the context's initial
            // temp roots.
            let roots = SpawnRoots { frames: frames.clone(), values: chunk.to_vec() };
            let guard = shared.heap.register_spawned(&roots);
            let chunk = roots.values;
            let cell = shared.threads.spawn(Some(self.cell.id), ThreadKind::ParallelFor);
            self.emit(ExecEvent::ThreadStart {
                id: cell.id,
                kind: ThreadKind::ParallelFor,
                parent: Some(self.cell.id),
                line: self.line,
            });
            // The worker's private frame holds its induction variable copy.
            let use_slots = !layout.is_empty();
            let env = Env::from_frames(frames.clone()).with_private_layout(layout);
            let handle = std::thread::Builder::new()
                .name(format!("tetra-{}", cell.id))
                .stack_size(THREAD_STACK_SIZE)
                .spawn(move || {
                    let n = chunk.len();
                    let mut ctx = ThreadCtx::new_child(shared, guard, cell, env, chunk, spawn_node);
                    let mut result = Ok(());
                    for i in 0..n {
                        let item = ctx.temps[i];
                        if use_slots {
                            ctx.current_env().write_slot(0, 0, item);
                        } else {
                            ctx.current_env().define(var, item);
                        }
                        if let Err(e) = ctx.exec_block(&body) {
                            result = Err(e);
                            break;
                        }
                    }
                    ctx.finish_thread();
                    result
                })
                .map_err(|e| self.err(ErrorKind::Io, format!("could not spawn a thread: {e}")))?;
            handles.push(handle);
        }
        self.join_children(handles)
    }

    /// Join spawned children inside a GC safe region, propagating the first
    /// child error.
    fn join_children(
        &mut self,
        handles: Vec<std::thread::JoinHandle<Result<(), RuntimeError>>>,
    ) -> Result<(), RuntimeError> {
        self.cell.set_state(ThreadState::Joining);
        let results: Vec<std::thread::Result<Result<(), RuntimeError>>> =
            self.safe_region(|| handles.into_iter().map(|h| h.join()).collect());
        self.cell.set_state(ThreadState::Running);
        let mut first_error: Option<RuntimeError> = None;
        for r in results {
            match r {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
                Err(_) => {
                    if first_error.is_none() {
                        first_error = Some(self.err(
                            ErrorKind::ThreadError,
                            "a spawned thread panicked (this is a bug in the interpreter)",
                        ));
                    }
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Mark the thread finished and emit its end event.
    pub fn finish_thread(&mut self) {
        self.cell.set_state(ThreadState::Finished);
        // Flush this thread's environment-access counters in one shot; the
        // hot paths only bump plain fields.
        if tetra_obs::metrics_enabled() {
            tetra_obs::metrics::counter_add("env.slot_hits", self.env_slot_hits);
            tetra_obs::metrics::counter_add("env.dynamic_fallbacks", self.env_dynamic_fallbacks);
            tetra_obs::metrics::counter_add("env.chain_depth_walked", self.env_chain_depth_walked);
        }
        if tetra_obs::enabled() {
            let name = match self.cell.kind {
                ThreadKind::Main => "main".to_string(),
                ThreadKind::Parallel => format!("parallel-{}", self.cell.id),
                ThreadKind::Background => format!("background-{}", self.cell.id),
                ThreadKind::ParallelFor => format!("parallel_for-{}", self.cell.id),
            };
            tetra_obs::thread_span(self.cell.id, &name, self.span_start_ns);
        }
        self.emit(ExecEvent::ThreadEnd { id: self.cell.id });
    }
}

/// A pooled `parallel for`'s logical worker, parked between ranges.
enum WorkerSlot {
    /// Registered with the GC and thread registry; no context built yet.
    /// Whichever executor first checks the slot out builds the context
    /// (and thereby exits the spawn safe-region on *its* thread — doing
    /// that on the submitting thread could deadlock the collector).
    Fresh { guard: MutatorGuard, cell: Arc<ThreadCell>, env: Env },
    /// A context left behind by a previous range execution.
    Ready(Box<ThreadCtx>),
}

/// Shared state of one pooled `parallel for`: the body (cloned once), the
/// item snapshot (rooted by the parent), and the checked-out logical
/// worker contexts.
struct PforJob {
    shared: Arc<Shared>,
    body: Arc<Block>,
    items: Arc<Vec<Value>>,
    var: Symbol,
    use_slots: bool,
    spawn_node: u32,
    /// `worker_threads` slots; executors check one out per range. With the
    /// parent helping there can be `workers + 1` concurrent executors, so
    /// a checkout may briefly wait — never across a range boundary, which
    /// keeps the wait deadlock-free.
    slots: Mutex<Vec<Option<WorkerSlot>>>,
    /// Rotates checkouts across the slots so consecutive ranges land on
    /// *different* logical threads even when one executor drains the whole
    /// loop (a one-core host): the program still presents `worker_threads`
    /// threads to the debugger and the lockset race detector, exactly as
    /// the spawn model did.
    next_slot: AtomicUsize,
    available: Condvar,
    error: Mutex<Option<RuntimeError>>,
    /// Set on the first error: later ranges drain without executing,
    /// mirroring the VM model's cancel-on-error.
    cancelled: AtomicBool,
}

impl PforJob {
    fn checkout(&self) -> Box<ThreadCtx> {
        let mut slots = self.slots.lock();
        loop {
            // Prefer the next slot in rotation (identity striping); settle
            // for any free slot rather than wait while one is available.
            let n = slots.len();
            let want = self.next_slot.fetch_add(1, Ordering::Relaxed) % n.max(1);
            let pos = if slots[want].is_some() {
                Some(want)
            } else {
                slots.iter().position(|s| s.is_some())
            };
            if let Some(pos) = pos {
                let slot = slots[pos].take().expect("position() found Some");
                drop(slots);
                return match slot {
                    WorkerSlot::Ready(ctx) => {
                        // The context idled in a GC safe region; leave it
                        // (waiting out any in-progress collection) before
                        // running user code on it again.
                        ctx.resume_idle();
                        ctx
                    }
                    WorkerSlot::Fresh { guard, cell, env } => Box::new(ThreadCtx::new_child(
                        self.shared.clone(),
                        guard,
                        cell,
                        env,
                        vec![],
                        self.spawn_node,
                    )),
                };
            }
            self.available.wait(&mut slots);
        }
    }

    fn checkin(&self, ctx: Box<ThreadCtx>) {
        // Once in the slot no OS thread drives this context, so it cannot
        // reach a safepoint: park its mutator in the idle safe region (roots
        // published) *before* exposing it, or a stress collection would wait
        // on it forever.
        ctx.suspend_idle();
        let mut slots = self.slots.lock();
        if let Some(pos) = slots.iter().position(|s| s.is_none()) {
            slots[pos] = Some(WorkerSlot::Ready(ctx));
        }
        drop(slots);
        self.available.notify_one();
    }

    /// Execute items `[lo, hi)` on a checked-out logical worker. Called
    /// from pool workers and from the helping submitter.
    fn run_range(&self, lo: usize, hi: usize) {
        if self.cancelled.load(Ordering::Relaxed) {
            return;
        }
        let mut ctx = self.checkout();
        for i in lo..hi {
            if self.cancelled.load(Ordering::Relaxed) {
                break;
            }
            let item = self.items[i];
            if self.use_slots {
                ctx.current_env().write_slot(0, 0, item);
            } else {
                ctx.current_env().define(self.var, item);
            }
            if let Err(e) = ctx.exec_block(&self.body) {
                let mut err = self.error.lock();
                if err.is_none() {
                    *err = Some(e);
                }
                self.cancelled.store(true, Ordering::Relaxed);
                break;
            }
        }
        self.checkin(ctx);
    }
}
