//! Statement execution, including the four parallel constructs.
//!
//! Per the paper (§IV):
//! * `parallel:` — "launches one thread for each child node ... and waits
//!   for each of those threads to join before moving on";
//! * `background:` — "does not join the threads which were spawned";
//! * `parallel for` — workers get "their copy of the induction variable
//!   inserted into their private symbol table";
//! * `lock` — a named mutex held for the block's duration.
//!
//! Spawned threads share the parent's environment frames (the shared symbol
//! tables), register with the GC *before* the OS thread starts (so a
//! collection can never miss them), and block inside GC safe regions.

use crate::hooks::{ExecEvent, Loc};
use crate::thread::{SpawnRoots, ThreadCtx, THREAD_STACK_SIZE};

use std::sync::Arc;
use tetra_ast::{AssignOp, Block, Expr, NodeId, Stmt, StmtKind, Target};
use tetra_intern::Symbol;
use tetra_runtime::{
    Env, ErrorKind, Object, RuntimeError, SlotLayout, ThreadKind, ThreadState, Value,
};

/// Control flow result of a statement.
#[derive(Debug)]
pub enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

impl ThreadCtx {
    /// Execute a block, stopping at the first non-normal flow.
    pub fn exec_block(&mut self, block: &Block) -> Result<Flow, RuntimeError> {
        for stmt in &block.stmts {
            match self.exec_stmt(stmt)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    pub fn exec_stmt(&mut self, stmt: &Stmt) -> Result<Flow, RuntimeError> {
        self.statement_prologue(stmt)?;
        match &stmt.kind {
            StmtKind::Pass => Ok(Flow::Normal),
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Expr(e) => {
                self.with_gil(|me| me.eval(e))?;
                Ok(Flow::Normal)
            }
            StmtKind::Return(value) => {
                let v = match value {
                    Some(e) => self.with_gil(|me| me.eval(e))?,
                    None => Value::None,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Assert { cond, message } => {
                let ok = self.with_gil(|me| me.eval_bool(cond))?;
                if !ok {
                    let msg = match message {
                        Some(m) => {
                            let v = self.with_gil(|me| me.eval(m))?;
                            v.display()
                        }
                        None => {
                            format!("assert failed: {}", tetra_ast::pretty::expr_to_source(cond))
                        }
                    };
                    return Err(self.err(ErrorKind::AssertionFailed, msg));
                }
                Ok(Flow::Normal)
            }
            StmtKind::Assign { target, op, value } => {
                self.with_gil(|me| me.exec_assign(target, *op, value))?;
                Ok(Flow::Normal)
            }
            StmtKind::If { cond, then, elifs, els } => {
                if self.with_gil(|me| me.eval_bool(cond))? {
                    return self.exec_block(then);
                }
                for (c, b) in elifs {
                    if self.with_gil(|me| me.eval_bool(c))? {
                        return self.exec_block(b);
                    }
                }
                match els {
                    Some(b) => self.exec_block(b),
                    None => Ok(Flow::Normal),
                }
            }
            StmtKind::While { cond, body } => {
                while self.with_gil(|me| me.eval_bool(cond))? {
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Continue | Flow::Normal => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For { var, var_id, iter, body } => {
                let items = self.with_gil(|me| me.eval_iterable(iter))?;
                // Keep the container (temps) rooted for the loop's duration.
                let mark = self.temp_mark();
                for v in &items {
                    self.push_temp(*v);
                }
                let coord = self.shared.typed.resolution.coord(*var_id);
                let mut flow = Flow::Normal;
                for item in items {
                    match coord {
                        Some((up, slot)) => {
                            self.current_env().write_slot(up, slot, item);
                        }
                        None => {
                            self.current_env().define(*var, item);
                        }
                    }
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Continue | Flow::Normal => {}
                        ret @ Flow::Return(_) => {
                            flow = ret;
                            break;
                        }
                    }
                }
                self.truncate_temps(mark);
                Ok(flow)
            }
            StmtKind::Lock { name, body } => self.exec_lock(*name, body, stmt.span.line),
            StmtKind::Parallel { body } => {
                self.exec_parallel(body)?;
                Ok(Flow::Normal)
            }
            StmtKind::Background { body } => {
                self.exec_background(body)?;
                Ok(Flow::Normal)
            }
            StmtKind::ParallelFor { var, iter, body, .. } => {
                let items = self.with_gil(|me| me.eval_iterable(iter))?;
                self.exec_parallel_for(*var, stmt.id, items, body)?;
                Ok(Flow::Normal)
            }
            StmtKind::Try { body, err_name, err_id, handler } => {
                match self.exec_block(body) {
                    Ok(flow) => Ok(flow),
                    // A debugger cancellation must tear the program down.
                    Err(e) if e.kind == ErrorKind::Cancelled => Err(e),
                    Err(e) => {
                        // Bind the message and run the handler. Errors from
                        // spawned threads arrive here through their join.
                        let msg = self.alloc_string(e.message.clone());
                        match self.shared.typed.resolution.coord(*err_id) {
                            Some((up, slot)) => {
                                self.current_env().write_slot(up, slot, msg);
                            }
                            None => {
                                self.current_env().set(*err_name, msg);
                            }
                        }
                        self.exec_block(handler)
                    }
                }
            }
        }
    }

    /// Evaluate a `for`/`parallel for` sequence into a snapshot of items.
    /// Arrays are snapshotted at loop entry (concurrent `append`s during the
    /// loop do not change the iteration).
    fn eval_iterable(&mut self, iter: &Expr) -> Result<Vec<Value>, RuntimeError> {
        let mark = self.temp_mark();
        let v = self.eval(iter)?;
        self.push_temp(v);
        let result =
            match v {
                Value::Obj(r) => match r.object() {
                    Object::Array(items) => Ok(items.lock().clone()),
                    Object::Str(s) => {
                        // One 1-character string per char; root progressively.
                        let chars: Vec<String> = s.chars().map(|c| c.to_string()).collect();
                        let mut out = Vec::with_capacity(chars.len());
                        for c in chars {
                            let sv = self.alloc_string(c);
                            self.push_temp(sv);
                            out.push(sv);
                        }
                        Ok(out)
                    }
                    _ => Err(self
                        .err(ErrorKind::Value, format!("cannot iterate over a {}", v.type_name()))),
                },
                other => Err(self
                    .err(ErrorKind::Value, format!("cannot iterate over a {}", other.type_name()))),
            };
        self.truncate_temps(mark);
        result
    }

    fn exec_assign(
        &mut self,
        target: &Target,
        op: AssignOp,
        value: &Expr,
    ) -> Result<(), RuntimeError> {
        match target {
            Target::Name { name, id, .. } => {
                if let Some((up, slot)) = self.shared.typed.resolution.coord(*id) {
                    return self.assign_slot(*name, up, slot, op, value);
                }
                self.env_dynamic_fallbacks += 1;
                // Dynamic fallback: resolve the name once; the compound read
                // and the write go through the same located frame.
                let (found, walked) = self.current_env().get_located_walked(*name);
                self.env_chain_depth_walked += walked;
                let new = match op.binop() {
                    None => self.eval(value)?,
                    Some(binop) => {
                        let (current, _, _) = found.ok_or_else(|| {
                            self.err(
                                ErrorKind::UndefinedVariable,
                                format!("variable `{name}` was read before any assignment"),
                            )
                        })?;
                        let mark = self.temp_mark();
                        self.push_temp(current);
                        let rhs = self.eval(value)?;
                        self.push_temp(rhs);
                        let out = self.apply_binop(binop, current, rhs);
                        self.truncate_temps(mark);
                        out?
                    }
                };
                // Keep runtime reals real when the checker said so.
                let new = tetra_stdlib::ops::widen_like(found.map(|(v, _, _)| v), new);
                let (frame, slot) = self.current_env().set_located(*name, new);
                self.emit_write(Loc::Frame(frame, slot as u32), *name);
                Ok(())
            }
            Target::Index { base, index, .. } => {
                let mark = self.temp_mark();
                let b = self.eval(base)?;
                self.push_temp(b);
                let i = self.eval(index)?;
                self.push_temp(i);
                let result = (|| {
                    let new = match op.binop() {
                        None => self.eval(value)?,
                        Some(binop) => {
                            let current = self.index_read(b, i)?;
                            self.push_temp(current);
                            let rhs = self.eval(value)?;
                            self.push_temp(rhs);
                            self.apply_binop(binop, current, rhs)?
                        }
                    };
                    self.push_temp(new);
                    self.index_write(b, i, new)
                })();
                self.truncate_temps(mark);
                result
            }
        }
    }

    /// Assignment through a static (frame, slot) coordinate: one indexed
    /// read for compound operators, one indexed write, no chain walk.
    fn assign_slot(
        &mut self,
        name: Symbol,
        up: usize,
        slot: usize,
        op: AssignOp,
        value: &Expr,
    ) -> Result<(), RuntimeError> {
        self.env_slot_hits += 1;
        let current = self.current_env().read_slot(up, slot);
        let new = match op.binop() {
            None => self.eval(value)?,
            Some(binop) => {
                let current = current.ok_or_else(|| {
                    self.err(
                        ErrorKind::UndefinedVariable,
                        format!("variable `{name}` was read before any assignment"),
                    )
                })?;
                let mark = self.temp_mark();
                self.push_temp(current);
                let rhs = self.eval(value)?;
                self.push_temp(rhs);
                let out = self.apply_binop(binop, current, rhs);
                self.truncate_temps(mark);
                out?
            }
        };
        // Keep runtime reals real when the checker said so.
        let new = tetra_stdlib::ops::widen_like(current, new);
        let frame = self.current_env().write_slot(up, slot, new);
        if self.shared.hook.is_some() {
            self.emit_write(Loc::Frame(frame, slot as u32), name);
        }
        Ok(())
    }

    // ---- parallel constructs ------------------------------------------------

    fn exec_lock(&mut self, name: Symbol, body: &Block, line: u32) -> Result<Flow, RuntimeError> {
        let tid = self.cell.id;
        self.emit(ExecEvent::LockWait { id: tid, name, line });
        self.cell.set_state(ThreadState::WaitingLock);
        self.cell.set_waiting_lock(Some(name.to_string()));
        let locks = self.shared.locks.clone();
        let stack_node = self.current_stack_node();
        let acquired = self.safe_region(|| locks.acquire(tid, name.as_str(), line, stack_node));
        self.cell.set_waiting_lock(None);
        self.cell.set_state(ThreadState::Running);
        acquired?;
        self.emit(ExecEvent::LockAcquired { id: tid, name, line });
        self.held_locks.push(name);
        let result = self.exec_block(body);
        self.held_locks.pop();
        self.shared.locks.release(tid, name.as_str());
        self.emit(ExecEvent::LockReleased { id: tid, name });
        result
    }

    /// Spawn one thread per child statement and join them all.
    fn exec_parallel(&mut self, body: &Block) -> Result<(), RuntimeError> {
        let handles = self.spawn_statements(body, ThreadKind::Parallel)?;
        self.join_children(handles)
    }

    /// Spawn one thread per child statement without joining.
    fn exec_background(&mut self, body: &Block) -> Result<(), RuntimeError> {
        let handles = self.spawn_statements(body, ThreadKind::Background)?;
        self.shared.background.lock().extend(handles);
        Ok(())
    }

    fn spawn_statements(
        &mut self,
        body: &Block,
        kind: ThreadKind,
    ) -> Result<Vec<std::thread::JoinHandle<Result<(), RuntimeError>>>, RuntimeError> {
        let frames = self.current_env().frames().to_vec();
        // Children attribute to the call path that spawned them until they
        // call a function of their own.
        let spawn_node = self.current_stack_node();
        let mut handles = Vec::with_capacity(body.stmts.len());
        for stmt in &body.stmts {
            let stmt: Stmt = stmt.clone();
            let shared = self.shared.clone();
            let env = Env::from_frames(frames.clone());
            // Register the child with the GC before its OS thread exists.
            let guard = shared
                .heap
                .register_spawned(&SpawnRoots { frames: frames.clone(), values: vec![] });
            let cell = shared.threads.spawn(Some(self.cell.id), kind);
            self.emit(ExecEvent::ThreadStart {
                id: cell.id,
                kind,
                parent: Some(self.cell.id),
                line: stmt.span.line,
            });
            let handle = std::thread::Builder::new()
                .name(format!("tetra-{}", cell.id))
                .stack_size(THREAD_STACK_SIZE)
                .spawn(move || {
                    let mut ctx =
                        ThreadCtx::new_child(shared, guard, cell, env, vec![], spawn_node);
                    let result = ctx.exec_stmt(&stmt).map(|_| ());
                    ctx.finish_thread();
                    result
                })
                .map_err(|e| self.err(ErrorKind::Io, format!("could not spawn a thread: {e}")))?;
            handles.push(handle);
        }
        Ok(handles)
    }

    fn exec_parallel_for(
        &mut self,
        var: Symbol,
        stmt_id: NodeId,
        items: Vec<Value>,
        body: &Block,
    ) -> Result<(), RuntimeError> {
        if items.is_empty() {
            return Ok(());
        }
        let workers = self.shared.config.worker_threads.clamp(1, items.len());
        let frames = self.current_env().frames().to_vec();
        let spawn_node = self.current_stack_node();
        // The resolver's worker-frame layout puts the induction variable at
        // slot 0; an empty layout means all-dynamic resolution.
        let layout = self.shared.typed.resolution.pfor_layout(stmt_id);
        // Contiguous chunks, as even as possible.
        let per = items.len().div_ceil(workers);
        let mut handles = Vec::with_capacity(workers);
        for chunk in items.chunks(per) {
            let chunk: Vec<Value> = chunk.to_vec();
            let shared = self.shared.clone();
            let body: Block = body.clone();
            let layout: Arc<SlotLayout> = layout.clone();
            let guard = shared
                .heap
                .register_spawned(&SpawnRoots { frames: frames.clone(), values: chunk.clone() });
            let cell = shared.threads.spawn(Some(self.cell.id), ThreadKind::ParallelFor);
            self.emit(ExecEvent::ThreadStart {
                id: cell.id,
                kind: ThreadKind::ParallelFor,
                parent: Some(self.cell.id),
                line: self.line,
            });
            // The worker's private frame holds its induction variable copy.
            let use_slots = !layout.is_empty();
            let env = Env::from_frames(frames.clone()).with_private_layout(layout);
            let handle = std::thread::Builder::new()
                .name(format!("tetra-{}", cell.id))
                .stack_size(THREAD_STACK_SIZE)
                .spawn(move || {
                    let mut ctx =
                        ThreadCtx::new_child(shared, guard, cell, env, chunk.clone(), spawn_node);
                    let mut result = Ok(());
                    for item in chunk {
                        if use_slots {
                            ctx.current_env().write_slot(0, 0, item);
                        } else {
                            ctx.current_env().define(var, item);
                        }
                        if let Err(e) = ctx.exec_block(&body) {
                            result = Err(e);
                            break;
                        }
                    }
                    ctx.finish_thread();
                    result
                })
                .map_err(|e| self.err(ErrorKind::Io, format!("could not spawn a thread: {e}")))?;
            handles.push(handle);
        }
        self.join_children(handles)
    }

    /// Join spawned children inside a GC safe region, propagating the first
    /// child error.
    fn join_children(
        &mut self,
        handles: Vec<std::thread::JoinHandle<Result<(), RuntimeError>>>,
    ) -> Result<(), RuntimeError> {
        self.cell.set_state(ThreadState::Joining);
        let results: Vec<std::thread::Result<Result<(), RuntimeError>>> =
            self.safe_region(|| handles.into_iter().map(|h| h.join()).collect());
        self.cell.set_state(ThreadState::Running);
        let mut first_error: Option<RuntimeError> = None;
        for r in results {
            match r {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
                Err(_) => {
                    if first_error.is_none() {
                        first_error = Some(self.err(
                            ErrorKind::ThreadError,
                            "a spawned thread panicked (this is a bug in the interpreter)",
                        ));
                    }
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Mark the thread finished and emit its end event.
    pub fn finish_thread(&mut self) {
        self.cell.set_state(ThreadState::Finished);
        // Flush this thread's environment-access counters in one shot; the
        // hot paths only bump plain fields.
        if tetra_obs::metrics_enabled() {
            tetra_obs::metrics::counter_add("env.slot_hits", self.env_slot_hits);
            tetra_obs::metrics::counter_add("env.dynamic_fallbacks", self.env_dynamic_fallbacks);
            tetra_obs::metrics::counter_add("env.chain_depth_walked", self.env_chain_depth_walked);
        }
        if tetra_obs::enabled() {
            let name = match self.cell.kind {
                ThreadKind::Main => "main".to_string(),
                ThreadKind::Parallel => format!("parallel-{}", self.cell.id),
                ThreadKind::Background => format!("background-{}", self.cell.id),
                ThreadKind::ParallelFor => format!("parallel_for-{}", self.cell.id),
            };
            tetra_obs::thread_span(self.cell.id, &name, self.span_start_ns);
        }
        self.emit(ExecEvent::ThreadEnd { id: self.cell.id });
    }
}
