//! # tetra-interp
//!
//! The Tetra tree-walking interpreter with real OS-thread parallelism —
//! the paper's main engine (§IV): "when the Tetra interpreter gets to a
//! node in the AST which represents a parallel block, it launches one
//! thread for each child node ... and executes them in parallel."
//!
//! Key properties:
//!
//! * `parallel` / `background` / `parallel for` spawn genuine OS threads
//!   (no GIL), sharing the parent's symbol-table frames;
//! * every thread is a registered GC mutator; blocking operations (lock
//!   waits, joins, console reads) run inside GC safe regions;
//! * a [`hooks::DebugHook`] can observe and pause each thread independently
//!   (the engine under the paper's IDE);
//! * an optional **GIL mode** serializes statement execution behind one
//!   global mutex — the ablation used to reproduce the paper's argument
//!   that Python's GIL makes true parallel speedup impossible (§I).
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use tetra_runtime::BufferConsole;
//!
//! let src = "def main():\n    parallel:\n        print(1 + 1)\n        print(2 + 2)\n";
//! let typed = tetra_types::check(tetra_parser::parse(src).unwrap()).unwrap();
//! let console = BufferConsole::new();
//! let interp = tetra_interp::Interp::new(typed, tetra_interp::InterpConfig::default(),
//!                                        console.clone());
//! interp.run().unwrap();
//! let out = console.output();
//! assert!(out.contains("2\n") && out.contains("4\n"));
//! ```

mod eval;
pub mod exec;
pub mod hooks;
mod thread;

use hooks::DebugHook;
use parking_lot::Mutex;
use std::sync::Arc;
use std::sync::OnceLock;
use tetra_runtime::{
    ConsoleRef, ErrorKind, GcStats, Heap, HeapConfig, LockRegistry, PoolStats, RuntimeError,
    ThreadRegistry, ThreadSnapshot, WorkerPool,
};
use tetra_types::TypedProgram;
use thread::ThreadCtx;

/// Interpreter configuration.
#[derive(Clone, Debug)]
pub struct InterpConfig {
    /// Worker-thread cap for `parallel for` chunking. Defaults to the host's
    /// available parallelism.
    pub worker_threads: usize,
    /// Simulate a CPython-style global interpreter lock (experiment E8).
    pub gil: bool,
    /// Garbage collector tuning.
    pub gc: HeapConfig,
    /// Detect deadlocks/lock re-entry instead of hanging (default on).
    pub detect_deadlocks: bool,
    /// Join still-running `background` threads when `main` returns (default
    /// on: a library cannot kill threads the way process exit does).
    pub join_background: bool,
    /// Run `parallel for` / `parallel:` on the persistent work-stealing
    /// pool (default). Off (`--no-pool`) falls back to the historical
    /// spawn-one-thread-per-chunk path.
    pub use_pool: bool,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            worker_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            gil: false,
            gc: HeapConfig::default(),
            detect_deadlocks: true,
            join_background: true,
            use_pool: true,
        }
    }
}

/// Counters reported by [`Interp::run`].
#[derive(Debug, Clone)]
pub struct RunStats {
    pub gc: GcStats,
    /// Total Tetra threads created (including main).
    pub threads_spawned: u32,
    /// (total lock acquisitions, contended acquisitions).
    pub lock_acquisitions: (u64, u64),
    /// Work-stealing pool counters (all zero under `--no-pool` or when no
    /// parallel construct ran).
    pub pool: PoolStats,
}

/// Program-wide state shared by every interpreter thread.
pub struct Shared {
    pub typed: TypedProgram,
    pub config: InterpConfig,
    pub heap: Arc<Heap>,
    pub locks: Arc<LockRegistry>,
    pub threads: Arc<ThreadRegistry>,
    pub console: ConsoleRef,
    pub hook: Option<Arc<dyn DebugHook>>,
    pub gil: Option<Arc<Mutex<()>>>,
    pub(crate) background: Mutex<Vec<std::thread::JoinHandle<Result<(), RuntimeError>>>>,
    /// The work-stealing pool, created lazily on the first parallel
    /// construct and reused for the rest of the run.
    pub(crate) pool: OnceLock<WorkerPool>,
}

impl Shared {
    pub(crate) fn pool(&self) -> &WorkerPool {
        self.pool.get_or_init(|| {
            WorkerPool::new(self.config.worker_threads.max(1), thread::THREAD_STACK_SIZE)
        })
    }
}

/// The interpreter: build once per program run.
pub struct Interp {
    shared: Arc<Shared>,
}

impl Interp {
    pub fn new(typed: TypedProgram, config: InterpConfig, console: ConsoleRef) -> Interp {
        Self::build(typed, config, console, None)
    }

    /// Install a debug hook (per-thread stepping, tracing, race detection).
    pub fn with_hook(
        typed: TypedProgram,
        config: InterpConfig,
        console: ConsoleRef,
        hook: Arc<dyn DebugHook>,
    ) -> Interp {
        Self::build(typed, config, console, Some(hook))
    }

    fn build(
        typed: TypedProgram,
        config: InterpConfig,
        console: ConsoleRef,
        hook: Option<Arc<dyn DebugHook>>,
    ) -> Interp {
        let heap = Heap::new(config.gc.clone());
        let locks = Arc::new(LockRegistry::new());
        locks.set_detection(config.detect_deadlocks);
        let gil = config.gil.then(|| Arc::new(Mutex::new(())));
        Interp {
            shared: Arc::new(Shared {
                typed,
                config,
                heap,
                locks,
                threads: ThreadRegistry::new(),
                console,
                hook,
                gil,
                background: Mutex::new(Vec::new()),
                pool: OnceLock::new(),
            }),
        }
    }

    /// A snapshot of every Tetra thread (for the debugger/IDE thread pane).
    pub fn thread_snapshot(&self) -> Vec<ThreadSnapshot> {
        self.shared.threads.snapshot()
    }

    /// Shared lock registry (the debugger reads holders/waiters from it).
    pub fn locks(&self) -> &Arc<LockRegistry> {
        &self.shared.locks
    }

    /// Run `main()` to completion. Execution happens on a dedicated thread
    /// with a large stack so deep Tetra recursion hits the friendly
    /// call-depth error rather than the native stack guard.
    pub fn run(&self) -> Result<RunStats, RuntimeError> {
        let shared = self.shared.clone();
        std::thread::Builder::new()
            .name("tetra-main".to_string())
            .stack_size(thread::THREAD_STACK_SIZE)
            .spawn(move || Self::run_on_current_thread(shared))
            .expect("could not spawn the main interpreter thread")
            .join()
            .expect("the main interpreter thread panicked")
    }

    fn run_on_current_thread(shared: Arc<Shared>) -> Result<RunStats, RuntimeError> {
        let this = Interp { shared };
        let self_ = &this;
        self_.run_inner()
    }

    fn run_inner(&self) -> Result<RunStats, RuntimeError> {
        let main_idx = self
            .shared
            .typed
            .program
            .func_index("main")
            .ok_or_else(|| RuntimeError::new(ErrorKind::UndefinedFunction, "no main()", 0))?;
        let mut ctx = ThreadCtx::new_main(self.shared.clone());
        let result = ctx.call_user(main_idx, &[]).map(|_| ());
        ctx.finish_thread();
        // Main is done; deal with stragglers from `background:` blocks.
        let background: Vec<_> = std::mem::take(&mut *self.shared.background.lock());
        let mut background_error: Option<RuntimeError> = None;
        if self.shared.config.join_background {
            let joined: Vec<_> =
                ctx.safe_region(|| background.into_iter().map(|h| h.join()).collect());
            for r in joined {
                if let Ok(Err(e)) = r {
                    background_error.get_or_insert(e);
                }
            }
        } else {
            // Detach: drop the handles; threads die with the process.
            drop(background);
        }
        drop(ctx);
        // Allocator/collector/pool counters go to the metrics registry once
        // per run — never from the hot paths.
        self.shared.heap.publish_metrics();
        if let Some(pool) = self.shared.pool.get() {
            pool.publish_metrics();
        }
        result?;
        if let Some(e) = background_error {
            return Err(e);
        }
        Ok(RunStats {
            gc: self.shared.heap.stats(),
            threads_spawned: self.shared.threads.total_spawned(),
            lock_acquisitions: self.shared.locks.contention_stats(),
            pool: self.shared.pool.get().map(|p| p.stats()).unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetra_runtime::BufferConsole;

    fn run_with_input(src: &str, input: &[&str]) -> (Result<RunStats, RuntimeError>, String) {
        let typed = tetra_types::check(
            tetra_parser::parse(src).unwrap_or_else(|e| panic!("parse: {e}\n{src}")),
        )
        .unwrap_or_else(|e| panic!("check: {e:?}\n{src}"));
        let console = BufferConsole::with_input(input);
        let interp = Interp::new(typed, InterpConfig::default(), console.clone());
        let result = interp.run();
        (result, console.output())
    }

    fn run_ok(src: &str) -> String {
        let (r, out) = run_with_input(src, &[]);
        r.unwrap_or_else(|e| panic!("runtime error: {e}\noutput so far:\n{out}"));
        out
    }

    fn run_err(src: &str) -> RuntimeError {
        let (r, out) = run_with_input(src, &[]);
        match r {
            Err(e) => e,
            Ok(_) => panic!("expected runtime error; output:\n{out}"),
        }
    }

    #[test]
    fn hello_world() {
        assert_eq!(run_ok("def main():\n    print(\"hello\")\n"), "hello\n");
    }

    #[test]
    fn paper_figure_1_factorial() {
        let src = "\
def fact(x int) int:
    if x == 0:
        return 1
    else:
        return x * fact(x - 1)

def main():
    print(\"enter n: \")
    n = read_int()
    print(n, \"! = \", fact(n))
";
        let (r, out) = run_with_input(src, &["5"]);
        r.unwrap();
        assert_eq!(out, "enter n: \n5! = 120\n");
    }

    #[test]
    fn paper_figure_2_parallel_sum() {
        let src = "\
def sumr(nums [int], a int, b int) int:
    total = 0
    i = a
    while i <= b:
        total += nums[i]
        i += 1
    return total

def sum(nums [int]) int:
    mid = len(nums) / 2
    parallel:
        a = sumr(nums, 0, mid - 1)
        b = sumr(nums, mid, len(nums) - 1)
    return a + b

def main():
    print(sum([1 ... 100]))
";
        assert_eq!(run_ok(src), "5050\n");
    }

    #[test]
    fn paper_figure_3_parallel_max() {
        let src = "\
def max(nums [int]) int:
    largest = 0
    parallel for num in nums:
        if num > largest:
            lock largest:
                if num > largest:
                    largest = num
    return largest

def main():
    nums = [18, 32, 96, 48, 60]
    print(max(nums))
";
        assert_eq!(run_ok(src), "96\n");
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let src = "\
def main():
    total = 0
    for i in [1 ... 10]:
        if i % 2 == 0:
            total += i
    print(total)
";
        assert_eq!(run_ok(src), "30\n");
    }

    #[test]
    fn while_break_continue() {
        let src = "\
def main():
    i = 0
    found = 0
    while true:
        i += 1
        if i % 3 != 0:
            continue
        found += 1
        if found == 4:
            break
    print(i)
";
        assert_eq!(run_ok(src), "12\n");
    }

    #[test]
    fn divide_by_zero_reports_line() {
        let e = run_err("def main():\n    x = 1\n    y = x / 0\n");
        assert_eq!(e.kind, ErrorKind::DivideByZero);
        assert_eq!(e.line, 3);
    }

    #[test]
    fn index_out_of_bounds() {
        let e = run_err("def main():\n    a = [1, 2]\n    print(a[5])\n");
        assert_eq!(e.kind, ErrorKind::IndexOutOfBounds);
    }

    #[test]
    fn integer_overflow_is_an_error() {
        let e = run_err("def main():\n    x = 9223372036854775807\n    x += 1\n    print(x)\n");
        assert_eq!(e.kind, ErrorKind::Overflow);
    }

    #[test]
    fn assert_failure_and_success() {
        assert_eq!(run_ok("def main():\n    assert 1 < 2\n    print(\"ok\")\n"), "ok\n");
        let e = run_err("def main():\n    assert 1 > 2, \"math broke\"\n");
        assert_eq!(e.kind, ErrorKind::AssertionFailed);
        assert!(e.message.contains("math broke"));
    }

    #[test]
    fn recursion_limit_is_an_error_not_a_crash() {
        let e = run_err("def f(x int) int:\n    return f(x + 1)\ndef main():\n    print(f(0))\n");
        assert!(e.message.contains("call depth"), "{e}");
    }

    #[test]
    fn parallel_block_runs_all_children() {
        let src = "\
def main():
    results = [0, 0, 0, 0]
    parallel:
        results[0] = 1
        results[1] = 2
        results[2] = 3
        results[3] = 4
    print(results)
";
        assert_eq!(run_ok(src), "[1, 2, 3, 4]\n");
    }

    #[test]
    fn parallel_shares_function_frame() {
        // Fig. II's pattern: assignments from child threads visible after.
        let src = "\
def main():
    parallel:
        a = 10
        b = 20
    print(a + b)
";
        assert_eq!(run_ok(src), "30\n");
    }

    #[test]
    fn parallel_for_induction_variable_is_private() {
        let src = "\
def main():
    total = 0
    parallel for i in [1 ... 50]:
        lock total:
            total += i
    print(total)
";
        assert_eq!(run_ok(src), "1275\n");
    }

    #[test]
    fn parallel_for_over_empty_array_is_noop() {
        let src = "\
def main():
    a = [1]
    pop(a)
    parallel for x in a:
        print(x)
    print(\"done\")
";
        assert_eq!(run_ok(src), "done\n");
    }

    #[test]
    fn background_threads_complete_before_exit() {
        let src = "\
def main():
    background:
        print(\"from background\")
    sleep(1)
";
        let out = run_ok(src);
        assert!(out.contains("from background"), "{out}");
    }

    #[test]
    fn lock_provides_mutual_exclusion() {
        // Without the lock this loses updates; with it the count is exact.
        let src = "\
def main():
    count = 0
    parallel for i in [1 ... 400]:
        lock counter:
            count += 1
    print(count)
";
        assert_eq!(run_ok(src), "400\n");
    }

    #[test]
    fn lock_reentry_is_detected() {
        let src = "\
def main():
    lock a:
        lock a:
            print(\"unreachable\")
";
        let e = run_err(src);
        assert_eq!(e.kind, ErrorKind::LockReentry);
    }

    #[test]
    fn child_thread_error_propagates_to_parent() {
        let src = "\
def main():
    parallel:
        print(1 / 0)
        print(\"other\")
";
        let e = run_err(src);
        assert_eq!(e.kind, ErrorKind::DivideByZero);
    }

    #[test]
    fn nested_parallel_blocks() {
        let src = "\
def work(res [int], base int):
    parallel:
        res[base] = base
        res[base + 1] = base + 1

def main():
    res = [0, 0, 0, 0]
    parallel:
        work(res, 0)
        work(res, 2)
    print(res)
";
        assert_eq!(run_ok(src), "[0, 1, 2, 3]\n");
    }

    #[test]
    fn gil_mode_still_computes_correctly() {
        let src = "\
def main():
    total = 0
    parallel for i in [1 ... 100]:
        lock t:
            total += i
    print(total)
";
        let typed = tetra_types::check(tetra_parser::parse(src).unwrap()).unwrap();
        let console = BufferConsole::new();
        let config = InterpConfig { gil: true, ..InterpConfig::default() };
        let interp = Interp::new(typed, config, console.clone());
        interp.run().unwrap();
        assert_eq!(console.output(), "5050\n");
    }

    #[test]
    fn gc_stress_full_program() {
        // Exercise every allocation path under collect-on-every-alloc.
        let src = "\
def main():
    words = split(\"the quick brown fox\", \" \")
    out = \"\"
    for w in words:
        out = out + upper(w) + \".\"
    d = {\"a\": 1}
    d[\"b\"] = 2
    t = (1, \"two\", 3.0)
    print(out, \" \", len(d), \" \", t[1])
";
        let typed = tetra_types::check(tetra_parser::parse(src).unwrap()).unwrap();
        let console = BufferConsole::new();
        let config = InterpConfig {
            gc: HeapConfig { stress: true, ..HeapConfig::default() },
            ..InterpConfig::default()
        };
        let interp = Interp::new(typed, config, console.clone());
        let stats = interp.run().unwrap();
        assert_eq!(console.output(), "THE.QUICK.BROWN.FOX. 2 two\n");
        assert!(stats.gc.collections > 10);
    }

    #[test]
    fn gc_collects_garbage_during_run() {
        let src = "\
def main():
    i = 0
    while i < 2000:
        s = str(i) + \"-junk\"
        i += 1
    print(\"done\")
";
        let typed = tetra_types::check(tetra_parser::parse(src).unwrap()).unwrap();
        let console = BufferConsole::new();
        let config = InterpConfig {
            gc: HeapConfig {
                initial_threshold: 1 << 14,
                min_threshold: 1 << 12,
                ..HeapConfig::default()
            },
            ..InterpConfig::default()
        };
        let interp = Interp::new(typed, config, console.clone());
        let stats = interp.run().unwrap();
        assert_eq!(console.output(), "done\n");
        assert!(stats.gc.collections >= 1, "{:?}", stats.gc);
        assert!(stats.gc.objects_freed > 1000, "{:?}", stats.gc);
    }

    #[test]
    fn parallel_gc_stress() {
        // Multiple threads allocating under stress mode: the GC must stop
        // the world cleanly around running/blocked threads.
        let src = "\
def main():
    out = [\"\", \"\", \"\", \"\"]
    parallel for i in [0 ... 3]:
        s = \"\"
        j = 0
        while j < 20:
            s = s + str(j)
            j += 1
        out[i] = s
    print(out[0] == out[3])
";
        let typed = tetra_types::check(tetra_parser::parse(src).unwrap()).unwrap();
        let console = BufferConsole::new();
        let config = InterpConfig {
            gc: HeapConfig { stress: true, ..HeapConfig::default() },
            worker_threads: 4,
            ..InterpConfig::default()
        };
        let interp = Interp::new(typed, config, console.clone());
        interp.run().unwrap();
        assert_eq!(console.output(), "true\n");
    }

    #[test]
    fn thread_registry_reflects_spawns() {
        let src = "\
def main():
    parallel:
        pass
        pass
        pass
";
        let typed = tetra_types::check(tetra_parser::parse(src).unwrap()).unwrap();
        let console = BufferConsole::new();
        let interp = Interp::new(typed, InterpConfig::default(), console);
        let stats = interp.run().unwrap();
        assert_eq!(stats.threads_spawned, 4, "main + 3 children");
        let snap = interp.thread_snapshot();
        assert!(snap.iter().all(|t| t.state == tetra_runtime::ThreadState::Finished));
    }

    #[test]
    fn strings_and_dicts_end_to_end() {
        let src = "\
def main():
    d = {\"alpha\": 1, \"beta\": 2}
    d[\"gamma\"] = 3
    ks = keys(d)
    sort(ks)
    line = join(ks, \",\")
    print(line)
    print(has_key(d, \"beta\"), \" \", d[\"gamma\"])
";
        assert_eq!(run_ok(src), "alpha,beta,gamma\ntrue 3\n");
    }

    #[test]
    fn string_iteration_and_indexing() {
        let src = "\
def main():
    s = \"abc\"
    for c in s:
        print(c)
    print(s[1])
";
        assert_eq!(run_ok(src), "a\nb\nc\nb\n");
    }

    #[test]
    fn real_widening_keeps_division_real() {
        let src = "\
def half(x real) real:
    return x / 2

def main():
    print(half(7))
";
        assert_eq!(run_ok(src), "3.5\n");
    }

    #[test]
    fn function_falls_off_end_returns_none() {
        let src = "\
def shout(msg string):
    print(upper(msg))

def main():
    shout(\"hi\")
";
        assert_eq!(run_ok(src), "HI\n");
    }

    #[test]
    fn tuples_are_usable() {
        let src = "\
def main():
    point = (3, 4.5, \"label\")
    print(point[0], \" \", point[1], \" \", point[2])
    print(point)
";
        assert_eq!(run_ok(src), "3 4.5 label\n(3, 4.5, \"label\")\n");
    }

    #[test]
    fn key_not_found() {
        let e = run_err("def main():\n    d = {1: 1}\n    print(d[2])\n");
        assert_eq!(e.kind, ErrorKind::KeyNotFound);
    }

    #[test]
    fn many_threads_summing_matches_sequential() {
        let src = "\
def main():
    n = 1000
    nums = [1 ... 1000]
    total = 0
    parallel for x in nums:
        lock t:
            total += x
    print(total == n * (n + 1) / 2)
";
        assert_eq!(run_ok(src), "true\n");
    }
}
