//! Expression evaluation.
//!
//! The interpreter "interprets the code by traversing the AST recursively"
//! (paper §IV). Every intermediate value that must survive a potential GC
//! point (an allocation, a call, a safepoint) is pushed onto the thread's
//! temporary root stack first. Operator semantics are shared with the VM
//! through [`tetra_stdlib::ops`].

use crate::hooks::Loc;
use crate::thread::{RootsView, ThreadCtx, MAX_CALL_DEPTH};
use tetra_ast::{BinOp, Expr, ExprKind, FuncDef, UnOp};
use tetra_intern::Symbol;
use tetra_runtime::{DictKey, Env, ErrorKind, Object, RuntimeError, Value};
use tetra_stdlib::ops;
use tetra_stdlib::Builtin;
use tetra_types::Callee;

/// Run `f` with an operator context borrowed from this thread's state.
macro_rules! with_ops {
    ($self:expr, $f:expr) => {{
        let view = RootsView { temps: &$self.temps, envs: &$self.env_stack };
        let ctx = ops::OpCtx {
            heap: &$self.shared.heap,
            mutator: &$self.mutator,
            roots: &view,
            line: $self.line,
        };
        $f(&ctx)
    }};
}

impl ThreadCtx {
    pub fn eval(&mut self, e: &Expr) -> Result<Value, RuntimeError> {
        match &e.kind {
            ExprKind::Int(v) => Ok(Value::Int(*v)),
            ExprKind::Real(v) => Ok(Value::Real(*v)),
            ExprKind::Bool(v) => Ok(Value::Bool(*v)),
            ExprKind::None => Ok(Value::None),
            ExprKind::Str(s) => Ok(self.alloc_string(s.clone())),
            ExprKind::Var(name) => {
                // Hot path: the resolver assigned this access a static
                // (frame, slot) coordinate — no hashing, no chain walk.
                if let Some((up, slot)) = self.shared.typed.resolution.coord(e.id) {
                    self.env_slot_hits += 1;
                    let env = self.current_env();
                    return match env.read_slot(up, slot) {
                        Some(v) => {
                            if self.shared.hook.is_some() {
                                let frame = self.current_env().frame_addr(up);
                                self.emit_read(Loc::Frame(frame, slot as u32), *name);
                            }
                            Ok(v)
                        }
                        None => Err(self.err(
                            ErrorKind::UndefinedVariable,
                            format!("variable `{name}` was read before any assignment"),
                        )),
                    };
                }
                self.env_dynamic_fallbacks += 1;
                let (found, walked) = self.current_env().get_located_walked(*name);
                self.env_chain_depth_walked += walked;
                match found {
                    Some((v, frame, slot)) => {
                        self.emit_read(Loc::Frame(frame, slot as u32), *name);
                        Ok(v)
                    }
                    None => Err(self.err(
                        ErrorKind::UndefinedVariable,
                        format!("variable `{name}` was read before any assignment"),
                    )),
                }
            }
            ExprKind::Unary { op, operand } => {
                let v = self.eval(operand)?;
                match op {
                    UnOp::Not => with_ops!(self, |ctx| ops::not(ctx, v)),
                    UnOp::Neg => with_ops!(self, |ctx| ops::negate(ctx, v)),
                }
            }
            ExprKind::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs),
            ExprKind::Call { callee, args } => self.eval_call(e, *callee, args),
            ExprKind::Index { base, index } => {
                let mark = self.temp_mark();
                let b = self.eval(base)?;
                self.push_temp(b);
                let i = self.eval(index)?;
                let r = self.index_read(b, i);
                self.truncate_temps(mark);
                r
            }
            ExprKind::Array(items) => {
                let mark = self.temp_mark();
                for item in items {
                    let v = self.eval(item)?;
                    self.push_temp(v);
                }
                let values = self.temps[mark..].to_vec();
                let arr = Value::Obj(self.alloc(Object::array(values)));
                self.truncate_temps(mark);
                Ok(arr)
            }
            ExprKind::Range { lo, hi } => {
                let mark = self.temp_mark();
                let lo_v = self.eval(lo)?;
                self.push_temp(lo_v);
                let hi_v = self.eval(hi)?;
                self.truncate_temps(mark);
                let (Some(a), Some(b)) = (lo_v.as_int(), hi_v.as_int()) else {
                    return Err(self.err(ErrorKind::Value, "range bounds must be ints"));
                };
                const MAX_RANGE: i64 = 50_000_000;
                if b.saturating_sub(a) > MAX_RANGE {
                    return Err(self.err(
                        ErrorKind::Value,
                        format!("range [{a} ... {b}] is too large (over {MAX_RANGE} elements)"),
                    ));
                }
                let items: Vec<Value> = (a..=b).map(Value::Int).collect();
                Ok(Value::Obj(self.alloc(Object::array(items))))
            }
            ExprKind::Tuple(items) => {
                let mark = self.temp_mark();
                for item in items {
                    let v = self.eval(item)?;
                    self.push_temp(v);
                }
                let values = self.temps[mark..].to_vec();
                let t = Value::Obj(self.alloc(Object::Tuple(values)));
                self.truncate_temps(mark);
                Ok(t)
            }
            ExprKind::Dict(pairs) => {
                let mark = self.temp_mark();
                let mut entries: Vec<(DictKey, Value)> = Vec::with_capacity(pairs.len());
                for (k, v) in pairs {
                    let kv = self.eval(k)?;
                    self.push_temp(kv);
                    let vv = self.eval(v)?;
                    self.push_temp(vv);
                    let key = kv.to_dict_key().ok_or_else(|| {
                        self.err(
                            ErrorKind::Value,
                            format!("a {} cannot be a dict key", kv.type_name()),
                        )
                    })?;
                    entries.push((key, vv));
                }
                let map = entries.into_iter().collect();
                let d = Value::Obj(self.alloc(Object::dict(map)));
                self.truncate_temps(mark);
                Ok(d)
            }
        }
    }

    /// Evaluate a condition, requiring a bool.
    pub fn eval_bool(&mut self, e: &Expr) -> Result<bool, RuntimeError> {
        match self.eval(e)? {
            Value::Bool(b) => Ok(b),
            other => Err(self.err(
                ErrorKind::Value,
                format!("condition evaluated to a {}, not a bool", other.type_name()),
            )),
        }
    }

    fn eval_binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Value, RuntimeError> {
        // Short-circuit logical operators first.
        if matches!(op, BinOp::And | BinOp::Or) {
            let l = self.eval_bool(lhs)?;
            return match (op, l) {
                (BinOp::And, false) => Ok(Value::Bool(false)),
                (BinOp::Or, true) => Ok(Value::Bool(true)),
                _ => Ok(Value::Bool(self.eval_bool(rhs)?)),
            };
        }
        let mark = self.temp_mark();
        let l = self.eval(lhs)?;
        self.push_temp(l);
        let r = self.eval(rhs)?;
        self.push_temp(r);
        let result = self.apply_binop(op, l, r);
        self.truncate_temps(mark);
        result
    }

    /// Apply a (non-logical) binary operator to evaluated operands. Also
    /// used by compound assignment.
    pub fn apply_binop(&mut self, op: BinOp, l: Value, r: Value) -> Result<Value, RuntimeError> {
        with_ops!(self, |ctx| ops::binary(ctx, op, l, r))
    }

    pub fn index_read(&mut self, base: Value, index: Value) -> Result<Value, RuntimeError> {
        let v = with_ops!(self, |ctx| ops::index_read(ctx, base, index))?;
        if let Value::Obj(obj) = base {
            if matches!(obj.object(), Object::Array(_) | Object::Dict(_)) {
                self.emit_read(Loc::Obj(obj.addr()), Symbol::intern("[element]"));
            }
        }
        Ok(v)
    }

    pub fn index_write(
        &mut self,
        base: Value,
        index: Value,
        new: Value,
    ) -> Result<(), RuntimeError> {
        with_ops!(self, |ctx| ops::index_write(ctx, base, index, new))?;
        if let Value::Obj(obj) = base {
            self.emit_write(Loc::Obj(obj.addr()), Symbol::intern("[element]"));
        }
        Ok(())
    }

    fn eval_call(
        &mut self,
        e: &Expr,
        callee: Symbol,
        args: &[Expr],
    ) -> Result<Value, RuntimeError> {
        let mark = self.temp_mark();
        for arg in args {
            let v = self.eval(arg)?;
            self.push_temp(v);
        }
        let arg_values: Vec<Value> = self.temps[mark..].to_vec();
        let result = match self.shared.typed.callees.get(&e.id).copied() {
            Some(Callee::User(idx)) => self.call_user(idx, &arg_values),
            Some(Callee::Builtin(b)) => self.call_builtin(b, &arg_values),
            // Reachable only when running unchecked ASTs (tests); resolve
            // dynamically with the same shadowing rule.
            None => match self.shared.typed.program.func_index(callee.as_str()) {
                Some(idx) => self.call_user(idx, &arg_values),
                None => match Builtin::lookup(callee.as_str()) {
                    Some(b) => self.call_builtin(b, &arg_values),
                    None => Err(self
                        .err(ErrorKind::UndefinedFunction, format!("unknown function `{callee}`"))),
                },
            },
        };
        self.truncate_temps(mark);
        result
    }

    pub fn call_user(&mut self, idx: usize, args: &[Value]) -> Result<Value, RuntimeError> {
        if self.call_depth >= MAX_CALL_DEPTH {
            return Err(self.err(
                ErrorKind::Value,
                format!("call depth exceeded {MAX_CALL_DEPTH} (infinite recursion?)"),
            ));
        }
        let shared = self.shared.clone();
        let func: &FuncDef = &shared.typed.program.funcs[idx];
        debug_assert_eq!(func.params.len(), args.len());
        let layout = shared.typed.resolution.func_layout(idx);
        let env = if layout.len() >= func.params.len() {
            // Resolved layout: parameters occupy the leading slots.
            let env = Env::new_with_layout(layout);
            let frame = env.innermost();
            for (i, (p, v)) in func.params.iter().zip(args).enumerate() {
                frame.set_slot(i, ops::widen_to(&p.ty, *v));
            }
            env
        } else {
            // All-dynamic resolution (oracle/REPL): bind by name.
            let env = Env::new();
            for (p, v) in func.params.iter().zip(args) {
                env.define(p.name, ops::widen_to(&p.ty, *v));
            }
            env
        };
        self.env_stack.push(env);
        self.call_depth += 1;
        let saved_line = self.line;
        // Shadow-stack frame for attribution (flame output, allocation
        // sites, lock paths). `pushed` is latched so a mid-call toggle of
        // the session switch cannot unbalance the stack.
        let pushed = tetra_obs::attribution_enabled();
        let mut call_node = tetra_obs::stack::ROOT;
        if pushed {
            call_node = tetra_obs::stack::child(self.current_stack_node(), func.name.as_str());
            self.shadow.push(call_node);
        }
        let call_start = tetra_obs::now_ns();
        let result = self.exec_block(&func.body);
        tetra_obs::call(self.cell.id, func.name.as_str(), saved_line, call_start, call_node);
        if pushed {
            self.shadow.pop();
        }
        self.call_depth -= 1;
        self.env_stack.pop();
        self.line = saved_line;
        self.cell.set_line(saved_line);
        match result? {
            crate::exec::Flow::Return(v) => Ok(ops::widen_to(&func.ret, v)),
            _ => Ok(Value::None), // fell off the end: none
        }
    }

    fn call_builtin(&mut self, b: Builtin, args: &[Value]) -> Result<Value, RuntimeError> {
        let view = RootsView { temps: &self.temps, envs: &self.env_stack };
        let ctx = tetra_stdlib::HostCtx {
            heap: &self.shared.heap,
            mutator: &self.mutator,
            roots: &view,
            console: &self.shared.console,
            thread: Some(&self.cell),
            line: self.line,
        };
        tetra_stdlib::call_builtin(b, &ctx, args)
    }
}
