//! Differential testing of the resolver's slot-addressed execution path.
//!
//! Random programs heavy on shadowing, conditional assignment and
//! `parallel for` are executed twice by the tree-walking interpreter:
//! once with the real [`Resolution`] from the type checker (identifier
//! reads/writes go through `(frame, slot)` coordinates), and once with
//! [`Resolution::all_dynamic()`] — the pre-resolver name-map walk, kept as
//! the semantic oracle. The observable final state (every top-level
//! variable printed at program end) must be identical.
//!
//! Generated parallelism is deterministic by construction: workers write
//! only worker-private names, plus a single shared accumulator updated
//! commutatively (`acc = acc + …`) under a lock.

use proptest::prelude::*;
use tetra_interp::{Interp, InterpConfig};
use tetra_runtime::BufferConsole;
use tetra_types::Resolution;

/// Variables assigned at the top of every generated program.
const VARS: [&str; 4] = ["a", "b", "c", "d"];

struct Gen<'c> {
    choices: &'c [u8],
    pos: usize,
    src: String,
}

impl<'c> Gen<'c> {
    fn next(&mut self) -> u8 {
        let v = self.choices.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        v
    }

    fn var(&mut self) -> &'static str {
        VARS[self.next() as usize % VARS.len()]
    }

    fn line(&mut self, indent: usize, text: &str) {
        for _ in 0..indent {
            self.src.push_str("    ");
        }
        self.src.push_str(text);
        self.src.push('\n');
    }

    /// A small int expression over always-assigned names (`extra` adds
    /// scope-local names like a loop variable). Only `+`/`-` and small
    /// literals, so values stay far from overflow.
    fn expr(&mut self, extra: &[&str]) -> String {
        let operand = |g: &mut Gen| -> String {
            let c = g.next();
            if !extra.is_empty() && c.is_multiple_of(3) {
                extra[c as usize % extra.len()].to_string()
            } else if c % 3 == 1 {
                g.var().to_string()
            } else {
                format!("{}", c % 7)
            }
        };
        let l = operand(self);
        let r = operand(self);
        match self.next() % 3 {
            0 => format!("{l} + {r}"),
            1 => format!("{l} - {r}"),
            _ => format!("{l} + 1"),
        }
    }

    fn stmt(&mut self, indent: usize, depth: usize) {
        match self.next() % 6 {
            // Plain assignment.
            0 => {
                let v = self.var();
                let e = self.expr(&[]);
                self.line(indent, &format!("{v} = {e}"));
            }
            // Compound assignment (one resolve, read-modify-write).
            1 => {
                let v = self.var();
                let e = self.expr(&[]);
                self.line(indent, &format!("{v} = {v} + ({e})"));
            }
            // Conditional assignment: names become Maybe-bound afterwards,
            // forcing the dynamic fallback on later uses.
            2 if depth < 2 => {
                let v = self.var();
                let w = self.var();
                let k = self.next() % 9;
                self.line(indent, &format!("if {v} < {k}:"));
                let e = self.expr(&[]);
                self.line(indent + 1, &format!("{w} = {e}"));
                if self.next().is_multiple_of(2) {
                    self.stmt(indent + 1, depth + 1);
                }
            }
            // Sequential for: rebinds (shadows) one of the shared names.
            3 if depth < 2 => {
                let v = self.var();
                let k = 1 + self.next() % 4;
                self.line(indent, &format!("for {v} in [1 ... {k}]:"));
                let w = self.var();
                let e = self.expr(&[v]);
                self.line(indent + 1, &format!("{w} = {e}"));
            }
            // Parallel for: private induction var + fresh worker-private
            // name, shared accumulation under a lock.
            4 if depth == 0 => {
                let k = 1 + self.next() % 4;
                self.line(indent, &format!("parallel for i in [1 ... {k}]:"));
                self.line(indent + 1, "t = i + 1");
                if self.next().is_multiple_of(2) {
                    let e = self.expr(&["i", "t"]);
                    self.line(indent + 1, &format!("t = t + ({e})"));
                }
                self.line(indent + 1, "lock m:");
                self.line(indent + 2, "acc = acc + t");
            }
            // Default: keep the accumulator moving.
            _ => {
                let e = self.expr(&[]);
                self.line(indent, &format!("acc = acc + ({e})"));
            }
        }
    }
}

fn gen_program(choices: &[u8]) -> String {
    let mut g = Gen { choices, pos: 0, src: String::new() };
    g.line(0, "def main():");
    for (i, v) in VARS.iter().enumerate() {
        g.line(1, &format!("{v} = {}", i + 1));
    }
    g.line(1, "acc = 0");
    let stmts = 2 + (g.next() as usize % 8);
    for _ in 0..stmts {
        g.stmt(1, 0);
    }
    for v in VARS {
        g.line(1, &format!("print({v})"));
    }
    g.line(1, "print(acc)");
    g.src
}

fn run_with(typed: tetra_types::TypedProgram) -> String {
    let console = BufferConsole::new();
    let interp = Interp::new(typed, InterpConfig::default(), console.clone());
    interp.run().expect("generated program must run cleanly");
    console.output()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn slot_resolved_execution_matches_name_map_oracle(
        choices in prop::collection::vec(0u8..=255u8, 4..64)
    ) {
        let src = gen_program(&choices);
        let program = tetra_parser::parse(&src)
            .unwrap_or_else(|d| panic!("generated program failed to parse:\n{src}\n{d}"));
        let typed = tetra_types::check(program)
            .unwrap_or_else(|d| panic!("generated program failed to check:\n{src}\n{d:?}"));
        prop_assert!(
            typed.resolution.resolved_count() > 0,
            "resolver assigned no coordinates — the fast path is not exercised:\n{src}"
        );

        let mut oracle = typed.clone();
        oracle.resolution = Resolution::all_dynamic();

        let fast = run_with(typed);
        let slow = run_with(oracle);
        prop_assert_eq!(
            fast, slow,
            "slot-resolved and name-map executions diverged for:\n{}", src
        );
    }
}
