//! # tetra-lexer
//!
//! Lexical analysis for the Tetra educational parallel programming language
//! (Finlayson et al., *Introducing Tetra*, IPDPSW 2015).
//!
//! Tetra borrows its surface syntax from Python: `#` comments, colon-and-
//! indentation block structure, and keyword operators (`and`, `or`, `not`).
//! Like the paper's C++ implementation, the lexer is written by hand because
//! significant whitespace does not fit generated scanners: it keeps an
//! indentation stack and synthesizes [`token::TokenKind::Indent`] /
//! [`token::TokenKind::Dedent`] tokens, suppresses newlines inside brackets,
//! and skips blank/comment lines.
//!
//! This crate also hosts the two source-location types shared by the whole
//! front end: [`span::Span`] and [`diag::Diagnostic`].
//!
//! ## Example
//!
//! ```
//! use tetra_lexer::{tokenize, TokenKind};
//!
//! let tokens = tokenize("x = 1 + 2\n").unwrap();
//! let kinds: Vec<_> = tokens.iter().map(|t| &t.kind).collect();
//! assert!(matches!(kinds[0], TokenKind::Ident(name) if name == "x"));
//! assert_eq!(*kinds[1], TokenKind::Assign);
//! ```

pub mod diag;
pub mod lexer;
pub mod span;
pub mod token;

pub use diag::{Diagnostic, Stage};
pub use lexer::tokenize;
pub use span::Span;
pub use token::{Token, TokenKind};
