//! Diagnostics shared by every front-end stage.
//!
//! Tetra is an educational language, so error messages matter more than in a
//! production compiler: each diagnostic renders the offending source line
//! with a caret underneath, in the style students know from rustc/Python.

use crate::span::Span;

/// Which stage produced the diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Lexical analysis (bad characters, indentation errors).
    Lex,
    /// Parsing (unexpected tokens).
    Parse,
    /// Type checking / inference.
    Type,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Stage::Lex => "syntax error",
            Stage::Parse => "syntax error",
            Stage::Type => "type error",
        };
        f.write_str(s)
    }
}

/// A single compiler diagnostic: message, location, optional help text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub stage: Stage,
    pub message: String,
    pub span: Span,
    pub help: Option<String>,
}

impl Diagnostic {
    pub fn new(stage: Stage, message: impl Into<String>, span: Span) -> Self {
        Diagnostic { stage, message: message.into(), span, help: None }
    }

    /// Attach a "help:" line shown under the caret.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Render the diagnostic against the source text it refers to.
    ///
    /// Produces output of the form:
    /// ```text
    /// type error at 3:9: cannot add int and string
    ///     total = n + name
    ///             ^^^^^^^^
    /// help: convert with str(n) or parse with int(name)
    /// ```
    pub fn render(&self, source: &str) -> String {
        let mut out = String::new();
        if self.span == Span::DUMMY {
            out.push_str(&format!("{}: {}", self.stage, self.message));
        } else {
            out.push_str(&format!(
                "{} at {}:{}: {}",
                self.stage, self.span.line, self.span.col, self.message
            ));
            if let Some(line_text) = source.lines().nth(self.span.line.saturating_sub(1) as usize) {
                out.push_str(&format!("\n    {}\n    ", line_text));
                // Column is 1-based and counted in characters.
                for _ in 1..self.span.col {
                    out.push(' ');
                }
                let width = self.caret_width(line_text);
                for _ in 0..width {
                    out.push('^');
                }
            }
        }
        if let Some(h) = &self.help {
            out.push_str(&format!("\nhelp: {h}"));
        }
        out
    }

    /// How many carets to draw: the span length clamped to the rest of the
    /// line, and at least one.
    fn caret_width(&self, line_text: &str) -> usize {
        let remaining = line_text.chars().count().saturating_sub(self.span.col as usize - 1);
        (self.span.len() as usize).clamp(1, remaining.max(1))
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.span == Span::DUMMY {
            write!(f, "{}: {}", self.stage, self.message)
        } else {
            write!(f, "{} at {}:{}: {}", self.stage, self.span.line, self.span.col, self.message)
        }
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_caret_under_offending_token() {
        let src = "x = 1\ny = @\n";
        let d = Diagnostic::new(Stage::Lex, "unexpected character '@'", Span::new(10, 11, 2, 5));
        let rendered = d.render(src);
        assert!(rendered.contains("syntax error at 2:5"), "{rendered}");
        assert!(rendered.contains("y = @"), "{rendered}");
        let caret_line = rendered.lines().last().unwrap();
        assert_eq!(caret_line, "        ^");
    }

    #[test]
    fn renders_help_line() {
        let d = Diagnostic::new(Stage::Type, "bad", Span::DUMMY).with_help("try harder");
        assert!(d.render("").ends_with("help: try harder"));
    }

    #[test]
    fn caret_width_clamps_to_line_end() {
        let src = "ab";
        let d = Diagnostic::new(Stage::Parse, "x", Span::new(0, 99, 1, 1));
        let rendered = d.render(src);
        let caret_line = rendered.lines().last().unwrap();
        assert_eq!(caret_line.trim(), "^^");
    }

    #[test]
    fn display_without_span() {
        let d = Diagnostic::new(Stage::Type, "mismatch", Span::DUMMY);
        assert_eq!(d.to_string(), "type error: mismatch");
    }
}
