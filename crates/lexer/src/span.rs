//! Source locations.
//!
//! Every token and AST node carries a [`Span`] so that type errors, runtime
//! errors, the debugger and the race detector can all point at source lines —
//! the paper's pedagogical goals depend on good location reporting.

/// A half-open byte range into a source file, with the 1-based line and
/// column of its first byte cached for cheap error rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
    /// 1-based source line of `start`.
    pub line: u32,
    /// 1-based column (in characters) of `start`.
    pub col: u32,
}

impl Span {
    /// A span covering nothing, used for synthesized nodes.
    pub const DUMMY: Span = Span { start: 0, end: 0, line: 0, col: 0 };

    /// Create a span from raw parts.
    pub fn new(start: u32, end: u32, line: u32, col: u32) -> Self {
        Span { start, end, line, col }
    }

    /// The smallest span covering both `self` and `other`.
    ///
    /// Line/column information is taken from whichever span starts first.
    pub fn to(self, other: Span) -> Span {
        if other == Span::DUMMY {
            return self;
        }
        if self == Span::DUMMY {
            return other;
        }
        let (line, col) =
            if self.start <= other.start { (self.line, self.col) } else { (other.line, other.col) };
        Span { start: self.start.min(other.start), end: self.end.max(other.end), line, col }
    }

    /// Length in bytes.
    pub fn len(&self) -> u32 {
        self.end.saturating_sub(self.start)
    }

    /// True when the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_takes_earliest_location() {
        let a = Span::new(10, 14, 2, 3);
        let b = Span::new(20, 24, 3, 1);
        let m = a.to(b);
        assert_eq!(m.start, 10);
        assert_eq!(m.end, 24);
        assert_eq!(m.line, 2);
        assert_eq!(m.col, 3);
        // Symmetric arguments produce the same merged span.
        assert_eq!(b.to(a), m);
    }

    #[test]
    fn merge_with_dummy_is_identity() {
        let a = Span::new(5, 9, 1, 6);
        assert_eq!(a.to(Span::DUMMY), a);
        assert_eq!(Span::DUMMY.to(a), a);
    }

    #[test]
    fn display_is_line_colon_col() {
        assert_eq!(Span::new(0, 1, 7, 4).to_string(), "7:4");
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(Span::new(3, 8, 1, 4).len(), 5);
        assert!(Span::DUMMY.is_empty());
        assert!(!Span::new(3, 8, 1, 4).is_empty());
    }
}
