//! The hand-written Tetra lexer.
//!
//! The paper notes the lexical analyzer was "hand-written, which was
//! necessary to handle the significant white space in Tetra" — the same is
//! true here. The lexer turns raw source into a flat token stream with
//! synthesized `Newline` / `Indent` / `Dedent` tokens, following the same
//! rules as Python:
//!
//! * indentation is compared against a stack of open indentation levels;
//! * blank lines and comment-only lines do not affect layout;
//! * newlines inside `(`, `[` or `{` brackets are implicit line joins.

use crate::diag::{Diagnostic, Stage};
use crate::span::Span;
use crate::token::{Token, TokenKind};
use tetra_intern::Symbol;

/// How many columns a tab character advances. Mixing tabs and spaces is
/// accepted as long as the resulting column counts are consistent.
const TAB_WIDTH: u32 = 8;

/// Tokenize a complete source file.
///
/// Returns the token stream (always terminated by [`TokenKind::Eof`]) or the
/// first lexical error encountered.
pub fn tokenize(source: &str) -> Result<Vec<Token>, Diagnostic> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    src: &'s str,
    /// Byte offset of the next unread character.
    pos: usize,
    /// 1-based current line.
    line: u32,
    /// 1-based column of the next character.
    col: u32,
    /// Stack of enclosing indentation widths; always starts with 0.
    indents: Vec<u32>,
    /// Depth of open `(`/`[`/`{` brackets; newlines are joined when > 0.
    brackets: u32,
    /// True when we are at the start of a logical line and must process
    /// indentation before scanning tokens.
    at_line_start: bool,
    out: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            pos: 0,
            line: 1,
            col: 1,
            indents: vec![0],
            brackets: 0,
            at_line_start: true,
            out: Vec::with_capacity(src.len() / 4),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, Diagnostic> {
        while self.pos < self.src.len() {
            if self.at_line_start && self.brackets == 0 {
                self.handle_indentation()?;
                if self.pos >= self.src.len() {
                    break;
                }
            }
            match self.peek() {
                None => break,
                Some(c) => self.scan_token(c)?,
            }
        }
        // Close the final logical line and any open blocks.
        if !self.at_line_start {
            let span = self.here(0);
            self.out.push(Token::new(TokenKind::Newline, span));
        }
        while self.indents.len() > 1 {
            self.indents.pop();
            let span = self.here(0);
            self.out.push(Token::new(TokenKind::Dedent, span));
        }
        let span = self.here(0);
        self.out.push(Token::new(TokenKind::Eof, span));
        Ok(self.out)
    }

    // ---- character primitives ------------------------------------------

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn peek3(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else if c == '\t' {
            self.col = (self.col - 1) / TAB_WIDTH * TAB_WIDTH + TAB_WIDTH + 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// A span for the next `len` bytes at the current position.
    fn here(&self, len: u32) -> Span {
        Span::new(self.pos as u32, self.pos as u32 + len, self.line, self.col)
    }

    fn error(&self, msg: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic::new(Stage::Lex, msg, span)
    }

    // ---- layout ---------------------------------------------------------

    /// Measure the indentation of the current physical line; if the line is
    /// blank or a comment, consume it entirely; otherwise emit the
    /// appropriate `Indent`/`Dedent` tokens.
    fn handle_indentation(&mut self) -> Result<(), Diagnostic> {
        loop {
            let line_start = self.pos;
            let mut width = 0u32;
            loop {
                match self.peek() {
                    Some(' ') => {
                        width += 1;
                        self.bump();
                    }
                    Some('\t') => {
                        width = width / TAB_WIDTH * TAB_WIDTH + TAB_WIDTH;
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.peek() {
                // Blank line or comment-only line: swallow, restart on next.
                Some('\n') => {
                    self.bump();
                    continue;
                }
                Some('\r') => {
                    self.bump();
                    if self.peek() == Some('\n') {
                        self.bump();
                    }
                    continue;
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                    continue;
                }
                None => return Ok(()),
                Some(_) => {
                    self.emit_layout(width, line_start)?;
                    self.at_line_start = false;
                    return Ok(());
                }
            }
        }
    }

    fn emit_layout(&mut self, width: u32, line_start: usize) -> Result<(), Diagnostic> {
        let current = *self.indents.last().expect("indent stack never empty");
        let span = Span::new(line_start as u32, self.pos as u32, self.line, 1);
        if width > current {
            self.indents.push(width);
            self.out.push(Token::new(TokenKind::Indent, span));
        } else if width < current {
            while width < *self.indents.last().expect("indent stack never empty") {
                self.indents.pop();
                self.out.push(Token::new(TokenKind::Dedent, span));
            }
            if width != *self.indents.last().expect("indent stack never empty") {
                return Err(self
                    .error("unindent does not match any outer indentation level", span)
                    .with_help("make sure this line lines up with an enclosing block"));
            }
        }
        Ok(())
    }

    // ---- token scanning --------------------------------------------------

    fn scan_token(&mut self, c: char) -> Result<(), Diagnostic> {
        match c {
            ' ' | '\t' => {
                self.bump();
            }
            '\r' => {
                self.bump(); // part of \r\n; the \n is handled next
            }
            '\n' => {
                let span = self.here(1);
                self.bump();
                if self.brackets == 0 {
                    self.out.push(Token::new(TokenKind::Newline, span));
                    self.at_line_start = true;
                }
            }
            '#' => {
                while let Some(c) = self.peek() {
                    if c == '\n' {
                        break;
                    }
                    self.bump();
                }
            }
            '"' | '\'' => self.scan_string(c)?,
            '0'..='9' => self.scan_number()?,
            c if c.is_alphabetic() || c == '_' => self.scan_ident(),
            _ => self.scan_operator(c)?,
        }
        Ok(())
    }

    fn scan_ident(&mut self) {
        let start = self.pos;
        let span0 = self.here(0);
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        let span = Span::new(start as u32, self.pos as u32, span0.line, span0.col);
        let kind =
            TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(Symbol::intern(text)));
        self.out.push(Token::new(kind, span));
    }

    fn scan_number(&mut self) -> Result<(), Diagnostic> {
        let start = self.pos;
        let span0 = self.here(0);
        while matches!(self.peek(), Some('0'..='9')) {
            self.bump();
        }
        let mut is_real = false;
        // A '.' continues a real literal only when NOT followed by another
        // '.', so `[1 ... 100]` and `1...100` lex as int, ellipsis, int.
        if self.peek() == Some('.')
            && self.peek2() != Some('.')
            && matches!(self.peek2(), Some('0'..='9') | None | Some(_))
        {
            // Require a digit after the dot: `1.x` is an error, `1.` is too.
            if matches!(self.peek2(), Some('0'..='9')) {
                is_real = true;
                self.bump(); // '.'
                while matches!(self.peek(), Some('0'..='9')) {
                    self.bump();
                }
            } else if !matches!(self.peek2(), Some('.')) {
                let span = Span::new(start as u32, self.pos as u32 + 1, span0.line, span0.col);
                return Err(self
                    .error("real literal must have digits after the decimal point", span)
                    .with_help("write `1.0` instead of `1.`"));
            }
        }
        // Optional exponent: 1e9, 2.5e-3.
        if matches!(self.peek(), Some('e') | Some('E')) {
            let mut probe = self.pos + 1;
            let bytes = self.src.as_bytes();
            if probe < bytes.len() && (bytes[probe] == b'+' || bytes[probe] == b'-') {
                probe += 1;
            }
            if probe < bytes.len() && bytes[probe].is_ascii_digit() {
                is_real = true;
                self.bump(); // e
                if matches!(self.peek(), Some('+') | Some('-')) {
                    self.bump();
                }
                while matches!(self.peek(), Some('0'..='9')) {
                    self.bump();
                }
            }
        }
        let text = &self.src[start..self.pos];
        let span = Span::new(start as u32, self.pos as u32, span0.line, span0.col);
        let kind = if is_real {
            TokenKind::Real(
                text.parse::<f64>()
                    .map_err(|e| self.error(format!("invalid real literal `{text}`: {e}"), span))?,
            )
        } else {
            TokenKind::Int(text.parse::<i64>().map_err(|_| {
                self.error(format!("integer literal `{text}` is too large"), span)
                    .with_help("Tetra integers are 64-bit signed")
            })?)
        };
        self.out.push(Token::new(kind, span));
        Ok(())
    }

    fn scan_string(&mut self, quote: char) -> Result<(), Diagnostic> {
        let start = self.pos;
        let span0 = self.here(1);
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                None | Some('\n') => {
                    let span = Span::new(start as u32, self.pos as u32, span0.line, span0.col);
                    return Err(self
                        .error("unterminated string literal", span)
                        .with_help("strings may not span multiple lines"));
                }
                Some(c) if c == quote => break,
                Some('\\') => match self.bump() {
                    Some('n') => value.push('\n'),
                    Some('t') => value.push('\t'),
                    Some('r') => value.push('\r'),
                    Some('\\') => value.push('\\'),
                    Some('0') => value.push('\0'),
                    Some('"') => value.push('"'),
                    Some('\'') => value.push('\''),
                    Some(other) => {
                        let span = Span::new(
                            (self.pos - other.len_utf8() - 1) as u32,
                            self.pos as u32,
                            self.line,
                            self.col.saturating_sub(2),
                        );
                        return Err(self
                            .error(format!("unknown escape sequence `\\{other}`"), span)
                            .with_help("supported escapes: \\n \\t \\r \\\\ \\0 \\\" \\'"));
                    }
                    None => {
                        let span = Span::new(start as u32, self.pos as u32, span0.line, span0.col);
                        return Err(self.error("unterminated string literal", span));
                    }
                },
                Some(c) => value.push(c),
            }
        }
        let span = Span::new(start as u32, self.pos as u32, span0.line, span0.col);
        self.out.push(Token::new(TokenKind::Str(value), span));
        Ok(())
    }

    fn scan_operator(&mut self, c: char) -> Result<(), Diagnostic> {
        use TokenKind::*;
        let span1 = self.here(1);
        let span2 = self.here(2);
        let two = |k: TokenKind, me: &mut Self| {
            me.bump();
            me.bump();
            me.out.push(Token::new(k, span2));
        };
        let one = |k: TokenKind, me: &mut Self| {
            me.bump();
            me.out.push(Token::new(k, span1));
        };
        let next = self.peek2();
        match (c, next) {
            ('+', Some('=')) => two(PlusAssign, self),
            ('-', Some('=')) => two(MinusAssign, self),
            ('*', Some('=')) => two(StarAssign, self),
            ('/', Some('=')) => two(SlashAssign, self),
            ('%', Some('=')) => two(PercentAssign, self),
            ('=', Some('=')) => two(Eq, self),
            ('!', Some('=')) => two(Ne, self),
            ('<', Some('=')) => two(Le, self),
            ('>', Some('=')) => two(Ge, self),
            ('+', _) => one(Plus, self),
            ('-', _) => one(Minus, self),
            ('*', _) => one(Star, self),
            ('/', _) => one(Slash, self),
            ('%', _) => one(Percent, self),
            ('=', _) => one(Assign, self),
            ('<', _) => one(Lt, self),
            ('>', _) => one(Gt, self),
            ('(', _) => {
                self.brackets += 1;
                one(LParen, self);
            }
            ('[', _) => {
                self.brackets += 1;
                one(LBracket, self);
            }
            ('{', _) => {
                self.brackets += 1;
                one(LBrace, self);
            }
            (')', _) => {
                self.brackets = self.brackets.saturating_sub(1);
                one(RParen, self);
            }
            (']', _) => {
                self.brackets = self.brackets.saturating_sub(1);
                one(RBracket, self);
            }
            ('}', _) => {
                self.brackets = self.brackets.saturating_sub(1);
                one(RBrace, self);
            }
            (',', _) => one(Comma, self),
            (':', _) => one(Colon, self),
            ('.', Some('.')) if self.peek3() == Some('.') => {
                let span3 = self.here(3);
                self.bump();
                self.bump();
                self.bump();
                self.out.push(Token::new(Ellipsis, span3));
            }
            ('.', _) => one(Dot, self),
            ('!', _) => {
                return Err(self
                    .error("unexpected character `!`", span1)
                    .with_help("Tetra uses `not` for logical negation and `!=` for inequality"))
            }
            (c, _) => {
                return Err(self.error(format!("unexpected character `{c}`"), span1));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_assignment() {
        use TokenKind::*;
        assert_eq!(kinds("x = 42\n"), vec![Ident("x".into()), Assign, Int(42), Newline, Eof]);
    }

    #[test]
    fn indentation_produces_indent_dedent() {
        use TokenKind::*;
        let toks = kinds("if x:\n    y = 1\nz = 2\n");
        assert_eq!(
            toks,
            vec![
                If,
                Ident("x".into()),
                Colon,
                Newline,
                Indent,
                Ident("y".into()),
                Assign,
                Int(1),
                Newline,
                Dedent,
                Ident("z".into()),
                Assign,
                Int(2),
                Newline,
                Eof
            ]
        );
    }

    #[test]
    fn nested_blocks_close_at_eof() {
        use TokenKind::*;
        let toks = kinds("if a:\n  if b:\n    c = 1");
        let dedents = toks.iter().filter(|k| **k == Dedent).count();
        assert_eq!(dedents, 2);
        assert_eq!(toks.last(), Some(&Eof));
        // A Newline is synthesized for the unterminated last line.
        assert!(toks.contains(&Newline));
    }

    #[test]
    fn blank_and_comment_lines_do_not_affect_layout() {
        use TokenKind::*;
        let toks = kinds("if a:\n    x = 1\n\n    # comment\n    y = 2\n");
        let indents = toks.iter().filter(|k| **k == Indent).count();
        let dedents = toks.iter().filter(|k| **k == Dedent).count();
        assert_eq!(indents, 1);
        assert_eq!(dedents, 1);
    }

    #[test]
    fn comments_run_to_end_of_line() {
        use TokenKind::*;
        assert_eq!(
            kinds("x = 1 # the answer\ny = 2\n"),
            vec![
                Ident("x".into()),
                Assign,
                Int(1),
                Newline,
                Ident("y".into()),
                Assign,
                Int(2),
                Newline,
                Eof
            ]
        );
    }

    #[test]
    fn brackets_join_lines() {
        use TokenKind::*;
        let toks = kinds("x = [1,\n     2,\n     3]\n");
        let newlines = toks.iter().filter(|k| **k == Newline).count();
        assert_eq!(newlines, 1, "only the final newline survives");
        assert!(!toks.contains(&Indent));
    }

    #[test]
    fn ellipsis_range_literal() {
        use TokenKind::*;
        assert_eq!(
            kinds("[1 ... 100]\n"),
            vec![LBracket, Int(1), Ellipsis, Int(100), RBracket, Newline, Eof]
        );
        // Also without spaces.
        assert_eq!(
            kinds("[1...100]\n"),
            vec![LBracket, Int(1), Ellipsis, Int(100), RBracket, Newline, Eof]
        );
    }

    #[test]
    fn real_literals() {
        use TokenKind::*;
        assert_eq!(kinds("3.25\n"), vec![Real(3.25), Newline, Eof]);
        assert_eq!(kinds("1e3\n"), vec![Real(1000.0), Newline, Eof]);
        assert_eq!(kinds("2.5e-1\n"), vec![Real(0.25), Newline, Eof]);
    }

    #[test]
    fn trailing_dot_is_an_error() {
        let err = tokenize("x = 1.\n").unwrap_err();
        assert!(err.message.contains("decimal point"), "{err}");
    }

    #[test]
    fn int_overflow_is_reported() {
        let err = tokenize("99999999999999999999\n").unwrap_err();
        assert!(err.message.contains("too large"), "{err}");
    }

    #[test]
    fn string_escapes() {
        use TokenKind::*;
        assert_eq!(
            kinds(r#"print("a\tb\n")"#),
            vec![Ident("print".into()), LParen, Str("a\tb\n".into()), RParen, Newline, Eof]
        );
    }

    #[test]
    fn single_quoted_strings() {
        use TokenKind::*;
        assert_eq!(kinds("'hi'\n"), vec![Str("hi".into()), Newline, Eof]);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = tokenize("x = \"oops\n").unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");
        assert_eq!(err.span.line, 1);
    }

    #[test]
    fn unknown_escape_is_an_error() {
        let err = tokenize(r#"x = "bad \q escape""#).unwrap_err();
        assert!(err.message.contains("escape"), "{err}");
    }

    #[test]
    fn bad_unindent_is_an_error() {
        let err = tokenize("if a:\n    x = 1\n  y = 2\n").unwrap_err();
        assert!(err.message.contains("unindent"), "{err}");
        assert_eq!(err.span.line, 3);
    }

    #[test]
    fn compound_assignment_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("x += 1\nx -= 2\nx *= 3\nx /= 4\nx %= 5\n")
                .into_iter()
                .filter(|k| matches!(
                    k,
                    PlusAssign | MinusAssign | StarAssign | SlashAssign | PercentAssign
                ))
                .count(),
            5
        );
    }

    #[test]
    fn comparison_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("a == b != c <= d >= e < f > g\n")
                .into_iter()
                .filter(|k| matches!(k, Eq | Ne | Le | Ge | Lt | Gt))
                .count(),
            6
        );
    }

    #[test]
    fn bang_alone_gets_helpful_error() {
        let err = tokenize("if !x:\n").unwrap_err();
        assert!(err.help.as_deref().unwrap_or("").contains("not"), "{err:?}");
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = tokenize("x = 1\n  \ny = 2\n").unwrap();
        let y = toks.iter().find(|t| t.kind == TokenKind::Ident("y".into())).unwrap();
        assert_eq!(y.span.line, 3);
        assert_eq!(y.span.col, 1);
        let two = toks.iter().find(|t| t.kind == TokenKind::Int(2)).unwrap();
        assert_eq!(two.span.col, 5);
    }

    #[test]
    fn crlf_line_endings() {
        use TokenKind::*;
        assert_eq!(
            kinds("x = 1\r\ny = 2\r\n"),
            vec![
                Ident("x".into()),
                Assign,
                Int(1),
                Newline,
                Ident("y".into()),
                Assign,
                Int(2),
                Newline,
                Eof
            ]
        );
    }

    #[test]
    fn empty_source_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("\n\n# only comments\n"), vec![TokenKind::Eof]);
    }

    #[test]
    fn tabs_advance_to_tab_stops() {
        // A tab then four spaces is deeper than four spaces.
        let toks = kinds("if a:\n\tx = 1\n");
        assert!(toks.contains(&TokenKind::Indent));
    }

    #[test]
    fn paper_figure_1_lexes() {
        let src = "\
# a simple factorial function
def fact(x int) int:
    if x == 0:
        return 1
    else:
        return x * fact(x - 1)

# a main function which handles I/O
def main():
    print(\"enter n: \")
    n = read_int()
    print(n, \"! = \", fact(n))
";
        let toks = tokenize(src).unwrap();
        assert!(toks.iter().any(|t| t.kind == TokenKind::Def));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Def).count(), 2);
    }
}
