//! Token definitions for the Tetra language.

use crate::span::Span;
use tetra_intern::Symbol;

/// Every lexical category Tetra knows about.
///
/// Layout tokens (`Newline`, `Indent`, `Dedent`) are synthesized from
/// significant whitespace exactly as in Python; the parser treats them like
/// ordinary punctuation.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals
    Int(i64),
    Real(f64),
    Str(String),
    /// `true` / `false` keywords, carried with their value.
    Bool(bool),

    /// An identifier (variable, function or lock name), interned so every
    /// later stage compares and hashes names as integers.
    Ident(Symbol),

    // Keywords
    Def,
    If,
    Elif,
    Else,
    While,
    For,
    In,
    Return,
    Break,
    Continue,
    Pass,
    Parallel,
    Background,
    Lock,
    Try,
    Catch,
    And,
    Or,
    Not,
    Assert,
    /// `none` — the unit value/return type.
    None,
    // Built-in type names
    TyInt,
    TyReal,
    TyString,
    TyBool,

    // Operators and punctuation
    Assign,        // =
    PlusAssign,    // +=
    MinusAssign,   // -=
    StarAssign,    // *=
    SlashAssign,   // /=
    PercentAssign, // %=
    Eq,            // ==
    Ne,            // !=
    Lt,            // <
    Gt,            // >
    Le,            // <=
    Ge,            // >=
    Plus,          // +
    Minus,         // -
    Star,          // *
    Slash,         // /
    Percent,       // %
    LParen,        // (
    RParen,        // )
    LBracket,      // [
    RBracket,      // ]
    LBrace,        // {
    RBrace,        // }
    Comma,         // ,
    Colon,         // :
    Dot,           // .
    Ellipsis,      // ... (array range literal [a ... b])

    // Layout
    Newline,
    Indent,
    Dedent,
    Eof,
}

impl TokenKind {
    /// Keyword lookup used by the lexer after scanning an identifier.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match ident {
            "def" => Def,
            "if" => If,
            "elif" => Elif,
            "else" => Else,
            "while" => While,
            "for" => For,
            "in" => In,
            "return" => Return,
            "break" => Break,
            "continue" => Continue,
            "pass" => Pass,
            "parallel" => Parallel,
            "background" => Background,
            "lock" => Lock,
            "try" => Try,
            "catch" => Catch,
            "and" => And,
            "or" => Or,
            "not" => Not,
            "assert" => Assert,
            "none" => None,
            "true" => Bool(true),
            "false" => Bool(false),
            "int" => TyInt,
            "real" => TyReal,
            "string" => TyString,
            "bool" => TyBool,
            _ => return Option::None,
        })
    }

    /// A short human-readable name used in "expected X, found Y" messages.
    pub fn describe(&self) -> String {
        use TokenKind::*;
        match self {
            Int(v) => format!("integer literal `{v}`"),
            Real(v) => format!("real literal `{v}`"),
            Str(_) => "string literal".to_string(),
            Bool(v) => format!("`{v}`"),
            Ident(name) => format!("identifier `{name}`"),
            Newline => "end of line".to_string(),
            Indent => "indented block".to_string(),
            Dedent => "end of block".to_string(),
            Eof => "end of file".to_string(),
            other => format!("`{}`", other.lexeme()),
        }
    }

    /// The canonical source text for fixed tokens (empty for literals).
    pub fn lexeme(&self) -> &'static str {
        use TokenKind::*;
        match self {
            Def => "def",
            If => "if",
            Elif => "elif",
            Else => "else",
            While => "while",
            For => "for",
            In => "in",
            Return => "return",
            Break => "break",
            Continue => "continue",
            Pass => "pass",
            Parallel => "parallel",
            Background => "background",
            Lock => "lock",
            Try => "try",
            Catch => "catch",
            And => "and",
            Or => "or",
            Not => "not",
            Assert => "assert",
            None => "none",
            TyInt => "int",
            TyReal => "real",
            TyString => "string",
            TyBool => "bool",
            Assign => "=",
            PlusAssign => "+=",
            MinusAssign => "-=",
            StarAssign => "*=",
            SlashAssign => "/=",
            PercentAssign => "%=",
            Eq => "==",
            Ne => "!=",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            LParen => "(",
            RParen => ")",
            LBracket => "[",
            RBracket => "]",
            LBrace => "{",
            RBrace => "}",
            Comma => ",",
            Colon => ":",
            Dot => ".",
            Ellipsis => "...",
            _ => "",
        }
    }
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

impl Token {
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_round_trip_through_lexeme() {
        for kw in ["def", "parallel", "background", "lock", "elif", "assert", "none"] {
            let tok = TokenKind::keyword(kw).expect(kw);
            assert_eq!(tok.lexeme(), kw);
        }
    }

    #[test]
    fn bool_keywords_carry_value() {
        assert_eq!(TokenKind::keyword("true"), Some(TokenKind::Bool(true)));
        assert_eq!(TokenKind::keyword("false"), Some(TokenKind::Bool(false)));
    }

    #[test]
    fn non_keywords_are_none() {
        assert_eq!(TokenKind::keyword("deffy"), None);
        assert_eq!(TokenKind::keyword(""), None);
        assert_eq!(TokenKind::keyword("Parallel"), None); // case-sensitive
    }

    #[test]
    fn describe_is_reader_friendly() {
        assert_eq!(TokenKind::Int(7).describe(), "integer literal `7`");
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(TokenKind::Colon.describe(), "`:`");
        assert_eq!(TokenKind::Eof.describe(), "end of file");
    }
}
