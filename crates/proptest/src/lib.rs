//! API-compatible subset of the `proptest` crate for offline builds.
//!
//! The build environment has no crates.io access, so this crate provides
//! the property-testing surface the workspace uses: the [`proptest!`]
//! macro, the [`Strategy`] trait with `prop_map` / `prop_recursive` /
//! `boxed`, [`prop_oneof!`], `prop::collection::vec`, integer-range and
//! simplified string-pattern strategies, and `prop_assert!` /
//! `prop_assert_eq!` / [`TestCaseError`].
//!
//! Differences from real proptest:
//!
//! * **no shrinking** — a failing case reports the generated input
//!   verbatim instead of a minimized one;
//! * **deterministic seeding** — each test derives its RNG seed from the
//!   test name, so failures reproduce across runs without a regressions
//!   file;
//! * string strategies implement only the pattern subset used here
//!   (`\PC`, character classes, `{m,n}` / `*` / `+` quantifiers).

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic xoshiro256++ used to drive generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn seeded(seed: u64) -> TestRng {
        let mut s0 = seed ^ 0xA076_1D64_78BD_642F;
        TestRng {
            s: [splitmix64(&mut s0), splitmix64(&mut s0), splitmix64(&mut s0), splitmix64(&mut s0)],
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    pub fn int_in(&mut self, lo: i128, hi_exclusive: i128) -> i128 {
        debug_assert!(lo < hi_exclusive);
        let span = (hi_exclusive - lo) as u128;
        lo + (self.next_u64() as u128 % span) as i128
    }
}

/// FNV-1a hash of the test name: the per-test base seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Errors and config
// ---------------------------------------------------------------------------

/// A test-case failure (the error side of fallible property bodies).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }

    /// Proptest's `Fail` constructor alias.
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration (`cases` is the only knob the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of random values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }

    /// Recursive strategies: `recurse` receives a strategy for the levels
    /// below and builds one level above it. `depth` bounds recursion; the
    /// `desired_size`/`expected_branch_size` hints are accepted for
    /// compatibility but unused (no shrinking, no size targeting).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            let leaf = base.clone();
            // Each level flips between staying a leaf and recursing, so
            // every depth (including plain leaves) stays reachable at the
            // top level.
            current = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                if rng.next_u64() & 1 == 0 {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            }));
        }
        current
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: 'static> BoxedStrategy<T> {
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::new(f))
    }

    /// Uniform choice between alternatives (the engine of [`prop_oneof!`]).
    pub fn union(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
            let i = rng.below(options.len() as u64) as usize;
            options[i].generate(rng)
        }))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()`: the full domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a full-domain generator.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

// ---- integer range strategies ---------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over an empty range");
                rng.int_in(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy over an empty range");
                rng.int_in(lo as i128, hi as i128 + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---- tuple strategies ------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---- collection strategies -------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Sizes accepted by [`vec`].
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "vec strategy over an empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---- string pattern strategies ---------------------------------------------

/// One parsed regex-subset atom with its repetition bounds.
#[derive(Debug, Clone)]
enum Atom {
    /// `\PC`: any non-control scalar value.
    Printable,
    /// `[a-z0-9_]`-style class, expanded to candidate chars.
    Class(Vec<char>),
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut pieces = Vec::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '\\' => {
                // Only the escapes this workspace uses: \PC, plus literal
                // escapes of regex metacharacters.
                if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                    i += 3;
                    Atom::Printable
                } else {
                    let c = *chars.get(i + 1).unwrap_or(&'\\');
                    i += 2;
                    Atom::Literal(c)
                }
            }
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // closing ]
                assert!(!set.is_empty(), "empty character class in `{pattern}`");
                Atom::Class(set)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == '}')
                    .map(|p| p + i)
                    .unwrap_or_else(|| panic!("unclosed {{ in `{pattern}`"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 16)
            }
            Some('+') => {
                i += 1;
                (1, 16)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn random_printable(rng: &mut TestRng) -> char {
    loop {
        let c = match rng.below(10) {
            // Mostly ASCII, with a tail of wider unicode to stress the
            // lexer's multi-byte handling.
            0..=6 => (0x20 + rng.below(0x5F) as u32) as u8 as char,
            7 | 8 => match char::from_u32(0xA0 + rng.below(0x2000) as u32) {
                Some(c) => c,
                None => continue,
            },
            _ => match char::from_u32(0x1_F300 + rng.below(0x200) as u32) {
                Some(c) => c,
                None => continue,
            },
        };
        if !c.is_control() {
            return c;
        }
    }
}

/// A strategy compiled from a string pattern (the proptest regex syntax
/// subset described in the module docs).
pub struct PatternStrategy {
    pieces: Vec<Piece>,
}

impl Strategy for PatternStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let n = if piece.max > piece.min {
                piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize
            } else {
                piece.min
            };
            for _ in 0..n {
                match &piece.atom {
                    Atom::Printable => out.push(random_printable(rng)),
                    Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        // Compiling per call keeps `&str` itself the strategy (as in real
        // proptest); patterns here are tiny.
        PatternStrategy { pieces: parse_pattern(self) }.generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::BoxedStrategy::union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(left, right)` / with a trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}", l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `config.cases` generated
/// inputs; the failing input is printed on the first failure (no
/// shrinking).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property_test(
                    stringify!($name),
                    config.cases,
                    |__rng| {
                        let __values = ($($crate::Strategy::generate(&($strategy), __rng),)+);
                        let __described = format!("{:?}", __values);
                        let ($($pat,)+) = __values;
                        let __outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                        (__described, __outcome)
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$attr])*
                fn $name($($pat in $strategy),+) $body
            )*
        }
    };
}

/// Test-runner loop behind [`proptest!`] (public for the macro, not API).
pub fn run_property_test(
    name: &str,
    cases: u32,
    mut one_case: impl FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
) {
    let base = seed_from_name(name);
    for case in 0..cases {
        let mut rng = TestRng::seeded(base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let described = std::cell::RefCell::new(String::new());
        let outcome = {
            let described = &described;
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let (desc, result) = one_case(&mut rng);
                *described.borrow_mut() = desc;
                result
            }))
        };
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                panic!(
                    "proptest `{name}` failed at case {case}/{cases}: {e}\n\
                     input: {}",
                    described.borrow()
                );
            }
            Err(panic_payload) => {
                eprintln!(
                    "proptest `{name}` panicked at case {case}/{cases}\ninput: {}",
                    described.borrow()
                );
                std::panic::resume_unwind(panic_payload);
            }
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirrors proptest's `prelude::prop` module facade.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -50i64..50, n in 0usize..10) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!(n < 10);
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u8..255, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
        }

        #[test]
        fn string_class_pattern(s in "[a-z]{0,12}") {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn printable_pattern_has_no_controls(s in "\\PC{0,40}") {
            prop_assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn oneof_and_recursive_generate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = prop_oneof![(0i64..5).prop_map(Tree::Leaf), Just(Tree::Leaf(-1))];
        let strat = leaf.prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::TestRng::seeded(7);
        let mut saw_node = false;
        let mut saw_leaf = false;
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3, "{t:?}");
            match t {
                Tree::Leaf(v) => {
                    assert!((-1..5).contains(&v), "leaf out of range: {v}");
                    saw_leaf = true;
                }
                Tree::Node(..) => saw_node = true,
            }
        }
        assert!(saw_leaf && saw_node);
    }

    #[test]
    fn failures_report_input() {
        let result = std::panic::catch_unwind(|| {
            crate::run_property_test("always_fails", 3, |rng| {
                let v = rng.next_u64();
                (format!("{v}"), Err(crate::TestCaseError::fail("nope")))
            });
        });
        assert!(result.is_err());
    }
}
