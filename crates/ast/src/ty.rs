//! The Tetra static type language.
//!
//! Tetra is statically typed with local type inference (paper §II): function
//! parameters and return values carry declared types; local variables get
//! their types from first assignment. The primitive types are `int`, `real`,
//! `string` and `bool`; compound types are arrays `[T]` (including nested,
//! i.e. multi-dimensional) plus the paper's future-work extensions built
//! here: dictionaries `{K: V}` and tuples `(T1, T2, ...)`.

/// A Tetra type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float (`real` in Tetra).
    Real,
    /// Immutable UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// The unit type: functions with no declared return type return `none`.
    None,
    /// `[T]` — a mutable, heap-allocated, garbage-collected array.
    Array(Box<Type>),
    /// `{K: V}` — an associative array (future-work extension, §VI).
    Dict(Box<Type>, Box<Type>),
    /// `(T1, T2, ...)` — an immutable tuple (future-work extension, §VI).
    Tuple(Vec<Type>),
}

impl Type {
    /// Convenience constructor for `[elem]`.
    pub fn array(elem: Type) -> Type {
        Type::Array(Box::new(elem))
    }

    /// Convenience constructor for `{key: value}`.
    pub fn dict(key: Type, value: Type) -> Type {
        Type::Dict(Box::new(key), Box::new(value))
    }

    /// True for `int` and `real`, the types arithmetic operates on.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Type::Int | Type::Real)
    }

    /// True for types that may be compared with `<`, `<=`, `>`, `>=`.
    pub fn is_ordered(&self) -> bool {
        matches!(self, Type::Int | Type::Real | Type::Str)
    }

    /// True for types usable as dictionary keys (hashable, immutable).
    pub fn is_hashable(&self) -> bool {
        matches!(self, Type::Int | Type::Str | Type::Bool)
    }

    /// The element type produced by iterating a value of this type, if any
    /// (`for x in seq`). Arrays yield elements; strings yield 1-char strings.
    pub fn element(&self) -> Option<Type> {
        match self {
            Type::Array(t) => Some((**t).clone()),
            Type::Str => Some(Type::Str),
            _ => Option::None,
        }
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Real => write!(f, "real"),
            Type::Str => write!(f, "string"),
            Type::Bool => write!(f, "bool"),
            Type::None => write!(f, "none"),
            Type::Array(t) => write!(f, "[{t}]"),
            Type::Dict(k, v) => write!(f, "{{{k}: {v}}}"),
            Type::Tuple(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_readably() {
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::array(Type::Int).to_string(), "[int]");
        assert_eq!(Type::array(Type::array(Type::Real)).to_string(), "[[real]]");
        assert_eq!(Type::dict(Type::Str, Type::Int).to_string(), "{string: int}");
        assert_eq!(Type::Tuple(vec![Type::Int, Type::Str]).to_string(), "(int, string)");
    }

    #[test]
    fn numeric_and_ordered_classification() {
        assert!(Type::Int.is_numeric());
        assert!(Type::Real.is_numeric());
        assert!(!Type::Str.is_numeric());
        assert!(Type::Str.is_ordered());
        assert!(!Type::Bool.is_ordered());
        assert!(!Type::array(Type::Int).is_ordered());
    }

    #[test]
    fn hashable_keys() {
        assert!(Type::Int.is_hashable());
        assert!(Type::Str.is_hashable());
        assert!(Type::Bool.is_hashable());
        assert!(!Type::Real.is_hashable());
        assert!(!Type::array(Type::Int).is_hashable());
    }

    #[test]
    fn iteration_element_types() {
        assert_eq!(Type::array(Type::Bool).element(), Some(Type::Bool));
        assert_eq!(Type::Str.element(), Some(Type::Str));
        assert_eq!(Type::Int.element(), None);
    }
}
