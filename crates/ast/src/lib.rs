//! # tetra-ast
//!
//! The abstract syntax tree for the Tetra educational parallel programming
//! language, together with its static type language, a pretty-printer that
//! emits canonical Tetra source, and a read-only visitor.
//!
//! The tree mirrors the language of the paper (§II): functions with typed
//! parameters, Python-like statements, and the four parallel constructs as
//! first-class statement forms — [`nodes::StmtKind::Parallel`],
//! [`nodes::StmtKind::Background`], [`nodes::StmtKind::ParallelFor`] and
//! [`nodes::StmtKind::Lock`].

pub mod nodes;
pub mod pretty;
pub mod ty;
pub mod visit;

pub use nodes::{
    AssignOp, BinOp, Block, Expr, ExprKind, FuncDef, NodeId, Param, Program, Stmt, StmtKind,
    Target, UnOp,
};
pub use ty::Type;
