//! A read-only visitor over the AST.
//!
//! Used by passes that need a uniform walk — e.g. building the debugger's
//! line table, collecting lock names, or counting parallel constructs —
//! without each of them re-implementing recursion.

use crate::nodes::*;

/// Visitor callbacks. Every method has a default that continues the walk;
/// override only what you need and call the `walk_*` helper to descend.
pub trait Visitor {
    fn visit_func(&mut self, f: &FuncDef) {
        walk_func(self, f);
    }
    fn visit_stmt(&mut self, s: &Stmt) {
        walk_stmt(self, s);
    }
    fn visit_expr(&mut self, e: &Expr) {
        walk_expr(self, e);
    }
}

/// Walk every function of a program.
pub fn walk_program<V: Visitor + ?Sized>(v: &mut V, p: &Program) {
    for f in &p.funcs {
        v.visit_func(f);
    }
}

/// Walk a function body.
pub fn walk_func<V: Visitor + ?Sized>(v: &mut V, f: &FuncDef) {
    walk_block(v, &f.body);
}

/// Walk every statement of a block.
pub fn walk_block<V: Visitor + ?Sized>(v: &mut V, b: &Block) {
    for s in &b.stmts {
        v.visit_stmt(s);
    }
}

/// Walk the children of one statement.
pub fn walk_stmt<V: Visitor + ?Sized>(v: &mut V, s: &Stmt) {
    match &s.kind {
        StmtKind::Expr(e) => v.visit_expr(e),
        StmtKind::Assign { target, value, .. } => {
            if let Target::Index { base, index, .. } = target {
                v.visit_expr(base);
                v.visit_expr(index);
            }
            v.visit_expr(value);
        }
        StmtKind::If { cond, then, elifs, els } => {
            v.visit_expr(cond);
            walk_block(v, then);
            for (c, b) in elifs {
                v.visit_expr(c);
                walk_block(v, b);
            }
            if let Some(b) = els {
                walk_block(v, b);
            }
        }
        StmtKind::While { cond, body } => {
            v.visit_expr(cond);
            walk_block(v, body);
        }
        StmtKind::For { iter, body, .. } | StmtKind::ParallelFor { iter, body, .. } => {
            v.visit_expr(iter);
            walk_block(v, body);
        }
        StmtKind::Parallel { body }
        | StmtKind::Background { body }
        | StmtKind::Lock { body, .. } => {
            walk_block(v, body);
        }
        StmtKind::Return(Some(e)) => v.visit_expr(e),
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue | StmtKind::Pass => {}
        StmtKind::Assert { cond, message } => {
            v.visit_expr(cond);
            if let Some(m) = message {
                v.visit_expr(m);
            }
        }
        StmtKind::Try { body, handler, .. } => {
            walk_block(v, body);
            walk_block(v, handler);
        }
    }
}

/// Walk the children of one expression.
pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, e: &Expr) {
    match &e.kind {
        ExprKind::Unary { operand, .. } => v.visit_expr(operand),
        ExprKind::Binary { lhs, rhs, .. } => {
            v.visit_expr(lhs);
            v.visit_expr(rhs);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                v.visit_expr(a);
            }
        }
        ExprKind::Index { base, index } => {
            v.visit_expr(base);
            v.visit_expr(index);
        }
        ExprKind::Array(items) | ExprKind::Tuple(items) => {
            for a in items {
                v.visit_expr(a);
            }
        }
        ExprKind::Range { lo, hi } => {
            v.visit_expr(lo);
            v.visit_expr(hi);
        }
        ExprKind::Dict(pairs) => {
            for (k, val) in pairs {
                v.visit_expr(k);
                v.visit_expr(val);
            }
        }
        ExprKind::Int(_)
        | ExprKind::Real(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::None
        | ExprKind::Var(_) => {}
    }
}

/// Count statistics about parallel constructs — a small built-in consumer of
/// the visitor used by the CLI's `check` output and by tests.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ParallelStats {
    pub parallel_blocks: usize,
    pub background_blocks: usize,
    pub parallel_fors: usize,
    pub lock_blocks: usize,
    pub lock_names: Vec<String>,
}

impl ParallelStats {
    pub fn of(program: &Program) -> Self {
        let mut stats = ParallelStats::default();
        walk_program(&mut stats, program);
        stats.lock_names.sort();
        stats.lock_names.dedup();
        stats
    }

    /// True when the program uses any parallel construct at all.
    pub fn uses_parallelism(&self) -> bool {
        self.parallel_blocks + self.background_blocks + self.parallel_fors > 0
    }
}

impl Visitor for ParallelStats {
    fn visit_stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Parallel { .. } => self.parallel_blocks += 1,
            StmtKind::Background { .. } => self.background_blocks += 1,
            StmtKind::ParallelFor { .. } => self.parallel_fors += 1,
            StmtKind::Lock { name, .. } => {
                self.lock_blocks += 1;
                self.lock_names.push(name.to_string());
            }
            _ => {}
        }
        walk_stmt(self, s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetra_lexer::Span;

    fn stmt(kind: StmtKind) -> Stmt {
        Stmt { kind, span: Span::DUMMY, id: NodeId::DUMMY }
    }

    #[test]
    fn stats_count_nested_constructs() {
        // parallel: { lock a: { pass }, lock a: { pass } }
        let lock = |name: &str| {
            stmt(StmtKind::Lock { name: name.into(), body: Block::new(vec![stmt(StmtKind::Pass)]) })
        };
        let par =
            stmt(StmtKind::Parallel { body: Block::new(vec![lock("a"), lock("a"), lock("b")]) });
        let f = FuncDef {
            name: "main".into(),
            params: vec![],
            ret: crate::ty::Type::None,
            body: Block::new(vec![par]),
            span: Span::DUMMY,
            id: NodeId::DUMMY,
        };
        let p = Program { funcs: vec![f], node_count: 0 };
        let stats = ParallelStats::of(&p);
        assert_eq!(stats.parallel_blocks, 1);
        assert_eq!(stats.lock_blocks, 3);
        assert_eq!(stats.lock_names, vec!["a".to_string(), "b".to_string()]);
        assert!(stats.uses_parallelism());
    }

    #[test]
    fn sequential_program_has_no_parallelism() {
        let f = FuncDef {
            name: "main".into(),
            params: vec![],
            ret: crate::ty::Type::None,
            body: Block::new(vec![stmt(StmtKind::Pass)]),
            span: Span::DUMMY,
            id: NodeId::DUMMY,
        };
        let p = Program { funcs: vec![f], node_count: 0 };
        assert!(!ParallelStats::of(&p).uses_parallelism());
    }
}
