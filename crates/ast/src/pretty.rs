//! Pretty-printing: AST → canonical Tetra source, and AST → indented tree
//! dump (used by `tetra ast`).
//!
//! `to_source` emits parseable Tetra, which enables the round-trip property
//! test in `tetra-parser`: `parse(to_source(parse(src)))` equals
//! `parse(src)` modulo spans and node ids.

use crate::nodes::*;
use std::fmt::Write;

/// Render a whole program as canonical Tetra source.
pub fn to_source(program: &Program) -> String {
    let mut p = Printer::default();
    for (i, f) in program.funcs.iter().enumerate() {
        if i > 0 {
            p.out.push('\n');
        }
        p.func(f);
    }
    p.out
}

/// Render a single expression (useful in error messages and the debugger).
pub fn expr_to_source(expr: &Expr) -> String {
    let mut p = Printer::default();
    p.expr(expr);
    p.out
}

#[derive(Default)]
struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line_start(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn func(&mut self, f: &FuncDef) {
        self.line_start();
        write!(self.out, "def {}(", f.name).unwrap();
        for (i, param) in f.params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            write!(self.out, "{} {}", param.name, param.ty).unwrap();
        }
        self.out.push(')');
        if f.ret != crate::ty::Type::None {
            write!(self.out, " {}", f.ret).unwrap();
        }
        self.out.push(':');
        self.out.push('\n');
        self.block(&f.body);
    }

    fn block(&mut self, b: &Block) {
        self.indent += 1;
        if b.stmts.is_empty() {
            self.line_start();
            self.out.push_str("pass\n");
        }
        for s in &b.stmts {
            self.stmt(s);
        }
        self.indent -= 1;
    }

    fn stmt(&mut self, s: &Stmt) {
        self.line_start();
        match &s.kind {
            StmtKind::Expr(e) => {
                self.expr(e);
                self.out.push('\n');
            }
            StmtKind::Assign { target, op, value } => {
                self.target(target);
                write!(self.out, " {} ", op.symbol()).unwrap();
                self.expr(value);
                self.out.push('\n');
            }
            StmtKind::If { cond, then, elifs, els } => {
                self.out.push_str("if ");
                self.expr(cond);
                self.out.push_str(":\n");
                self.block(then);
                for (c, b) in elifs {
                    self.line_start();
                    self.out.push_str("elif ");
                    self.expr(c);
                    self.out.push_str(":\n");
                    self.block(b);
                }
                if let Some(b) = els {
                    self.line_start();
                    self.out.push_str("else:\n");
                    self.block(b);
                }
            }
            StmtKind::While { cond, body } => {
                self.out.push_str("while ");
                self.expr(cond);
                self.out.push_str(":\n");
                self.block(body);
            }
            StmtKind::For { var, iter, body, .. } => {
                write!(self.out, "for {var} in ").unwrap();
                self.expr(iter);
                self.out.push_str(":\n");
                self.block(body);
            }
            StmtKind::ParallelFor { var, iter, body, .. } => {
                write!(self.out, "parallel for {var} in ").unwrap();
                self.expr(iter);
                self.out.push_str(":\n");
                self.block(body);
            }
            StmtKind::Parallel { body } => {
                self.out.push_str("parallel:\n");
                self.block(body);
            }
            StmtKind::Background { body } => {
                self.out.push_str("background:\n");
                self.block(body);
            }
            StmtKind::Lock { name, body } => {
                writeln!(self.out, "lock {name}:").unwrap();
                self.block(body);
            }
            StmtKind::Return(None) => self.out.push_str("return\n"),
            StmtKind::Return(Some(e)) => {
                self.out.push_str("return ");
                self.expr(e);
                self.out.push('\n');
            }
            StmtKind::Break => self.out.push_str("break\n"),
            StmtKind::Continue => self.out.push_str("continue\n"),
            StmtKind::Pass => self.out.push_str("pass\n"),
            StmtKind::Assert { cond, message } => {
                self.out.push_str("assert ");
                self.expr(cond);
                if let Some(m) = message {
                    self.out.push_str(", ");
                    self.expr(m);
                }
                self.out.push('\n');
            }
            StmtKind::Try { body, err_name, handler, .. } => {
                self.out.push_str("try:\n");
                self.block(body);
                self.line_start();
                writeln!(self.out, "catch {err_name}:").unwrap();
                self.block(handler);
            }
        }
    }

    fn target(&mut self, t: &Target) {
        match t {
            Target::Name { name, .. } => self.out.push_str(name.as_str()),
            Target::Index { base, index, .. } => {
                self.expr_prec(base, 100);
                self.out.push('[');
                self.expr(index);
                self.out.push(']');
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        self.expr_prec(e, 0);
    }

    /// Precedence used for minimal parenthesization.
    fn prec(op: BinOp) -> u8 {
        match op {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
        }
    }

    fn expr_prec(&mut self, e: &Expr, min: u8) {
        match &e.kind {
            ExprKind::Int(v) => write!(self.out, "{v}").unwrap(),
            ExprKind::Real(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(self.out, "{v:.1}").unwrap()
                } else {
                    write!(self.out, "{v}").unwrap()
                }
            }
            ExprKind::Str(s) => {
                self.out.push('"');
                for c in s.chars() {
                    match c {
                        '\n' => self.out.push_str("\\n"),
                        '\t' => self.out.push_str("\\t"),
                        '\r' => self.out.push_str("\\r"),
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\0' => self.out.push_str("\\0"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            ExprKind::Bool(v) => write!(self.out, "{v}").unwrap(),
            ExprKind::None => self.out.push_str("none"),
            ExprKind::Var(name) => self.out.push_str(name.as_str()),
            ExprKind::Unary { op, operand } => {
                let need = min > 7;
                if need {
                    self.out.push('(');
                }
                self.out.push_str(op.symbol());
                self.expr_prec(operand, 8);
                if need {
                    self.out.push(')');
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let p = Self::prec(*op);
                let need = p < min;
                if need {
                    self.out.push('(');
                }
                self.expr_prec(lhs, p);
                write!(self.out, " {} ", op.symbol()).unwrap();
                // Left-associative: the right operand needs strictly higher
                // precedence to avoid parentheses.
                self.expr_prec(rhs, p + 1);
                if need {
                    self.out.push(')');
                }
            }
            ExprKind::Call { callee, args } => {
                write!(self.out, "{callee}(").unwrap();
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a);
                }
                self.out.push(')');
            }
            ExprKind::Index { base, index } => {
                self.expr_prec(base, 100);
                self.out.push('[');
                self.expr(index);
                self.out.push(']');
            }
            ExprKind::Array(items) => {
                self.out.push('[');
                for (i, a) in items.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a);
                }
                self.out.push(']');
            }
            ExprKind::Range { lo, hi } => {
                self.out.push('[');
                self.expr(lo);
                self.out.push_str(" ... ");
                self.expr(hi);
                self.out.push(']');
            }
            ExprKind::Tuple(items) => {
                self.out.push('(');
                for (i, a) in items.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a);
                }
                self.out.push(')');
            }
            ExprKind::Dict(pairs) => {
                self.out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(k);
                    self.out.push_str(": ");
                    self.expr(v);
                }
                self.out.push('}');
            }
        }
    }
}

/// Render an indented tree dump of the AST (for `tetra ast`).
pub fn tree(program: &Program) -> String {
    let mut out = String::new();
    for f in &program.funcs {
        writeln!(
            out,
            "FuncDef {} ({}) -> {}",
            f.name,
            f.params.iter().map(|p| format!("{} {}", p.name, p.ty)).collect::<Vec<_>>().join(", "),
            f.ret
        )
        .unwrap();
        tree_block(&f.body, 1, &mut out);
    }
    out
}

fn tree_block(b: &Block, depth: usize, out: &mut String) {
    for s in &b.stmts {
        tree_stmt(s, depth, out);
    }
}

fn pad(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn tree_stmt(s: &Stmt, depth: usize, out: &mut String) {
    pad(depth, out);
    let line = s.span.line;
    match &s.kind {
        StmtKind::Expr(e) => writeln!(out, "Expr@{line} {}", expr_to_source(e)).unwrap(),
        StmtKind::Assign { target, op, value } => {
            let t = match target {
                Target::Name { name, .. } => name.to_string(),
                Target::Index { base, index, .. } => {
                    format!("{}[{}]", expr_to_source(base), expr_to_source(index))
                }
            };
            writeln!(out, "Assign@{line} {t} {} {}", op.symbol(), expr_to_source(value)).unwrap()
        }
        StmtKind::If { cond, then, elifs, els } => {
            writeln!(out, "If@{line} {}", expr_to_source(cond)).unwrap();
            tree_block(then, depth + 1, out);
            for (c, b) in elifs {
                pad(depth, out);
                writeln!(out, "Elif {}", expr_to_source(c)).unwrap();
                tree_block(b, depth + 1, out);
            }
            if let Some(b) = els {
                pad(depth, out);
                writeln!(out, "Else").unwrap();
                tree_block(b, depth + 1, out);
            }
        }
        StmtKind::While { cond, body } => {
            writeln!(out, "While@{line} {}", expr_to_source(cond)).unwrap();
            tree_block(body, depth + 1, out);
        }
        StmtKind::For { var, iter, body, .. } => {
            writeln!(out, "For@{line} {var} in {}", expr_to_source(iter)).unwrap();
            tree_block(body, depth + 1, out);
        }
        StmtKind::ParallelFor { var, iter, body, .. } => {
            writeln!(out, "ParallelFor@{line} {var} in {}", expr_to_source(iter)).unwrap();
            tree_block(body, depth + 1, out);
        }
        StmtKind::Parallel { body } => {
            writeln!(out, "Parallel@{line}").unwrap();
            tree_block(body, depth + 1, out);
        }
        StmtKind::Background { body } => {
            writeln!(out, "Background@{line}").unwrap();
            tree_block(body, depth + 1, out);
        }
        StmtKind::Lock { name, body } => {
            writeln!(out, "Lock@{line} {name}").unwrap();
            tree_block(body, depth + 1, out);
        }
        StmtKind::Return(e) => writeln!(
            out,
            "Return@{line}{}",
            e.as_ref().map(|e| format!(" {}", expr_to_source(e))).unwrap_or_default()
        )
        .unwrap(),
        StmtKind::Break => writeln!(out, "Break@{line}").unwrap(),
        StmtKind::Continue => writeln!(out, "Continue@{line}").unwrap(),
        StmtKind::Pass => writeln!(out, "Pass@{line}").unwrap(),
        StmtKind::Assert { cond, .. } => {
            writeln!(out, "Assert@{line} {}", expr_to_source(cond)).unwrap()
        }
        StmtKind::Try { body, err_name, handler, .. } => {
            writeln!(out, "Try@{line}").unwrap();
            tree_block(body, depth + 1, out);
            pad(depth, out);
            writeln!(out, "Catch {err_name}").unwrap();
            tree_block(handler, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::Type;
    use tetra_lexer::Span;

    fn e(kind: ExprKind) -> Expr {
        Expr { kind, span: Span::DUMMY, id: NodeId::DUMMY }
    }

    #[test]
    fn parenthesization_is_minimal() {
        // (1 + 2) * 3
        let sum = e(ExprKind::Binary {
            op: BinOp::Add,
            lhs: Box::new(e(ExprKind::Int(1))),
            rhs: Box::new(e(ExprKind::Int(2))),
        });
        let prod = e(ExprKind::Binary {
            op: BinOp::Mul,
            lhs: Box::new(sum),
            rhs: Box::new(e(ExprKind::Int(3))),
        });
        assert_eq!(expr_to_source(&prod), "(1 + 2) * 3");

        // 1 + 2 * 3 needs no parens.
        let prod2 = e(ExprKind::Binary {
            op: BinOp::Mul,
            lhs: Box::new(e(ExprKind::Int(2))),
            rhs: Box::new(e(ExprKind::Int(3))),
        });
        let sum2 = e(ExprKind::Binary {
            op: BinOp::Add,
            lhs: Box::new(e(ExprKind::Int(1))),
            rhs: Box::new(prod2),
        });
        assert_eq!(expr_to_source(&sum2), "1 + 2 * 3");
    }

    #[test]
    fn left_associativity_forces_parens_on_right() {
        // 1 - (2 - 3) must keep its parentheses.
        let inner = e(ExprKind::Binary {
            op: BinOp::Sub,
            lhs: Box::new(e(ExprKind::Int(2))),
            rhs: Box::new(e(ExprKind::Int(3))),
        });
        let outer = e(ExprKind::Binary {
            op: BinOp::Sub,
            lhs: Box::new(e(ExprKind::Int(1))),
            rhs: Box::new(inner),
        });
        assert_eq!(expr_to_source(&outer), "1 - (2 - 3)");
    }

    #[test]
    fn string_escapes_are_re_escaped() {
        let s = e(ExprKind::Str("a\"b\n".into()));
        assert_eq!(expr_to_source(&s), r#""a\"b\n""#);
    }

    #[test]
    fn real_literals_keep_a_decimal_point() {
        assert_eq!(expr_to_source(&e(ExprKind::Real(2.0))), "2.0");
        assert_eq!(expr_to_source(&e(ExprKind::Real(2.5))), "2.5");
    }

    #[test]
    fn empty_function_prints_pass() {
        let f = FuncDef {
            name: "noop".into(),
            params: vec![],
            ret: Type::None,
            body: Block::default(),
            span: Span::DUMMY,
            id: NodeId::DUMMY,
        };
        let p = Program { funcs: vec![f], node_count: 0 };
        assert_eq!(to_source(&p), "def noop():\n    pass\n");
    }

    #[test]
    fn range_literal_prints_with_ellipsis() {
        let r = e(ExprKind::Range {
            lo: Box::new(e(ExprKind::Int(1))),
            hi: Box::new(e(ExprKind::Int(100))),
        });
        assert_eq!(expr_to_source(&r), "[1 ... 100]");
    }
}
