//! AST node definitions.
//!
//! Every expression and statement carries a [`Span`] for diagnostics and a
//! [`NodeId`] that later passes use as a key into side tables (the type
//! checker records the inferred type of every expression; the bytecode
//! compiler and debugger consume those tables).

use crate::ty::Type;
use tetra_intern::Symbol;
use tetra_lexer::Span;

/// A unique id assigned to every expression and statement by the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    pub const DUMMY: NodeId = NodeId(u32::MAX);
}

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinOp {
    /// Source text of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Or => "or",
            BinOp::And => "and",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }

    /// True for `==`, `!=`, `<`, `>`, `<=`, `>=`.
    pub fn is_comparison(&self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge)
    }

    /// True for `+`, `-`, `*`, `/`, `%`.
    pub fn is_arithmetic(&self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod)
    }

    /// True for `and` / `or` (short-circuiting).
    pub fn is_logical(&self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical negation `not x`.
    Not,
}

impl UnOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "not ",
        }
    }
}

/// Compound-assignment flavours; `Set` is plain `=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    Set,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl AssignOp {
    pub fn symbol(&self) -> &'static str {
        match self {
            AssignOp::Set => "=",
            AssignOp::Add => "+=",
            AssignOp::Sub => "-=",
            AssignOp::Mul => "*=",
            AssignOp::Div => "/=",
            AssignOp::Mod => "%=",
        }
    }

    /// The arithmetic operator a compound assignment expands to, if any.
    pub fn binop(&self) -> Option<BinOp> {
        match self {
            AssignOp::Set => None,
            AssignOp::Add => Some(BinOp::Add),
            AssignOp::Sub => Some(BinOp::Sub),
            AssignOp::Mul => Some(BinOp::Mul),
            AssignOp::Div => Some(BinOp::Div),
            AssignOp::Mod => Some(BinOp::Mod),
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
    pub id: NodeId,
}

#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// The `none` literal.
    None,
    /// Variable reference.
    Var(Symbol),
    /// Unary operation.
    Unary { op: UnOp, operand: Box<Expr> },
    /// Binary operation (including short-circuit `and`/`or`).
    Binary { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// Function call; Tetra functions are named (no first-class closures).
    Call { callee: Symbol, args: Vec<Expr> },
    /// Indexing: `a[i]` on arrays, strings, dicts and tuples.
    Index { base: Box<Expr>, index: Box<Expr> },
    /// Array literal `[a, b, c]`.
    Array(Vec<Expr>),
    /// Array range literal `[lo ... hi]` (inclusive), as in Fig. II's
    /// `sum([1 ... 100])`.
    Range { lo: Box<Expr>, hi: Box<Expr> },
    /// Tuple literal `(a, b)` — requires ≥ 2 elements.
    Tuple(Vec<Expr>),
    /// Dict literal `{k1: v1, k2: v2}` / empty `{}` needs annotation via use.
    Dict(Vec<(Expr, Expr)>),
}

/// The target of an assignment: a variable or an element of an indexable.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// `x = ...`
    Name { name: Symbol, span: Span, id: NodeId },
    /// `a[i] = ...` (base may itself be an index expression: `m[i][j]`).
    Index { base: Expr, index: Expr, span: Span, id: NodeId },
}

impl Target {
    pub fn span(&self) -> Span {
        match self {
            Target::Name { span, .. } | Target::Index { span, .. } => *span,
        }
    }

    pub fn id(&self) -> NodeId {
        match self {
            Target::Name { id, .. } | Target::Index { id, .. } => *id,
        }
    }
}

/// A sequence of statements at one indentation level.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

impl Block {
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Block { stmts }
    }

    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    pub fn len(&self) -> usize {
        self.stmts.len()
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub span: Span,
    pub id: NodeId,
}

#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// An expression evaluated for its side effects (usually a call).
    Expr(Expr),
    /// `target op value`.
    Assign { target: Target, op: AssignOp, value: Expr },
    /// `if` / `elif` / `else` chain.
    If { cond: Expr, then: Block, elifs: Vec<(Expr, Block)>, els: Option<Block> },
    /// `while cond:` loop.
    While { cond: Expr, body: Block },
    /// `for var in seq:` loop.
    For { var: Symbol, var_id: NodeId, iter: Expr, body: Block },
    /// `parallel for var in seq:` — iterations run concurrently; each worker
    /// thread gets a private copy of the induction variable (paper §IV).
    ParallelFor { var: Symbol, var_id: NodeId, iter: Expr, body: Block },
    /// `parallel:` — each child statement runs in its own thread; the block
    /// joins all of them before continuing (paper §II).
    Parallel { body: Block },
    /// `background:` — like `parallel:` but does not join (paper §II).
    Background { body: Block },
    /// `lock name:` — mutual exclusion keyed by a name in its own namespace
    /// (paper §II).
    Lock { name: Symbol, body: Block },
    /// `return [expr]`.
    Return(Option<Expr>),
    /// `break` out of the nearest loop.
    Break,
    /// `continue` the nearest loop.
    Continue,
    /// `pass` — no operation.
    Pass,
    /// `assert cond [, message]` — error-handling extension (§VI).
    Assert { cond: Expr, message: Option<Expr> },
    /// `try:` / `catch err:` — error-handling extension (§VI). Runtime
    /// errors raised in `body` (including errors propagated from spawned
    /// threads at their join) bind their message to `err_name` and run
    /// `handler`.
    Try { body: Block, err_name: Symbol, err_id: NodeId, handler: Block },
}

/// A function parameter with its declared type (mandatory, paper §II).
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub name: Symbol,
    pub ty: Type,
    pub span: Span,
    pub id: NodeId,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    pub name: Symbol,
    pub params: Vec<Param>,
    /// Declared return type; `Type::None` when omitted.
    pub ret: Type,
    pub body: Block,
    pub span: Span,
    pub id: NodeId,
}

/// A whole Tetra program: a list of function definitions. Execution starts
/// at `main()`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub funcs: Vec<FuncDef>,
    /// Total number of [`NodeId`]s handed out by the parser; side tables may
    /// be sized with this.
    pub node_count: u32,
}

impl Program {
    /// Look up a function definition by name.
    pub fn func(&self, name: &str) -> Option<&FuncDef> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// The index of a function in declaration order.
    pub fn func_index(&self, name: &str) -> Option<usize> {
        self.funcs.iter().position(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_op_expansion() {
        assert_eq!(AssignOp::Add.binop(), Some(BinOp::Add));
        assert_eq!(AssignOp::Set.binop(), None);
        assert_eq!(AssignOp::Mod.binop(), Some(BinOp::Mod));
    }

    #[test]
    fn binop_classification_is_disjoint() {
        for op in [
            BinOp::Or,
            BinOp::And,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Gt,
            BinOp::Le,
            BinOp::Ge,
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Mod,
        ] {
            let classes = [op.is_comparison(), op.is_arithmetic(), op.is_logical()]
                .iter()
                .filter(|b| **b)
                .count();
            assert_eq!(classes, 1, "{op:?} must be in exactly one class");
        }
    }

    #[test]
    fn program_function_lookup() {
        let f = FuncDef {
            name: "main".into(),
            params: vec![],
            ret: Type::None,
            body: Block::default(),
            span: Span::DUMMY,
            id: NodeId(0),
        };
        let p = Program { funcs: vec![f], node_count: 1 };
        assert!(p.func("main").is_some());
        assert_eq!(p.func_index("main"), Some(0));
        assert!(p.func("other").is_none());
    }
}
