//! Flame-graph aggregation: (call path, self-time) samples folded into
//! Brendan Gregg's collapsed-stack format.
//!
//! No new timer exists for this: samples are derived from events the
//! engines already emit.
//!
//! * **Interpreter** — each statement instant carries its shadow-stack
//!   node; a statement's self-time is the gap until the same thread's
//!   next statement (the same delta rule the per-line report uses, so the
//!   folded counts inverse-sum to total traced self-time).
//! * **VM** — each dispatch batch carries the stack node it ran under
//!   (the scheduler flushes the batch whenever a call or return changes
//!   the stack), so a batch's duration is self-time for that path.
//!
//! The folded output is one line per distinct call path:
//! `frame;frame;frame <nanoseconds>`, loadable by `flamegraph.pl`,
//! speedscope, or `inferno`.

use crate::event::EventKind;
use crate::session::Trace;
use crate::stack;
use std::collections::BTreeMap;

/// One attribution sample: `self_ns` of execution under call path `node`.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    pub tid: u32,
    /// Shadow call-stack node (see [`crate::stack`]).
    pub node: u32,
    /// Source line, when the sample came from a statement instant (0 for
    /// VM dispatch batches, which span many lines).
    pub line: u32,
    pub self_ns: u64,
    /// True when derived from an interpreter statement instant.
    pub from_stmt: bool,
}

/// Derive self-time samples from a trace. This is the single source of
/// attribution both the per-line table and the flame output aggregate, so
/// the two always sum to the same total.
pub fn samples(trace: &Trace) -> Vec<Sample> {
    // Statement instants, grouped per thread in time order (the trace is
    // already globally time-sorted).
    let mut per_thread: BTreeMap<u32, Vec<(u64, u32, u32)>> = BTreeMap::new();
    for e in &trace.events {
        if e.kind == EventKind::Stmt {
            per_thread.entry(e.tid).or_default().push((e.start_ns, e.a, e.c));
        }
    }
    // End-of-track boundary: the thread's span end when known, else its
    // last event of any kind.
    let mut track_end: BTreeMap<u32, u64> = BTreeMap::new();
    for e in &trace.events {
        let end = e.start_ns + e.dur_ns;
        let entry = track_end.entry(e.tid).or_insert(end);
        *entry = (*entry).max(end);
    }
    let mut out = Vec::new();
    for (tid, stmts) in &per_thread {
        for (i, (start, line, node)) in stmts.iter().enumerate() {
            let next = stmts
                .get(i + 1)
                .map(|(t, _, _)| *t)
                .or_else(|| track_end.get(tid).copied())
                .unwrap_or(*start);
            out.push(Sample {
                tid: *tid,
                node: *node,
                line: *line,
                self_ns: next.saturating_sub(*start),
                from_stmt: true,
            });
        }
    }
    for e in &trace.events {
        if e.kind == EventKind::VmDispatch {
            out.push(Sample {
                tid: e.tid,
                node: e.c,
                line: 0,
                self_ns: e.dur_ns,
                from_stmt: false,
            });
        }
    }
    out
}

/// Fold samples by rendered call path: `path -> total self-time ns`,
/// sorted by path (BTreeMap) for stable output.
pub fn folded(trace: &Trace) -> BTreeMap<String, u64> {
    let mut out: BTreeMap<u32, u64> = BTreeMap::new();
    for s in samples(trace) {
        *out.entry(s.node).or_insert(0) += s.self_ns;
    }
    let mut rendered = BTreeMap::new();
    for (node, ns) in out {
        *rendered.entry(stack::render(node, &trace.names)).or_insert(0) += ns;
    }
    rendered
}

/// Render the collapsed-stack file: one `path count\n` line per call
/// path, counts in nanoseconds of self-time.
pub fn write_folded(trace: &Trace) -> String {
    let mut out = String::new();
    for (path, ns) in folded(trace) {
        out.push_str(&format!("{path} {ns}\n"));
    }
    out
}

/// Hottest call paths by total self-time, for the profile report.
pub fn top_paths(trace: &Trace, n: usize) -> Vec<(String, u64)> {
    let mut rows: Vec<(String, u64)> = folded(trace).into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows.truncate(n);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::stack;

    fn stmt(tid: u32, t: u64, line: u32, node: u32) -> Event {
        Event { kind: EventKind::Stmt, tid, start_ns: t, dur_ns: 0, a: line, b: 0, c: node }
    }

    fn span(tid: u32, start: u64, dur: u64) -> Event {
        Event { kind: EventKind::ThreadSpan, tid, start_ns: start, dur_ns: dur, a: 0, b: 0, c: 0 }
    }

    #[test]
    fn folded_counts_sum_to_total_self_time() {
        let main = stack::child(stack::ROOT, "flame_main");
        let work = stack::child(main, "flame_work");
        let trace = Trace {
            events: vec![
                stmt(0, 100, 1, main),
                stmt(0, 400, 2, work),
                stmt(0, 600, 3, main),
                span(0, 0, 1000),
            ],
            names: crate::session::interner_names(),
            duration_ns: 1000,
            ..Trace::default()
        };
        let total: u64 = samples(&trace).iter().map(|s| s.self_ns).sum();
        // 300 (main line 1) + 200 (work) + 400 (main to span end).
        assert_eq!(total, 900);
        let folded = folded(&trace);
        assert_eq!(folded.values().sum::<u64>(), total);
        assert_eq!(folded.get("flame_main;flame_work"), Some(&200));
        assert_eq!(folded.get("flame_main"), Some(&700));
        let tops = top_paths(&trace, 1);
        assert_eq!(tops[0].0, "flame_main");
    }

    #[test]
    fn vm_dispatch_batches_attribute_their_duration() {
        let main = stack::child(stack::ROOT, "flame_vm_main");
        let trace = Trace {
            events: vec![Event {
                kind: EventKind::VmDispatch,
                tid: 0,
                start_ns: 10,
                dur_ns: 90,
                a: 12,
                b: 0,
                c: main,
            }],
            names: crate::session::interner_names(),
            ..Trace::default()
        };
        let folded = folded(&trace);
        assert_eq!(folded.get("flame_vm_main"), Some(&90));
    }
}
