//! Chrome trace-event JSON exporter.
//!
//! Produces the JSON object format (`{"traceEvents": [...]}`) accepted by
//! Perfetto and `chrome://tracing`. Each Tetra thread becomes one track
//! (`tid`), named via `thread_name` metadata from its `ThreadSpan` event.
//! Span events are emitted as complete (`"ph": "X"`) events with
//! microsecond timestamps; statement instants are deliberately omitted —
//! at one event per interpreted statement they swamp the viewer, and the
//! profile report covers per-line data instead.

use crate::event::EventKind;
use crate::session::Trace;
use crate::stack;

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Microseconds with nanosecond precision, as Chrome expects.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

/// Render `trace` as Chrome trace-event JSON.
pub fn export(trace: &Trace) -> String {
    let mut rows: Vec<String> = Vec::new();
    rows.push(
        r#"{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"tetra"}}"#.to_string(),
    );
    for (tid, name) in trace.thread_names() {
        rows.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{tid},"args":{{"name":{}}}}}"#,
            json_str(&name)
        ));
    }
    for e in &trace.events {
        // Flame metadata: the shadow call path an event ran under, for
        // kinds that carry a stack node.
        let path = |node: u32| {
            if node == stack::ROOT {
                String::new()
            } else {
                format!(r#","stack":{}"#, json_str(&stack::render(node, &trace.names)))
            }
        };
        let (name, cat, args) = match e.kind {
            // Statement instants are profile-report data, not tracks.
            EventKind::Stmt => continue,
            EventKind::Call => {
                (trace.name(e.a).to_string(), "call", format!(r#"{{"line":{}{}}}"#, e.b, path(e.c)))
            }
            EventKind::ThreadSpan => {
                (format!("run {}", trace.name(e.a)), "thread", String::from("{}"))
            }
            EventKind::LockWait => (
                format!("wait {}", trace.name(e.a)),
                "lock",
                format!(r#"{{"line":{}{}}}"#, e.b, path(e.c)),
            ),
            EventKind::LockHold => (
                format!("hold {}", trace.name(e.a)),
                "lock",
                format!(r#"{{{}}}"#, path(e.c).trim_start_matches(',')),
            ),
            EventKind::GcStwWait | EventKind::GcMark | EventKind::GcSweep | EventKind::GcPause => {
                (e.kind.label().to_string(), "gc", format!(r#"{{"collection":{}}}"#, e.a))
            }
            EventKind::VmDispatch => (
                "dispatch".to_string(),
                "vm",
                format!(r#"{{"instructions":{}{}}}"#, e.a, path(e.c)),
            ),
        };
        rows.push(format!(
            r#"{{"name":{},"cat":"{cat}","ph":"X","pid":1,"tid":{},"ts":{},"dur":{},"args":{args}}}"#,
            json_str(&name),
            e.tid,
            us(e.start_ns),
            us(e.dur_ns),
        ));
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&rows.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn export_contains_tracks_and_spans() {
        let trace = Trace {
            events: vec![
                Event {
                    kind: EventKind::ThreadSpan,
                    tid: 0,
                    start_ns: 0,
                    dur_ns: 5_000,
                    a: 0,
                    b: 0,
                    c: 0,
                },
                Event {
                    kind: EventKind::LockWait,
                    tid: 2,
                    start_ns: 1_500,
                    dur_ns: 250,
                    a: 1,
                    b: 7,
                    c: crate::stack::child_sym(crate::stack::ROOT, 0),
                },
                Event { kind: EventKind::Stmt, tid: 0, start_ns: 10, dur_ns: 0, a: 3, b: 0, c: 0 },
            ],
            names: vec!["main".into(), "m".into()],
            ..Trace::default()
        };
        let json = export(&trace);
        assert!(json.contains(r#""thread_name""#));
        assert!(json.contains(r#""tid":2"#));
        assert!(json.contains(r#""name":"wait m""#));
        assert!(json.contains(r#""ts":1.500"#));
        // The lock wait carries its acquiring call path ("main", sym 0).
        assert!(json.contains(r#""stack":"main""#), "{json}");
        // Statement instants are excluded.
        assert!(!json.contains(r#""cat":"stmt""#));
    }
}
