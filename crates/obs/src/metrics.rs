//! Metrics registry: named counters and log2 histograms.
//!
//! Fed from low-frequency instrumentation points (lock waits/holds, GC
//! pauses, thread lifecycle); high-frequency data (per-line statement
//! counts) is derived from trace events by the profile exporter instead
//! of being counted here, keeping the statement hot path free of shared
//! writes.

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

/// A log2-bucketed histogram of u64 samples (nanoseconds, typically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// `buckets[i]` counts samples with `floor(log2(v)) == i` (bucket 0
    /// also holds v == 0).
    pub buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0, min: 0, max: 0, buckets: [0; 64] }
    }
}

impl Histogram {
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        let bucket = if value == 0 { 0 } else { 63 - value.leading_zeros() as usize };
        self.buckets[bucket] += 1;
    }

    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Lock acquisitions below recover from poisoning: the registry stays
/// structurally valid if a traced thread panics mid-update, and losing the
/// whole report over one panicking thread would be worse than a possibly
/// undercounted metric.
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

/// Add to a named counter. No-op unless metrics are enabled.
pub fn counter_add(name: &str, value: u64) {
    if !crate::metrics_enabled() {
        return;
    }
    let mut guard = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    let registry = guard.get_or_insert_with(Registry::default);
    *registry.counters.entry(name.to_string()).or_insert(0) += value;
}

/// Record a histogram sample. No-op unless metrics are enabled.
pub fn histogram_record(name: &str, value: u64) {
    if !crate::metrics_enabled() {
        return;
    }
    let mut guard = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    let registry = guard.get_or_insert_with(Registry::default);
    registry.histograms.entry(name.to_string()).or_default().record(value);
}

/// Clear all metrics (called by `session::begin`).
pub fn reset() {
    *REGISTRY.lock().unwrap_or_else(PoisonError::into_inner) = None;
}

/// A point-in-time copy of the registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl Snapshot {
    /// Render as a stable, line-oriented text block (`--metrics` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("counter {name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {name} count={} sum={} min={} mean={} max={}\n",
                h.count,
                h.sum,
                h.min,
                h.mean(),
                h.max
            ));
        }
        out
    }
}

/// Copy out the current registry contents.
pub fn snapshot() -> Snapshot {
    let guard = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    match guard.as_ref() {
        Some(r) => Snapshot { counters: r.counters.clone(), histograms: r.histograms.clone() },
        None => Snapshot::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1030);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert_eq!(h.mean(), 206);
        // 0 and 1 share bucket 0; 2 and 3 are bucket 1; 1024 is bucket 10.
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[10], 1);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        reset();
        counter_add("x", 1);
        histogram_record("y", 5);
        let snap = snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
    }
}
