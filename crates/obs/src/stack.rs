//! Shadow call-stack interning: a global call-path trie.
//!
//! Both engines maintain a cheap shadow stack of the user functions
//! currently executing — the interpreter one `Vec<u32>` per thread
//! context, the VM one node per frame. Rather than storing frames, each
//! stack position is a **node** in a global trie: node `0` is the root,
//! and `child(parent, name)` interns the edge `(parent, name)` to a
//! stable node id. A whole call path is therefore one `u32`, cheap enough
//! to stamp into every statement instant and allocation site.
//!
//! Node ids, like interned name symbols, are valid for the process
//! lifetime, so they can be resolved after the session that produced them
//! has ended.

use crate::session;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};

/// The empty call path. Never rendered; a thread that has not entered any
/// user function attributes to its inherited spawn-site path instead.
pub const ROOT: u32 = 0;

#[derive(Clone, Copy)]
struct Node {
    parent: u32,
    /// Interned function-name symbol (`session::intern`); unused for the
    /// root.
    sym: u32,
}

struct Trie {
    nodes: Vec<Node>,
    edges: HashMap<(u32, u32), u32>,
}

static TRIE: Mutex<Option<Trie>> = Mutex::new(None);

thread_local! {
    /// Per-thread edge cache so the hot call path (one lookup per user
    /// function call) normally skips the global mutex.
    static EDGE_CACHE: RefCell<HashMap<(u32, u32), u32>> = RefCell::new(HashMap::new());
}

fn with_trie<T>(f: impl FnOnce(&mut Trie) -> T) -> T {
    let mut guard = TRIE.lock().unwrap_or_else(PoisonError::into_inner);
    let trie = guard.get_or_insert_with(|| Trie {
        nodes: vec![Node { parent: ROOT, sym: u32::MAX }],
        edges: HashMap::new(),
    });
    f(trie)
}

/// Intern the child of `parent` named `name`, returning its node id.
pub fn child(parent: u32, name: &str) -> u32 {
    let sym = session::intern(name);
    child_sym(parent, sym)
}

/// Intern the child of `parent` with an already-interned name symbol.
pub fn child_sym(parent: u32, sym: u32) -> u32 {
    EDGE_CACHE.with(|cache| {
        if let Some(node) = cache.borrow().get(&(parent, sym)) {
            return *node;
        }
        let node = with_trie(|trie| match trie.edges.get(&(parent, sym)) {
            Some(n) => *n,
            None => {
                let n = trie.nodes.len() as u32;
                trie.nodes.push(Node { parent, sym });
                trie.edges.insert((parent, sym), n);
                n
            }
        });
        cache.borrow_mut().insert((parent, sym), node);
        node
    })
}

/// Name symbols along the path root → `node` (excluding the root).
pub fn path_syms(node: u32) -> Vec<u32> {
    let mut out = Vec::new();
    with_trie(|trie| {
        let mut cur = node;
        while cur != ROOT {
            let Some(n) = trie.nodes.get(cur as usize) else { break };
            out.push(n.sym);
            cur = n.parent;
        }
    });
    out.reverse();
    out
}

/// The leaf function-name symbol of `node`, or `None` for the root or an
/// unknown node.
pub fn leaf_sym(node: u32) -> Option<u32> {
    if node == ROOT {
        return None;
    }
    with_trie(|trie| trie.nodes.get(node as usize).map(|n| n.sym))
}

/// Render `node` as a `;`-joined frame list (collapsed-stack convention,
/// outermost first), resolving symbols against `names`. The root renders
/// as `(root)`.
pub fn render(node: u32, names: &[String]) -> String {
    let syms = path_syms(node);
    if syms.is_empty() {
        return "(root)".to_string();
    }
    syms.iter()
        .map(|s| names.get(*s as usize).map(String::as_str).unwrap_or("?"))
        .collect::<Vec<_>>()
        .join(";")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_intern_to_stable_nodes() {
        let main = child(ROOT, "stacktest_main");
        let helper = child(main, "stacktest_helper");
        let work_a = child(helper, "stacktest_work");
        let work_b = child(main, "stacktest_work");
        assert_ne!(work_a, work_b, "same function, different paths");
        assert_eq!(child(helper, "stacktest_work"), work_a, "edges are interned");
        let syms = path_syms(work_a);
        assert_eq!(syms.len(), 3);
        assert_eq!(leaf_sym(work_a), Some(*syms.last().expect("nonempty")));
        assert_eq!(leaf_sym(ROOT), None);
    }

    #[test]
    fn render_joins_frames_with_semicolons() {
        let a = child(ROOT, "render_a");
        let b = child(a, "render_b");
        // Resolve against a synthetic table covering the interned symbols.
        let sa = session::intern("render_a") as usize;
        let sb = session::intern("render_b") as usize;
        let mut table = vec!["?".to_string(); sa.max(sb) + 1];
        table[sa] = "render_a".into();
        table[sb] = "render_b".into();
        assert_eq!(render(b, &table), "render_a;render_b");
        assert_eq!(render(ROOT, &table), "(root)");
    }
}
