//! Human-readable profiling report (`tetra profile`).
//!
//! Aggregates a [`Trace`] into:
//!
//! * hot call paths — flame-style (stack, self-time) attribution from the
//!   shadow call stacks (see [`crate::flame`]);
//! * top source lines by self-time — derived from statement instants:
//!   the time attributed to a line is the gap until the same thread's
//!   next statement began (so it includes calls the line made);
//! * per-function call counts and durations;
//! * a per-lock contention table (waits, wait time, hold time) plus a
//!   per-call-path breakdown naming the code that contends;
//! * allocation sites (allocs, bytes, live-after-last-GC) when heap
//!   profiling ran;
//! * a GC pause summary with per-phase breakdown;
//! * VM dispatch totals when the program ran on the bytecode VM.

use crate::event::EventKind;
use crate::flame;
use crate::session::Trace;
use crate::stack;
use std::collections::BTreeMap;

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

#[derive(Default, Clone, Copy)]
struct SpanStat {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

impl SpanStat {
    fn add(&mut self, dur: u64) {
        self.count += 1;
        self.total_ns += dur;
        self.max_ns = self.max_ns.max(dur);
    }
}

/// Per-line statistics: `(line -> (count, self_ns))`, public so tests and
/// the CLI can assert on numbers rather than text. Derived from the same
/// samples the flame output folds, so the two sum identically.
pub fn line_stats(trace: &Trace) -> BTreeMap<u32, (u64, u64)> {
    let mut stats: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    for s in flame::samples(trace) {
        if s.from_stmt {
            let entry = stats.entry(s.line).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += s.self_ns;
        }
    }
    stats
}

/// Render the full report.
pub fn report(trace: &Trace, source_lines: Option<&[String]>) -> String {
    let mut out = String::new();
    let threads = trace.thread_names();
    out.push_str(&format!(
        "== tetra profile ==\nduration: {}   threads: {}   events: {}{}{}\n",
        fmt_ns(trace.duration_ns),
        threads.len(),
        trace.events.len(),
        if trace.dropped_events > 0 {
            format!("   dropped: {} (ring wraparound; oldest events lost)", trace.dropped_events)
        } else {
            String::new()
        },
        if trace.corrupt_events > 0 {
            format!("   corrupt: {} (torn slots skipped)", trace.corrupt_events)
        } else {
            String::new()
        }
    ));
    if !trace.dropped_by_thread.is_empty() {
        let per: Vec<String> = trace
            .dropped_by_thread
            .iter()
            .map(|(tid, n)| {
                let name = threads.get(tid).cloned().unwrap_or_else(|| format!("thread-{tid}"));
                format!("{name}: {n}")
            })
            .collect();
        out.push_str(&format!("dropped by thread: {}\n", per.join(", ")));
    }

    // --- hot call paths ----------------------------------------------------
    let paths = flame::top_paths(trace, 10);
    if !paths.is_empty() {
        let total: u64 = flame::folded(trace).values().sum();
        out.push_str("\n-- hot paths --\n");
        out.push_str(&format!("{:>12} {:>6}  call path\n", "self-time", "%"));
        for (path, ns) in &paths {
            let pct = if total > 0 { 100.0 * *ns as f64 / total as f64 } else { 0.0 };
            out.push_str(&format!("{:>12} {:>5.1}%  {}\n", fmt_ns(*ns), pct, path));
        }
    }

    // --- top lines by self-time -------------------------------------------
    let lines = line_stats(trace);
    let mut by_time: Vec<(u32, (u64, u64))> = lines.into_iter().collect();
    by_time.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(&b.0)));
    out.push_str("\n-- top lines by self-time --\n");
    if by_time.is_empty() {
        out.push_str("(no statement events; line profiling covers the interpreter)\n");
    } else {
        out.push_str(&format!("{:>6} {:>12} {:>10}  source\n", "line", "self-time", "count"));
        for (line, (count, self_ns)) in by_time.iter().take(15) {
            let src = source_lines
                .and_then(|ls| ls.get(line.saturating_sub(1) as usize))
                .map(|s| s.trim())
                .unwrap_or("");
            out.push_str(&format!("{:>6} {:>12} {:>10}  {}\n", line, fmt_ns(*self_ns), count, src));
        }
    }

    // --- function calls ----------------------------------------------------
    let mut calls: BTreeMap<u32, SpanStat> = BTreeMap::new();
    for e in &trace.events {
        if e.kind == EventKind::Call {
            calls.entry(e.a).or_default().add(e.dur_ns);
        }
    }
    if !calls.is_empty() {
        let mut rows: Vec<(u32, SpanStat)> = calls.into_iter().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1.total_ns));
        out.push_str("\n-- function calls --\n");
        out.push_str(&format!("{:<24} {:>8} {:>12} {:>12}\n", "function", "calls", "total", "max"));
        for (sym, s) in rows.iter().take(10) {
            out.push_str(&format!(
                "{:<24} {:>8} {:>12} {:>12}\n",
                trace.name(*sym),
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(s.max_ns)
            ));
        }
    }

    // --- lock contention ----------------------------------------------------
    let mut waits: BTreeMap<u32, SpanStat> = BTreeMap::new();
    let mut holds: BTreeMap<u32, SpanStat> = BTreeMap::new();
    let mut contended: BTreeMap<u32, u64> = BTreeMap::new();
    // Waits keyed by (lock, acquiring call path) for the per-path table.
    let mut path_waits: BTreeMap<(u32, u32), SpanStat> = BTreeMap::new();
    for e in &trace.events {
        match e.kind {
            EventKind::LockWait => {
                waits.entry(e.a).or_default().add(e.dur_ns);
                path_waits.entry((e.a, e.c)).or_default().add(e.dur_ns);
                // A wait longer than 1µs means the lock was actually
                // contended rather than acquired on the fast path.
                if e.dur_ns > 1_000 {
                    *contended.entry(e.a).or_insert(0) += 1;
                }
            }
            EventKind::LockHold => holds.entry(e.a).or_default().add(e.dur_ns),
            _ => {}
        }
    }
    out.push_str("\n-- lock contention --\n");
    if waits.is_empty() && holds.is_empty() {
        out.push_str("(no lock operations)\n");
    } else {
        out.push_str(&format!(
            "{:<16} {:>9} {:>10} {:>11} {:>10} {:>11} {:>10}\n",
            "lock", "acquires", "contended", "wait-total", "wait-max", "hold-total", "hold-max"
        ));
        let mut all: Vec<u32> = waits.keys().chain(holds.keys()).copied().collect();
        all.sort_unstable();
        all.dedup();
        all.sort_by_key(|sym| std::cmp::Reverse(waits.get(sym).map(|s| s.total_ns).unwrap_or(0)));
        for sym in all {
            let w = waits.get(&sym).copied().unwrap_or_default();
            let h = holds.get(&sym).copied().unwrap_or_default();
            out.push_str(&format!(
                "{:<16} {:>9} {:>10} {:>11} {:>10} {:>11} {:>10}\n",
                trace.name(sym),
                w.count.max(h.count),
                contended.get(&sym).copied().unwrap_or(0),
                fmt_ns(w.total_ns),
                fmt_ns(w.max_ns),
                fmt_ns(h.total_ns),
                fmt_ns(h.max_ns)
            ));
        }
        // Who contends: the acquiring call paths, worst wait first.
        let mut rows: Vec<((u32, u32), SpanStat)> = path_waits.into_iter().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1.total_ns));
        out.push_str("\n-- lock contention by call path --\n");
        out.push_str(&format!(
            "{:<16} {:>9} {:>11} {:>10}  call path\n",
            "lock", "acquires", "wait-total", "wait-max"
        ));
        for ((lock, node), s) in rows.iter().take(10) {
            out.push_str(&format!(
                "{:<16} {:>9} {:>11} {:>10}  {}\n",
                trace.name(*lock),
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(s.max_ns),
                stack::render(*node, &trace.names)
            ));
        }
    }

    // --- heap allocation sites ----------------------------------------------
    if !trace.heap.is_empty() {
        out.push_str("\n-- heap allocation sites --\n");
        out.push_str("top sites by live bytes (after last GC):\n");
        let live: Vec<_> =
            trace.heap.top_by_live_bytes(8).into_iter().filter(|s| s.live_bytes > 0).collect();
        if live.is_empty() {
            out.push_str("(nothing survived the last collection)\n");
        } else {
            out.push_str(&format!(
                "{:<24} {:>9} {:>10} {:>10} {:>10}\n",
                "site", "allocs", "bytes", "live-objs", "live-bytes"
            ));
            for site in live {
                out.push_str(&format!(
                    "{:<24} {:>9} {:>10} {:>10} {:>10}\n",
                    site.label(&trace.names),
                    site.allocs,
                    fmt_bytes(site.alloc_bytes),
                    site.live_objects,
                    fmt_bytes(site.live_bytes)
                ));
            }
        }
        out.push_str("top sites by churn (total bytes allocated):\n");
        out.push_str(&format!("{:<24} {:>9} {:>10}  call path\n", "site", "allocs", "bytes"));
        for site in trace.heap.top_by_churn(8) {
            out.push_str(&format!(
                "{:<24} {:>9} {:>10}  {}\n",
                site.label(&trace.names),
                site.allocs,
                fmt_bytes(site.alloc_bytes),
                site.path(&trace.names)
            ));
        }
    }

    // --- GC ------------------------------------------------------------------
    let mut pauses = SpanStat::default();
    let mut phases: [(EventKind, SpanStat); 3] = [
        (EventKind::GcStwWait, SpanStat::default()),
        (EventKind::GcMark, SpanStat::default()),
        (EventKind::GcSweep, SpanStat::default()),
    ];
    for e in &trace.events {
        if e.kind == EventKind::GcPause {
            pauses.add(e.dur_ns);
        }
        for (kind, stat) in phases.iter_mut() {
            if e.kind == *kind {
                stat.add(e.dur_ns);
            }
        }
    }
    out.push_str("\n-- gc pauses --\n");
    if pauses.count == 0 {
        out.push_str("(no collections)\n");
    } else {
        out.push_str(&format!(
            "collections: {}   pause total: {}   pause max: {}   pause mean: {}\n",
            pauses.count,
            fmt_ns(pauses.total_ns),
            fmt_ns(pauses.max_ns),
            fmt_ns(pauses.total_ns / pauses.count)
        ));
        for (kind, stat) in &phases {
            if stat.count > 0 {
                out.push_str(&format!(
                    "  {:<12} total: {:>10}   max: {:>10}\n",
                    kind.label(),
                    fmt_ns(stat.total_ns),
                    fmt_ns(stat.max_ns)
                ));
            }
        }
    }

    // --- gc allocator --------------------------------------------------------
    // Counters flushed once per run by the heap: they prove the sharded
    // allocation path stayed lock-free (fast-path = straight off a segment
    // free list; refills = one-chunk segment growth) and show how many
    // workers the parallel mark actually used.
    let fast = trace.metrics.counters.get("gc.alloc_fast_path").copied().unwrap_or(0);
    let refills = trace.metrics.counters.get("gc.segment_refills").copied().unwrap_or(0);
    let mark_workers = trace.metrics.counters.get("gc.mark_workers").copied().unwrap_or(0);
    if fast + refills > 0 {
        let total = fast + refills;
        out.push_str(&format!(
            "\n-- gc allocator --\nfast-path allocations: {} ({:.1}%)   segment refills: {}   \
             mark workers (max): {}\n",
            fast,
            100.0 * fast as f64 / total as f64,
            refills,
            mark_workers
        ));
    }

    // --- environment access --------------------------------------------------
    // Counters flushed by the interpreter's variable hot path: slot-resolved
    // accesses vs dynamic name-walk fallbacks (see DESIGN.md on the resolver).
    let slot_hits = trace.metrics.counters.get("env.slot_hits").copied().unwrap_or(0);
    let dynamic = trace.metrics.counters.get("env.dynamic_fallbacks").copied().unwrap_or(0);
    let walked = trace.metrics.counters.get("env.chain_depth_walked").copied().unwrap_or(0);
    if slot_hits + dynamic > 0 {
        let total = slot_hits + dynamic;
        out.push_str(&format!(
            "\n-- environment access --\nslot-resolved: {} ({:.1}%)   dynamic fallbacks: {}   \
             frames walked in fallbacks: {}\n",
            slot_hits,
            100.0 * slot_hits as f64 / total as f64,
            dynamic,
            walked
        ));
    }

    // --- scheduler pool ------------------------------------------------------
    // Counters flushed once per run by the work-stealing pool: how the
    // parallel constructs' tasks spread over the persistent workers, and
    // how much rebalancing (steals, adaptive range splits) it took.
    let pool_tasks = trace.metrics.counters.get("pool.tasks").copied().unwrap_or(0);
    if pool_tasks > 0 {
        let workers = trace.metrics.counters.get("pool.workers").copied().unwrap_or(0);
        let submitter = trace.metrics.counters.get("pool.submitter_tasks").copied().unwrap_or(0);
        let steals = trace.metrics.counters.get("pool.steals").copied().unwrap_or(0);
        let stolen = trace.metrics.counters.get("pool.tasks_stolen").copied().unwrap_or(0);
        let splits = trace.metrics.counters.get("pool.range_splits").copied().unwrap_or(0);
        let high = trace.metrics.counters.get("pool.queue_high_water").copied().unwrap_or(0);
        out.push_str(&format!(
            "\n-- scheduler pool --\nworkers: {}   tasks: {} ({} run by submitters)   \
             steals: {} ({} tasks)   range splits: {}   queue high-water: {}\n",
            workers, pool_tasks, submitter, steals, stolen, splits, high
        ));
        for w in 0..workers {
            let t = trace.metrics.counters.get(&format!("pool.worker.{w}.tasks"));
            let busy = trace.metrics.counters.get(&format!("pool.worker.{w}.busy_ns"));
            if let (Some(&t), Some(&busy)) = (t, busy) {
                out.push_str(&format!(
                    "  worker {:<3} tasks: {:>6}   busy: {:>10}\n",
                    w,
                    t,
                    fmt_ns(busy)
                ));
            }
        }
    }

    // --- VM ------------------------------------------------------------------
    let mut batches = SpanStat::default();
    let mut instructions: u64 = 0;
    for e in &trace.events {
        if e.kind == EventKind::VmDispatch {
            batches.add(e.dur_ns);
            instructions += e.a as u64;
        }
    }
    if batches.count > 0 {
        out.push_str(&format!(
            "\n-- vm dispatch --\nbatches: {}   instructions: {}   dispatch time: {}\n",
            batches.count,
            instructions,
            fmt_ns(batches.total_ns)
        ));
    }

    out
}

/// Render just the heap-site section (used by `tetra run --heap-profile`,
/// which has no trace to report on).
pub fn heap_report(trace: &Trace) -> String {
    if trace.heap.is_empty() {
        return "== tetra heap profile ==\n(no allocations recorded)\n".to_string();
    }
    let mut out = String::from("== tetra heap profile ==\n");
    out.push_str(&format!(
        "{:<24} {:>9} {:>10} {:>10} {:>10}  call path\n",
        "site", "allocs", "bytes", "live-objs", "live-bytes"
    ));
    for site in trace.heap.top_by_churn(16) {
        out.push_str(&format!(
            "{:<24} {:>9} {:>10} {:>10} {:>10}  {}\n",
            site.label(&trace.names),
            site.allocs,
            fmt_bytes(site.alloc_bytes),
            site.live_objects,
            fmt_bytes(site.live_bytes),
            site.path(&trace.names)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::heapprof;

    fn stmt(tid: u32, t: u64, line: u32) -> Event {
        Event { kind: EventKind::Stmt, tid, start_ns: t, dur_ns: 0, a: line, b: 0, c: 0 }
    }

    #[test]
    fn line_self_time_uses_deltas_per_thread() {
        let trace = Trace {
            events: vec![
                stmt(0, 100, 1),
                stmt(1, 150, 9),
                stmt(0, 400, 2),
                stmt(1, 250, 9),
                Event {
                    kind: EventKind::ThreadSpan,
                    tid: 0,
                    start_ns: 0,
                    dur_ns: 1000,
                    a: 0,
                    b: 0,
                    c: 0,
                },
                Event {
                    kind: EventKind::ThreadSpan,
                    tid: 1,
                    start_ns: 150,
                    dur_ns: 150,
                    a: 0,
                    b: 0,
                    c: 0,
                },
            ],
            names: vec!["main".into()],
            duration_ns: 1000,
            ..Trace::default()
        };
        let lines = line_stats(&trace);
        // line 1: 400-100; line 2: span end 1000 - 400.
        assert_eq!(lines[&1], (1, 300));
        assert_eq!(lines[&2], (1, 600));
        // line 9 on tid 1: (250-150) + (300-250 via span end).
        assert_eq!(lines[&9], (2, 150));
        let text = report(&trace, None);
        assert!(text.contains("top lines by self-time"));
        assert!(text.contains("hot paths"));
    }

    #[test]
    fn report_sections_present_even_when_empty() {
        let text = report(&Trace::default(), None);
        assert!(text.contains("lock contention"));
        assert!(text.contains("gc pauses"));
        // The environment-access section only appears once the interpreter
        // flushed its counters.
        assert!(!text.contains("environment access"));
        // Same for the heap's allocator counters.
        assert!(!text.contains("gc allocator"));
        // No heap profile, no heap section.
        assert!(!text.contains("heap allocation sites"));
    }

    #[test]
    fn gc_allocator_counters_render_with_fast_path_ratio() {
        let mut trace = Trace::default();
        trace.metrics.counters.insert("gc.alloc_fast_path".into(), 992);
        trace.metrics.counters.insert("gc.segment_refills".into(), 8);
        trace.metrics.counters.insert("gc.mark_workers".into(), 4);
        let text = report(&trace, None);
        assert!(text.contains("gc allocator"), "{text}");
        assert!(text.contains("fast-path allocations: 992 (99.2%)"), "{text}");
        assert!(text.contains("segment refills: 8"), "{text}");
        assert!(text.contains("mark workers (max): 4"), "{text}");
    }

    #[test]
    fn env_counters_render_with_slot_hit_ratio() {
        let mut trace = Trace::default();
        trace.metrics.counters.insert("env.slot_hits".into(), 75);
        trace.metrics.counters.insert("env.dynamic_fallbacks".into(), 25);
        trace.metrics.counters.insert("env.chain_depth_walked".into(), 40);
        let text = report(&trace, None);
        assert!(text.contains("environment access"), "{text}");
        assert!(text.contains("slot-resolved: 75 (75.0%)"), "{text}");
        assert!(text.contains("dynamic fallbacks: 25"), "{text}");
        assert!(text.contains("frames walked in fallbacks: 40"), "{text}");
    }

    #[test]
    fn pool_counters_render_per_worker_rows() {
        let mut trace = Trace::default();
        trace.metrics.counters.insert("pool.workers".into(), 2);
        trace.metrics.counters.insert("pool.tasks".into(), 10);
        trace.metrics.counters.insert("pool.submitter_tasks".into(), 1);
        trace.metrics.counters.insert("pool.steals".into(), 3);
        trace.metrics.counters.insert("pool.tasks_stolen".into(), 5);
        trace.metrics.counters.insert("pool.range_splits".into(), 4);
        trace.metrics.counters.insert("pool.queue_high_water".into(), 6);
        trace.metrics.counters.insert("pool.worker.0.tasks".into(), 7);
        trace.metrics.counters.insert("pool.worker.0.busy_ns".into(), 1_500_000);
        trace.metrics.counters.insert("pool.worker.1.tasks".into(), 2);
        trace.metrics.counters.insert("pool.worker.1.busy_ns".into(), 400_000);
        let text = report(&trace, None);
        assert!(text.contains("scheduler pool"), "{text}");
        assert!(text.contains("workers: 2"), "{text}");
        assert!(text.contains("steals: 3 (5 tasks)"), "{text}");
        assert!(text.contains("range splits: 4"), "{text}");
        assert!(text.contains("worker 0"), "{text}");
        assert!(text.contains("worker 1"), "{text}");
        // Without pool counters the section stays out of the report.
        assert!(!report(&Trace::default(), None).contains("scheduler pool"));
    }

    #[test]
    fn drop_and_corrupt_accounting_rendered_in_header() {
        let mut trace = Trace { dropped_events: 12, corrupt_events: 2, ..Trace::default() };
        trace.dropped_by_thread.insert(0, 7);
        trace.dropped_by_thread.insert(3, 5);
        let text = report(&trace, None);
        assert!(text.contains("dropped: 12"), "{text}");
        assert!(text.contains("corrupt: 2"), "{text}");
        assert!(text.contains("dropped by thread:"), "{text}");
        assert!(text.contains("thread-3: 5"), "{text}");
    }

    #[test]
    fn heap_sites_render_by_live_and_churn() {
        let mut trace = Trace { names: vec!["alloc_fn".into()], ..Trace::default() };
        let node = crate::stack::child_sym(crate::stack::ROOT, 0);
        trace.heap.sites.push(heapprof::SiteSnapshot {
            node,
            line: 42,
            allocs: 100,
            alloc_bytes: 4096,
            live_objects: 3,
            live_bytes: 96,
        });
        let text = report(&trace, None);
        assert!(text.contains("heap allocation sites"), "{text}");
        assert!(text.contains("alloc_fn:42"), "{text}");
        assert!(text.contains("4.0KiB"), "{text}");
        let heap_only = heap_report(&trace);
        assert!(heap_only.contains("alloc_fn:42"), "{heap_only}");
    }
}
