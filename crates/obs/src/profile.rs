//! Human-readable profiling report (`tetra profile`).
//!
//! Aggregates a [`Trace`] into:
//!
//! * top source lines by self-time — derived from statement instants:
//!   the time attributed to a line is the gap until the same thread's
//!   next statement began (so it includes calls the line made);
//! * per-function call counts and durations;
//! * a per-lock contention table (waits, wait time, hold time);
//! * a GC pause summary with per-phase breakdown;
//! * VM dispatch totals when the program ran on the bytecode VM.

use crate::event::EventKind;
use crate::session::Trace;
use std::collections::BTreeMap;

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[derive(Default, Clone, Copy)]
struct LineStat {
    count: u64,
    self_ns: u64,
}

#[derive(Default, Clone, Copy)]
struct SpanStat {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

impl SpanStat {
    fn add(&mut self, dur: u64) {
        self.count += 1;
        self.total_ns += dur;
        self.max_ns = self.max_ns.max(dur);
    }
}

/// Per-line statistics: `(line -> (count, self_ns))`, public so tests and
/// the CLI can assert on numbers rather than text.
pub fn line_stats(trace: &Trace) -> BTreeMap<u32, (u64, u64)> {
    // Statement instants, grouped per thread in time order (the trace is
    // already globally time-sorted).
    let mut per_thread: BTreeMap<u32, Vec<(u64, u32)>> = BTreeMap::new();
    for e in &trace.events {
        if e.kind == EventKind::Stmt {
            per_thread.entry(e.tid).or_default().push((e.start_ns, e.a));
        }
    }
    // End-of-track boundary: the thread's span end when known, else its
    // last event of any kind.
    let mut track_end: BTreeMap<u32, u64> = BTreeMap::new();
    for e in &trace.events {
        let end = e.start_ns + e.dur_ns;
        let entry = track_end.entry(e.tid).or_insert(end);
        *entry = (*entry).max(end);
    }
    let mut stats: BTreeMap<u32, LineStat> = BTreeMap::new();
    for (tid, stmts) in &per_thread {
        for (i, (start, line)) in stmts.iter().enumerate() {
            let next = stmts
                .get(i + 1)
                .map(|(t, _)| *t)
                .or_else(|| track_end.get(tid).copied())
                .unwrap_or(*start);
            let s = stats.entry(*line).or_default();
            s.count += 1;
            s.self_ns += next.saturating_sub(*start);
        }
    }
    stats.into_iter().map(|(line, s)| (line, (s.count, s.self_ns))).collect()
}

/// Render the full report.
pub fn report(trace: &Trace, source_lines: Option<&[String]>) -> String {
    let mut out = String::new();
    let threads = trace.thread_names();
    out.push_str(&format!(
        "== tetra profile ==\nduration: {}   threads: {}   events: {}{}\n",
        fmt_ns(trace.duration_ns),
        threads.len(),
        trace.events.len(),
        if trace.dropped_events > 0 {
            format!("   dropped: {} (ring wraparound; oldest events lost)", trace.dropped_events)
        } else {
            String::new()
        }
    ));

    // --- top lines by self-time -------------------------------------------
    let lines = line_stats(trace);
    let mut by_time: Vec<(u32, (u64, u64))> = lines.into_iter().collect();
    by_time.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(&b.0)));
    out.push_str("\n-- top lines by self-time --\n");
    if by_time.is_empty() {
        out.push_str("(no statement events; line profiling covers the interpreter)\n");
    } else {
        out.push_str(&format!("{:>6} {:>12} {:>10}  source\n", "line", "self-time", "count"));
        for (line, (count, self_ns)) in by_time.iter().take(15) {
            let src = source_lines
                .and_then(|ls| ls.get(line.saturating_sub(1) as usize))
                .map(|s| s.trim())
                .unwrap_or("");
            out.push_str(&format!("{:>6} {:>12} {:>10}  {}\n", line, fmt_ns(*self_ns), count, src));
        }
    }

    // --- function calls ----------------------------------------------------
    let mut calls: BTreeMap<u32, SpanStat> = BTreeMap::new();
    for e in &trace.events {
        if e.kind == EventKind::Call {
            calls.entry(e.a).or_default().add(e.dur_ns);
        }
    }
    if !calls.is_empty() {
        let mut rows: Vec<(u32, SpanStat)> = calls.into_iter().collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1.total_ns));
        out.push_str("\n-- function calls --\n");
        out.push_str(&format!("{:<24} {:>8} {:>12} {:>12}\n", "function", "calls", "total", "max"));
        for (sym, s) in rows.iter().take(10) {
            out.push_str(&format!(
                "{:<24} {:>8} {:>12} {:>12}\n",
                trace.name(*sym),
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(s.max_ns)
            ));
        }
    }

    // --- lock contention ----------------------------------------------------
    let mut waits: BTreeMap<u32, SpanStat> = BTreeMap::new();
    let mut holds: BTreeMap<u32, SpanStat> = BTreeMap::new();
    let mut contended: BTreeMap<u32, u64> = BTreeMap::new();
    for e in &trace.events {
        match e.kind {
            EventKind::LockWait => {
                waits.entry(e.a).or_default().add(e.dur_ns);
                // A wait longer than 1µs means the lock was actually
                // contended rather than acquired on the fast path.
                if e.dur_ns > 1_000 {
                    *contended.entry(e.a).or_insert(0) += 1;
                }
            }
            EventKind::LockHold => holds.entry(e.a).or_default().add(e.dur_ns),
            _ => {}
        }
    }
    out.push_str("\n-- lock contention --\n");
    if waits.is_empty() && holds.is_empty() {
        out.push_str("(no lock operations)\n");
    } else {
        out.push_str(&format!(
            "{:<16} {:>9} {:>10} {:>11} {:>10} {:>11} {:>10}\n",
            "lock", "acquires", "contended", "wait-total", "wait-max", "hold-total", "hold-max"
        ));
        let mut all: Vec<u32> = waits.keys().chain(holds.keys()).copied().collect();
        all.sort_unstable();
        all.dedup();
        all.sort_by_key(|sym| std::cmp::Reverse(waits.get(sym).map(|s| s.total_ns).unwrap_or(0)));
        for sym in all {
            let w = waits.get(&sym).copied().unwrap_or_default();
            let h = holds.get(&sym).copied().unwrap_or_default();
            out.push_str(&format!(
                "{:<16} {:>9} {:>10} {:>11} {:>10} {:>11} {:>10}\n",
                trace.name(sym),
                w.count.max(h.count),
                contended.get(&sym).copied().unwrap_or(0),
                fmt_ns(w.total_ns),
                fmt_ns(w.max_ns),
                fmt_ns(h.total_ns),
                fmt_ns(h.max_ns)
            ));
        }
    }

    // --- GC ------------------------------------------------------------------
    let mut pauses = SpanStat::default();
    let mut phases: [(EventKind, SpanStat); 3] = [
        (EventKind::GcStwWait, SpanStat::default()),
        (EventKind::GcMark, SpanStat::default()),
        (EventKind::GcSweep, SpanStat::default()),
    ];
    for e in &trace.events {
        if e.kind == EventKind::GcPause {
            pauses.add(e.dur_ns);
        }
        for (kind, stat) in phases.iter_mut() {
            if e.kind == *kind {
                stat.add(e.dur_ns);
            }
        }
    }
    out.push_str("\n-- gc pauses --\n");
    if pauses.count == 0 {
        out.push_str("(no collections)\n");
    } else {
        out.push_str(&format!(
            "collections: {}   pause total: {}   pause max: {}   pause mean: {}\n",
            pauses.count,
            fmt_ns(pauses.total_ns),
            fmt_ns(pauses.max_ns),
            fmt_ns(pauses.total_ns / pauses.count)
        ));
        for (kind, stat) in &phases {
            if stat.count > 0 {
                out.push_str(&format!(
                    "  {:<12} total: {:>10}   max: {:>10}\n",
                    kind.label(),
                    fmt_ns(stat.total_ns),
                    fmt_ns(stat.max_ns)
                ));
            }
        }
    }

    // --- environment access --------------------------------------------------
    // Counters flushed by the interpreter's variable hot path: slot-resolved
    // accesses vs dynamic name-walk fallbacks (see DESIGN.md on the resolver).
    let slot_hits = trace.metrics.counters.get("env.slot_hits").copied().unwrap_or(0);
    let dynamic = trace.metrics.counters.get("env.dynamic_fallbacks").copied().unwrap_or(0);
    let walked = trace.metrics.counters.get("env.chain_depth_walked").copied().unwrap_or(0);
    if slot_hits + dynamic > 0 {
        let total = slot_hits + dynamic;
        out.push_str(&format!(
            "\n-- environment access --\nslot-resolved: {} ({:.1}%)   dynamic fallbacks: {}   \
             frames walked in fallbacks: {}\n",
            slot_hits,
            100.0 * slot_hits as f64 / total as f64,
            dynamic,
            walked
        ));
    }

    // --- VM ------------------------------------------------------------------
    let mut batches = SpanStat::default();
    let mut instructions: u64 = 0;
    for e in &trace.events {
        if e.kind == EventKind::VmDispatch {
            batches.add(e.dur_ns);
            instructions += e.a as u64;
        }
    }
    if batches.count > 0 {
        out.push_str(&format!(
            "\n-- vm dispatch --\nbatches: {}   instructions: {}   dispatch time: {}\n",
            batches.count,
            instructions,
            fmt_ns(batches.total_ns)
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn stmt(tid: u32, t: u64, line: u32) -> Event {
        Event { kind: EventKind::Stmt, tid, start_ns: t, dur_ns: 0, a: line, b: 0 }
    }

    #[test]
    fn line_self_time_uses_deltas_per_thread() {
        let trace = Trace {
            events: vec![
                stmt(0, 100, 1),
                stmt(1, 150, 9),
                stmt(0, 400, 2),
                stmt(1, 250, 9),
                Event {
                    kind: EventKind::ThreadSpan,
                    tid: 0,
                    start_ns: 0,
                    dur_ns: 1000,
                    a: 0,
                    b: 0,
                },
                Event {
                    kind: EventKind::ThreadSpan,
                    tid: 1,
                    start_ns: 150,
                    dur_ns: 150,
                    a: 0,
                    b: 0,
                },
            ],
            names: vec!["main".into()],
            duration_ns: 1000,
            ..Trace::default()
        };
        let lines = line_stats(&trace);
        // line 1: 400-100; line 2: span end 1000 - 400.
        assert_eq!(lines[&1], (1, 300));
        assert_eq!(lines[&2], (1, 600));
        // line 9 on tid 1: (250-150) + (300-250 via span end).
        assert_eq!(lines[&9], (2, 150));
        let text = report(&trace, None);
        assert!(text.contains("top lines by self-time"));
    }

    #[test]
    fn report_sections_present_even_when_empty() {
        let text = report(&Trace::default(), None);
        assert!(text.contains("lock contention"));
        assert!(text.contains("gc pauses"));
        // The environment-access section only appears once the interpreter
        // flushed its counters.
        assert!(!text.contains("environment access"));
    }

    #[test]
    fn env_counters_render_with_slot_hit_ratio() {
        let mut trace = Trace::default();
        trace.metrics.counters.insert("env.slot_hits".into(), 75);
        trace.metrics.counters.insert("env.dynamic_fallbacks".into(), 25);
        trace.metrics.counters.insert("env.chain_depth_walked".into(), 40);
        let text = report(&trace, None);
        assert!(text.contains("environment access"), "{text}");
        assert!(text.contains("slot-resolved: 75 (75.0%)"), "{text}");
        assert!(text.contains("dynamic fallbacks: 25"), "{text}");
        assert!(text.contains("frames walked in fallbacks: 40"), "{text}");
    }
}
