//! tetra-obs: unified tracing, metrics, and profiling for the Tetra suite.
//!
//! This crate is the single observability layer shared by the tree-walking
//! interpreter, the bytecode VM, and the runtime (GC + lock registry). It
//! provides:
//!
//! * **Trace collection** ([`event`], [`ring`]) — each OS thread writes
//!   typed events into its own lock-free ring buffer. When tracing is
//!   disabled the emit path is a single relaxed atomic load, so
//!   instrumentation can stay compiled into release builds.
//! * **Attribution** ([`stack`], [`flame`], [`heapprof`]) — shadow
//!   call-stack interning (a call path is one `u32` trie node), flame
//!   aggregation of (path, self-time) samples into collapsed-stack
//!   format, and an allocation-site heap profiler fed by the mark-sweep
//!   heap.
//! * **Metrics** ([`metrics`]) — a registry of named counters and log2
//!   histograms fed from low-frequency paths (lock operations, GC pauses,
//!   thread lifecycle).
//! * **Exporters** ([`chrome`], [`profile`]) — Chrome trace-event JSON
//!   (loadable in Perfetto / `chrome://tracing`, one track per Tetra
//!   thread) and a human-readable profiling report (hot call paths, top
//!   lines by self-time, per-lock and per-path contention, allocation
//!   sites, GC pause summary).
//!
//! # Lifecycle
//!
//! ```
//! use tetra_obs as obs;
//! obs::session::begin(obs::session::Config::default());
//! // ... run a Tetra program; instrumented code emits events ...
//! let node = obs::stack::child(obs::stack::ROOT, "main");
//! obs::stmt(0, 1, node);
//! let trace = obs::session::end();
//! let json = obs::chrome::export(&trace);
//! let report = obs::profile::report(&trace, None);
//! let folded = obs::flame::write_folded(&trace);
//! assert!(json.starts_with("{\"traceEvents\":"));
//! assert!(report.contains("threads: 1"));
//! assert!(folded.starts_with("main "));
//! ```
//!
//! Events are timestamped in nanoseconds relative to the session start.
//! Ring buffers hold the most recent `events_per_thread` events per
//! thread; older events are overwritten and counted as dropped.

pub mod chrome;
pub mod event;
pub mod flame;
pub mod heapprof;
pub mod metrics;
pub mod profile;
pub mod ring;
pub mod session;
pub mod stack;

pub use event::{Event, EventKind};
pub use session::Trace;

use std::sync::atomic::{AtomicBool, Ordering};

/// Global tracing switch. Relaxed loads only on the hot path.
static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Global metrics switch, independent of tracing.
static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Global heap-profiling switch, independent of tracing (so
/// `tetra run --heap-profile` works without the trace rings).
static HEAP_PROF_ENABLED: AtomicBool = AtomicBool::new(false);

/// True when a tracing session is active. This is the only check on the
/// disabled fast path.
#[inline(always)]
pub fn enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// True when metrics collection is active.
#[inline(always)]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// True when allocation-site heap profiling is active.
#[inline(always)]
pub fn heap_profile_enabled() -> bool {
    HEAP_PROF_ENABLED.load(Ordering::Relaxed)
}

/// True when the engines should maintain shadow call stacks: either the
/// trace wants stack nodes on its events, or the heap profiler wants
/// allocation sites. Checked once per user-function call.
#[inline(always)]
pub fn attribution_enabled() -> bool {
    enabled() || heap_profile_enabled()
}

pub(crate) fn set_enabled(trace: bool, metrics: bool, heap_profile: bool) {
    TRACE_ENABLED.store(trace, Ordering::SeqCst);
    METRICS_ENABLED.store(metrics, Ordering::SeqCst);
    HEAP_PROF_ENABLED.store(heap_profile, Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Emission API (called from instrumented code)
// ---------------------------------------------------------------------------

/// Current session-relative timestamp in nanoseconds, or 0 when tracing is
/// disabled. Instrumented code calls this at span starts and passes the
/// value back to the matching emit function.
#[inline]
pub fn now_ns() -> u64 {
    if !enabled() {
        return 0;
    }
    session::elapsed_ns()
}

/// Timestamp that ignores the trace switch — used by metrics-only call
/// sites (GC pause accounting) that must time even without a trace.
#[inline]
pub fn metric_now_ns() -> u64 {
    if !enabled() && !metrics_enabled() {
        return 0;
    }
    session::elapsed_ns()
}

/// Statement executed: an instant event carrying the source line and the
/// thread's current shadow call-stack node. This is the highest-frequency
/// event; per-line and per-path self-time in the profile report are
/// derived from deltas between consecutive statement instants on the same
/// thread.
#[inline]
pub fn stmt(tid: u32, line: u32, stack_node: u32) {
    if !enabled() {
        return;
    }
    ring::emit(Event {
        kind: EventKind::Stmt,
        tid,
        start_ns: session::elapsed_ns(),
        dur_ns: 0,
        a: line,
        b: 0,
        c: stack_node,
    });
}

/// User-function call span (`start_ns` from [`now_ns`] at entry);
/// `stack_node` is the callee's call-path node.
#[inline]
pub fn call(tid: u32, name: &str, line: u32, start_ns: u64, stack_node: u32) {
    if !enabled() {
        return;
    }
    let sym = session::intern(name);
    let end = session::elapsed_ns();
    ring::emit(Event {
        kind: EventKind::Call,
        tid,
        start_ns,
        dur_ns: end.saturating_sub(start_ns),
        a: sym,
        b: line,
        c: stack_node,
    });
}

/// Whole-lifetime span of a Tetra thread, emitted when the thread
/// finishes. `name` becomes the Chrome track name.
#[inline]
pub fn thread_span(tid: u32, name: &str, start_ns: u64) {
    if !enabled() {
        return;
    }
    let sym = session::intern(name);
    let end = session::elapsed_ns();
    ring::emit(Event {
        kind: EventKind::ThreadSpan,
        tid,
        start_ns,
        dur_ns: end.saturating_sub(start_ns),
        a: sym,
        b: 0,
        c: 0,
    });
    metrics::counter_add("threads.finished", 1);
}

/// Time spent blocked acquiring a named lock (zero-duration waits are
/// still recorded — they distinguish contended from uncontended acquires
/// by duration). `stack_node` names the acquiring call path.
#[inline]
pub fn lock_wait(tid: u32, lock: &str, line: u32, start_ns: u64, stack_node: u32) {
    let end = metric_now_ns();
    let wait = end.saturating_sub(start_ns);
    metrics::histogram_record("lock.wait_ns", wait);
    if !enabled() {
        return;
    }
    let sym = session::intern(lock);
    ring::emit(Event {
        kind: EventKind::LockWait,
        tid,
        start_ns,
        dur_ns: wait,
        a: sym,
        b: line,
        c: stack_node,
    });
}

/// Time a named lock was held, emitted at release. `stack_node` names the
/// call path that acquired the lock.
#[inline]
pub fn lock_hold(tid: u32, lock: &str, start_ns: u64, stack_node: u32) {
    let end = metric_now_ns();
    let held = end.saturating_sub(start_ns);
    metrics::histogram_record("lock.hold_ns", held);
    if !enabled() {
        return;
    }
    let sym = session::intern(lock);
    ring::emit(Event {
        kind: EventKind::LockHold,
        tid,
        start_ns,
        dur_ns: held,
        a: sym,
        b: 0,
        c: stack_node,
    });
}

/// Synthetic thread id for the collector's events: GC pauses appear as
/// their own track rather than under whichever mutator triggered them.
pub const GC_TID: u32 = u32::MAX;

/// Phases of one stop-the-world collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcPhase {
    /// Collector waiting for mutators to reach safepoints.
    StwWait,
    /// Mark phase (root scan + transitive marking).
    Mark,
    /// Sweep phase.
    Sweep,
    /// The entire pause, wrapping the three phases above.
    Pause,
}

/// GC phase span; `collection` is the ordinal of the collection. `detail`
/// is a phase-specific payload carried in the event's `b` word: the number
/// of mark workers for [`GcPhase::Mark`], the number of segments swept for
/// [`GcPhase::Sweep`], and 0 otherwise.
#[inline]
pub fn gc_phase(tid: u32, phase: GcPhase, collection: u32, start_ns: u64, detail: u32) {
    let end = metric_now_ns();
    let dur = end.saturating_sub(start_ns);
    if phase == GcPhase::Pause {
        metrics::histogram_record("gc.pause_ns", dur);
    }
    if !enabled() {
        return;
    }
    let kind = match phase {
        GcPhase::StwWait => EventKind::GcStwWait,
        GcPhase::Mark => EventKind::GcMark,
        GcPhase::Sweep => EventKind::GcSweep,
        GcPhase::Pause => EventKind::GcPause,
    };
    ring::emit(Event { kind, tid, start_ns, dur_ns: dur, a: collection, b: detail, c: 0 });
}

/// One VM dispatch batch: `instructions` instructions executed for `tid`
/// between `start_ns` and now, all under call path `stack_node` (the
/// scheduler flushes the batch whenever a call or return changes the
/// stack).
#[inline]
pub fn vm_dispatch(tid: u32, instructions: u32, start_ns: u64, stack_node: u32) {
    if !enabled() {
        return;
    }
    let end = session::elapsed_ns();
    ring::emit(Event {
        kind: EventKind::VmDispatch,
        tid,
        start_ns,
        dur_ns: end.saturating_sub(start_ns),
        a: instructions,
        b: 0,
        c: stack_node,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_cheap_and_silent() {
        assert!(!enabled());
        assert!(!heap_profile_enabled());
        assert!(!attribution_enabled());
        assert_eq!(now_ns(), 0);
        stmt(0, 1, 0);
        call(0, "f", 1, 0, 0);
        lock_wait(0, "m", 1, 0, 0);
        assert_eq!(heapprof::record_alloc(64), 0);
        // No session: nothing to collect.
        let trace = session::end();
        assert!(trace.events.is_empty());
        assert!(trace.heap.is_empty());
    }
}
