//! Typed trace events and their packed 5×u64 wire representation.
//!
//! Events are stored in per-thread ring buffers as five `AtomicU64` words:
//!
//! ```text
//! w0: kind (low 8 bits) | tid << 8
//! w1: start_ns (session-relative)
//! w2: dur_ns (0 for instant events)
//! w3: a (low 32 bits) | b << 32
//! w4: c (low 32 bits)
//! ```
//!
//! `a`/`b`/`c` are kind-specific payloads: a source line, an interned
//! string symbol, a collection ordinal, an instruction count, or a shadow
//! call-stack node (see [`crate::stack`]).

/// What happened. Discriminants are the wire encoding in `w0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// Instant: statement at line `a` began executing; `c` is the shadow
    /// call-stack node active at that point.
    Stmt = 0,
    /// Span: call to function symbol `a`, call site line `b`; `c` is the
    /// callee's stack node (path including the callee itself).
    Call = 1,
    /// Span: lifetime of Tetra thread `tid`; `a` is its name symbol.
    ThreadSpan = 2,
    /// Span: blocked acquiring lock symbol `a` at line `b`; `c` is the
    /// acquiring call path's stack node.
    LockWait = 3,
    /// Span: held lock symbol `a` (emitted at release); `c` is the
    /// acquiring call path's stack node.
    LockHold = 4,
    /// Span: GC waited for mutators to reach safepoints (collection `a`).
    GcStwWait = 5,
    /// Span: GC mark phase (collection `a`).
    GcMark = 6,
    /// Span: GC sweep phase (collection `a`).
    GcSweep = 7,
    /// Span: entire stop-the-world pause (collection `a`).
    GcPause = 8,
    /// Span: VM dispatch batch that executed `a` instructions; `c` is the
    /// stack node the batch ran under (batches are flushed when the VM
    /// thread's call stack changes, so one batch has one node).
    VmDispatch = 9,
}

impl EventKind {
    /// Decode a wire kind byte. Returns `None` for out-of-range values —
    /// possible on a torn wraparound read — so callers skip-and-count
    /// corrupt slots instead of panicking.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            0 => EventKind::Stmt,
            1 => EventKind::Call,
            2 => EventKind::ThreadSpan,
            3 => EventKind::LockWait,
            4 => EventKind::LockHold,
            5 => EventKind::GcStwWait,
            6 => EventKind::GcMark,
            7 => EventKind::GcSweep,
            8 => EventKind::GcPause,
            9 => EventKind::VmDispatch,
            _ => return None,
        })
    }

    /// Human-readable name used by both exporters.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Stmt => "stmt",
            EventKind::Call => "call",
            EventKind::ThreadSpan => "thread",
            EventKind::LockWait => "lock_wait",
            EventKind::LockHold => "lock_hold",
            EventKind::GcStwWait => "gc_stw_wait",
            EventKind::GcMark => "gc_mark",
            EventKind::GcSweep => "gc_sweep",
            EventKind::GcPause => "gc_pause",
            EventKind::VmDispatch => "vm_dispatch",
        }
    }
}

/// A decoded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub kind: EventKind,
    /// Tetra thread id (0 = main).
    pub tid: u32,
    /// Session-relative start, nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds; 0 for instants.
    pub dur_ns: u64,
    /// Kind-specific payload (line, symbol, ordinal, count).
    pub a: u32,
    /// Second kind-specific payload.
    pub b: u32,
    /// Third kind-specific payload: the shadow call-stack node for kinds
    /// that attribute to a call path, 0 otherwise.
    pub c: u32,
}

/// Words per ring-buffer slot (see the module docs for the layout).
pub const WORDS_PER_EVENT: usize = 5;

impl Event {
    #[inline]
    pub fn encode(&self) -> [u64; WORDS_PER_EVENT] {
        [
            (self.kind as u64) | ((self.tid as u64) << 8),
            self.start_ns,
            self.dur_ns,
            (self.a as u64) | ((self.b as u64) << 32),
            self.c as u64,
        ]
    }

    #[inline]
    pub fn decode(words: [u64; WORDS_PER_EVENT]) -> Option<Event> {
        Some(Event {
            kind: EventKind::from_u8((words[0] & 0xFF) as u8)?,
            tid: (words[0] >> 8) as u32,
            start_ns: words[1],
            dur_ns: words[2],
            a: (words[3] & 0xFFFF_FFFF) as u32,
            b: (words[3] >> 32) as u32,
            c: (words[4] & 0xFFFF_FFFF) as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        for k in 0..=9u8 {
            let kind = EventKind::from_u8(k).expect("kinds 0..=9 are valid");
            let e = Event {
                kind,
                tid: 0xABCD_1234,
                start_ns: u64::MAX / 3,
                dur_ns: 42,
                a: 7,
                b: 0xFFFF_FFFF,
                c: 0xDEAD_BEEF,
            };
            assert_eq!(Event::decode(e.encode()), Some(e));
        }
        assert_eq!(EventKind::from_u8(200), None);
    }

    #[test]
    fn corrupt_kind_byte_decodes_to_none() {
        let e = Event { kind: EventKind::Call, tid: 3, start_ns: 10, dur_ns: 5, a: 1, b: 2, c: 4 };
        let mut words = e.encode();
        // Simulate a torn wraparound read that left a stale kind byte.
        words[0] = (words[0] & !0xFF) | 0xEE;
        assert_eq!(Event::decode(words), None);
    }
}
