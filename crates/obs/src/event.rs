//! Typed trace events and their packed 4×u64 wire representation.
//!
//! Events are stored in per-thread ring buffers as four `AtomicU64` words:
//!
//! ```text
//! w0: kind (low 8 bits) | tid << 8
//! w1: start_ns (session-relative)
//! w2: dur_ns (0 for instant events)
//! w3: a (low 32 bits) | b << 32
//! ```
//!
//! `a`/`b` are kind-specific payloads: a source line, an interned string
//! symbol, a collection ordinal, or an instruction count.

/// What happened. Discriminants are the wire encoding in `w0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// Instant: statement at line `a` began executing.
    Stmt = 0,
    /// Span: call to function symbol `a`, call site line `b`.
    Call = 1,
    /// Span: lifetime of Tetra thread `tid`; `a` is its name symbol.
    ThreadSpan = 2,
    /// Span: blocked acquiring lock symbol `a` at line `b`.
    LockWait = 3,
    /// Span: held lock symbol `a` (emitted at release).
    LockHold = 4,
    /// Span: GC waited for mutators to reach safepoints (collection `a`).
    GcStwWait = 5,
    /// Span: GC mark phase (collection `a`).
    GcMark = 6,
    /// Span: GC sweep phase (collection `a`).
    GcSweep = 7,
    /// Span: entire stop-the-world pause (collection `a`).
    GcPause = 8,
    /// Span: VM dispatch batch that executed `a` instructions.
    VmDispatch = 9,
}

impl EventKind {
    pub fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            0 => EventKind::Stmt,
            1 => EventKind::Call,
            2 => EventKind::ThreadSpan,
            3 => EventKind::LockWait,
            4 => EventKind::LockHold,
            5 => EventKind::GcStwWait,
            6 => EventKind::GcMark,
            7 => EventKind::GcSweep,
            8 => EventKind::GcPause,
            9 => EventKind::VmDispatch,
            _ => return None,
        })
    }

    /// Human-readable name used by both exporters.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Stmt => "stmt",
            EventKind::Call => "call",
            EventKind::ThreadSpan => "thread",
            EventKind::LockWait => "lock_wait",
            EventKind::LockHold => "lock_hold",
            EventKind::GcStwWait => "gc_stw_wait",
            EventKind::GcMark => "gc_mark",
            EventKind::GcSweep => "gc_sweep",
            EventKind::GcPause => "gc_pause",
            EventKind::VmDispatch => "vm_dispatch",
        }
    }
}

/// A decoded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub kind: EventKind,
    /// Tetra thread id (0 = main).
    pub tid: u32,
    /// Session-relative start, nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds; 0 for instants.
    pub dur_ns: u64,
    /// Kind-specific payload (line, symbol, ordinal, count).
    pub a: u32,
    /// Second kind-specific payload.
    pub b: u32,
}

impl Event {
    #[inline]
    pub fn encode(&self) -> [u64; 4] {
        [
            (self.kind as u64) | ((self.tid as u64) << 8),
            self.start_ns,
            self.dur_ns,
            (self.a as u64) | ((self.b as u64) << 32),
        ]
    }

    #[inline]
    pub fn decode(words: [u64; 4]) -> Option<Event> {
        Some(Event {
            kind: EventKind::from_u8((words[0] & 0xFF) as u8)?,
            tid: (words[0] >> 8) as u32,
            start_ns: words[1],
            dur_ns: words[2],
            a: (words[3] & 0xFFFF_FFFF) as u32,
            b: (words[3] >> 32) as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        for k in 0..=9u8 {
            let kind = EventKind::from_u8(k).unwrap();
            let e = Event {
                kind,
                tid: 0xABCD_1234,
                start_ns: u64::MAX / 3,
                dur_ns: 42,
                a: 7,
                b: 0xFFFF_FFFF,
            };
            assert_eq!(Event::decode(e.encode()), Some(e));
        }
        assert_eq!(EventKind::from_u8(200), None);
    }
}
