//! Per-thread lock-free ring buffers for trace events.
//!
//! Each OS thread that emits events owns one [`Ring`]: a fixed-size array
//! of 4-word slots plus a monotonically increasing head counter. Only the
//! owning thread writes; the head counter wraps over the slot array, so
//! when a ring fills the oldest events are overwritten (and counted as
//! dropped) rather than blocking or allocating.
//!
//! Rings are handed out via a `thread_local` keyed by the session
//! generation, so a ring created in one session is never reused by the
//! next. The session holds `Arc`s to every ring and snapshots them after
//! the traced program has quiesced.

use crate::event::Event;
use crate::session;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of events retained per thread by default (~1 MiB per thread at
/// 32 bytes per slot).
pub const DEFAULT_EVENTS_PER_THREAD: usize = 1 << 15;

/// One thread's event buffer. Written by its owner thread only.
pub struct Ring {
    /// 4 words per slot, `capacity * 4` entries.
    slots: Vec<AtomicU64>,
    capacity: usize,
    /// Total events ever pushed; slot index is `head % capacity`.
    head: AtomicU64,
}

impl Ring {
    pub fn new(capacity: usize) -> Ring {
        assert!(capacity > 0);
        let mut slots = Vec::with_capacity(capacity * 4);
        for _ in 0..capacity * 4 {
            slots.push(AtomicU64::new(0));
        }
        Ring { slots, capacity, head: AtomicU64::new(0) }
    }

    /// Push one event. Owner thread only; wraps over the oldest slot when
    /// full.
    #[inline]
    pub fn push(&self, event: &Event) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = (head as usize % self.capacity) * 4;
        let words = event.encode();
        self.slots[slot].store(words[0], Ordering::Relaxed);
        self.slots[slot + 1].store(words[1], Ordering::Relaxed);
        self.slots[slot + 2].store(words[2], Ordering::Relaxed);
        self.slots[slot + 3].store(words[3], Ordering::Relaxed);
        // Release-publish the slot contents before advancing head.
        self.head.store(head + 1, Ordering::Release);
    }

    /// Total events ever pushed (including overwritten ones).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to wraparound.
    pub fn dropped(&self) -> u64 {
        self.pushed().saturating_sub(self.capacity as u64)
    }

    /// Copy out the retained events, oldest first. Call after the owner
    /// thread has quiesced (e.g. post-join) for an exact snapshot.
    pub fn snapshot(&self) -> Vec<Event> {
        let head = self.head.load(Ordering::Acquire);
        let retained = (head as usize).min(self.capacity);
        let start = head as usize - retained;
        let mut out = Vec::with_capacity(retained);
        for i in start..head as usize {
            let slot = (i % self.capacity) * 4;
            let words = [
                self.slots[slot].load(Ordering::Relaxed),
                self.slots[slot + 1].load(Ordering::Relaxed),
                self.slots[slot + 2].load(Ordering::Relaxed),
                self.slots[slot + 3].load(Ordering::Relaxed),
            ];
            if let Some(e) = Event::decode(words) {
                out.push(e);
            }
        }
        out
    }
}

thread_local! {
    /// (session generation, ring) for the current thread.
    static LOCAL_RING: RefCell<Option<(u64, Arc<Ring>)>> = const { RefCell::new(None) };
}

/// Emit an event into the calling thread's ring for the current session.
/// Creates and registers the ring on the thread's first emit of a session.
#[inline]
pub fn emit(event: Event) {
    LOCAL_RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        let generation = session::generation();
        match slot.as_ref() {
            Some((g, ring)) if *g == generation => ring.push(&event),
            _ => {
                if let Some(ring) = session::register_ring() {
                    ring.push(&event);
                    *slot = Some((generation, ring));
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(start: u64) -> Event {
        Event { kind: EventKind::Stmt, tid: 1, start_ns: start, dur_ns: 0, a: 3, b: 0 }
    }

    #[test]
    fn snapshot_before_wrap_is_in_order() {
        let r = Ring::new(8);
        for i in 0..5 {
            r.push(&ev(i));
        }
        let events = r.snapshot();
        assert_eq!(events.len(), 5);
        assert_eq!(events.iter().map(|e| e.start_ns).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn wraparound_keeps_newest() {
        let r = Ring::new(4);
        for i in 0..11 {
            r.push(&ev(i));
        }
        let events = r.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(events.iter().map(|e| e.start_ns).collect::<Vec<_>>(), vec![7, 8, 9, 10]);
        assert_eq!(r.pushed(), 11);
        assert_eq!(r.dropped(), 7);
    }

    #[test]
    fn exact_fill_boundary() {
        let r = Ring::new(4);
        for i in 0..4 {
            r.push(&ev(i));
        }
        assert_eq!(r.snapshot().len(), 4);
        assert_eq!(r.dropped(), 0);
        r.push(&ev(4));
        assert_eq!(r.snapshot().iter().map(|e| e.start_ns).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert_eq!(r.dropped(), 1);
    }
}
