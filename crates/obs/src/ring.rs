//! Per-thread lock-free ring buffers for trace events.
//!
//! Each OS thread that emits events owns one [`Ring`]: a fixed-size array
//! of 5-word slots plus a monotonically increasing head counter. Only the
//! owning thread writes; the head counter wraps over the slot array, so
//! when a ring fills the oldest events are overwritten (and counted as
//! dropped) rather than blocking or allocating.
//!
//! Rings are handed out via a `thread_local` keyed by the session
//! generation, so a ring created in one session is never reused by the
//! next. The session holds `Arc`s to every ring and snapshots them after
//! the traced program has quiesced.

use crate::event::{Event, WORDS_PER_EVENT};
use crate::session;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of events retained per thread by default (~1.25 MiB per thread
/// at 40 bytes per slot).
pub const DEFAULT_EVENTS_PER_THREAD: usize = 1 << 15;

/// A quiesced copy of one ring's contents plus its loss accounting.
pub struct RingSnapshot {
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Slots whose kind byte failed to decode (torn wraparound read);
    /// skipped rather than panicking.
    pub corrupt: u64,
}

/// One thread's event buffer. Written by its owner thread only.
pub struct Ring {
    /// `WORDS_PER_EVENT` words per slot, `capacity * WORDS_PER_EVENT`
    /// entries.
    slots: Vec<AtomicU64>,
    capacity: usize,
    /// Total events ever pushed; slot index is `head % capacity`.
    head: AtomicU64,
    /// Tetra thread id of the first event pushed, plus one (0 = none yet).
    /// Used to attribute this ring's drops to a thread in the report.
    owner_tid: AtomicU64,
}

impl Ring {
    pub fn new(capacity: usize) -> Ring {
        assert!(capacity > 0);
        let mut slots = Vec::with_capacity(capacity * WORDS_PER_EVENT);
        for _ in 0..capacity * WORDS_PER_EVENT {
            slots.push(AtomicU64::new(0));
        }
        Ring { slots, capacity, head: AtomicU64::new(0), owner_tid: AtomicU64::new(0) }
    }

    /// Push one event. Owner thread only; wraps over the oldest slot when
    /// full.
    #[inline]
    pub fn push(&self, event: &Event) {
        let head = self.head.load(Ordering::Relaxed);
        if head == 0 {
            self.owner_tid.store(event.tid as u64 + 1, Ordering::Relaxed);
        }
        let slot = (head as usize % self.capacity) * WORDS_PER_EVENT;
        let words = event.encode();
        for (i, w) in words.iter().enumerate() {
            self.slots[slot + i].store(*w, Ordering::Relaxed);
        }
        // Release-publish the slot contents before advancing head.
        self.head.store(head + 1, Ordering::Release);
    }

    /// Total events ever pushed (including overwritten ones).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to wraparound.
    pub fn dropped(&self) -> u64 {
        self.pushed().saturating_sub(self.capacity as u64)
    }

    /// Tetra thread id of the first event this ring received, if any.
    /// For the interpreter a ring maps 1:1 to a Tetra thread; the VM
    /// scheduler funnels every VM thread through one ring, so this is the
    /// first VM thread dispatched (in practice the main thread).
    pub fn owner_tid(&self) -> Option<u32> {
        match self.owner_tid.load(Ordering::Relaxed) {
            0 => None,
            t => Some((t - 1) as u32),
        }
    }

    /// Copy out the retained events, oldest first, counting (and
    /// skipping) corrupt slots. Call after the owner thread has quiesced
    /// (e.g. post-join) for an exact snapshot.
    pub fn snapshot(&self) -> RingSnapshot {
        let head = self.head.load(Ordering::Acquire);
        let retained = (head as usize).min(self.capacity);
        let start = head as usize - retained;
        let mut events = Vec::with_capacity(retained);
        let mut corrupt = 0u64;
        for i in start..head as usize {
            let slot = (i % self.capacity) * WORDS_PER_EVENT;
            let mut words = [0u64; WORDS_PER_EVENT];
            for (j, w) in words.iter_mut().enumerate() {
                *w = self.slots[slot + j].load(Ordering::Relaxed);
            }
            match Event::decode(words) {
                Some(e) => events.push(e),
                None => corrupt += 1,
            }
        }
        RingSnapshot { events, corrupt }
    }
}

thread_local! {
    /// (session generation, ring) for the current thread.
    static LOCAL_RING: RefCell<Option<(u64, Arc<Ring>)>> = const { RefCell::new(None) };
}

/// Emit an event into the calling thread's ring for the current session.
/// Creates and registers the ring on the thread's first emit of a session.
#[inline]
pub fn emit(event: Event) {
    LOCAL_RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        let generation = session::generation();
        match slot.as_ref() {
            Some((g, ring)) if *g == generation => ring.push(&event),
            _ => {
                if let Some(ring) = session::register_ring() {
                    ring.push(&event);
                    *slot = Some((generation, ring));
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(start: u64) -> Event {
        Event { kind: EventKind::Stmt, tid: 1, start_ns: start, dur_ns: 0, a: 3, b: 0, c: 0 }
    }

    #[test]
    fn snapshot_before_wrap_is_in_order() {
        let r = Ring::new(8);
        for i in 0..5 {
            r.push(&ev(i));
        }
        let snap = r.snapshot();
        assert_eq!(snap.events.len(), 5);
        assert_eq!(snap.events.iter().map(|e| e.start_ns).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(snap.corrupt, 0);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.owner_tid(), Some(1));
    }

    #[test]
    fn wraparound_keeps_newest() {
        let r = Ring::new(4);
        for i in 0..11 {
            r.push(&ev(i));
        }
        let snap = r.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.events.iter().map(|e| e.start_ns).collect::<Vec<_>>(), vec![7, 8, 9, 10]);
        assert_eq!(r.pushed(), 11);
        assert_eq!(r.dropped(), 7);
    }

    #[test]
    fn exact_fill_boundary() {
        let r = Ring::new(4);
        for i in 0..4 {
            r.push(&ev(i));
        }
        assert_eq!(r.snapshot().events.len(), 4);
        assert_eq!(r.dropped(), 0);
        r.push(&ev(4));
        assert_eq!(
            r.snapshot().events.iter().map(|e| e.start_ns).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn pushed_always_equals_retained_plus_dropped() {
        // The accounting invariant the report relies on: every event ever
        // pushed is either still retained or counted as dropped, across
        // fills below, at, and far past capacity.
        for total in [0u64, 1, 3, 4, 5, 16, 61] {
            let r = Ring::new(4);
            for i in 0..total {
                r.push(&ev(i));
            }
            let retained = r.snapshot().events.len() as u64;
            assert_eq!(r.pushed(), total);
            assert_eq!(
                r.pushed(),
                retained + r.dropped(),
                "pushed != retained + dropped after {total} pushes"
            );
        }
    }

    #[test]
    fn corrupt_slot_is_skipped_and_counted() {
        let r = Ring::new(4);
        for i in 0..3 {
            r.push(&ev(i));
        }
        // Stamp an invalid kind byte into the second slot, as a torn
        // wraparound read would leave behind.
        let slot = WORDS_PER_EVENT;
        let w0 = r.slots[slot].load(Ordering::Relaxed);
        r.slots[slot].store((w0 & !0xFF) | 0xEE, Ordering::Relaxed);
        let snap = r.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.corrupt, 1);
        assert_eq!(snap.events.iter().map(|e| e.start_ns).collect::<Vec<_>>(), vec![0, 2]);
    }
}
