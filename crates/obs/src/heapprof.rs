//! Allocation-site heap profiler.
//!
//! When enabled (`Config::heap_profile`), each engine stamps a
//! thread-local **current site** — the shadow call-stack node plus source
//! line of the statement/instruction executing — before it can allocate;
//! the mark-sweep heap reads it at every allocation and charges per-site
//! counters (allocation count, bytes). The heap also stores the site in
//! each object's header so the sweep can take a **census**: how many
//! objects (and bytes) from each site survived the last collection. Churn
//! vs. live is exactly the distinction that makes a `parallel for` body
//! allocating per iteration visible.
//!
//! Sites are keyed by a packed `node << 32 | line` u64, so recording an
//! allocation is one thread-local read plus one map update under a mutex
//! (acceptable: allocation already serializes on the heap's object list,
//! and the disabled path is a single relaxed atomic load).

use crate::stack;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};

/// Pack a (stack node, line) pair into the site key stored in object
/// headers.
#[inline]
pub fn pack_site(node: u32, line: u32) -> u64 {
    ((node as u64) << 32) | line as u64
}

/// Inverse of [`pack_site`].
#[inline]
pub fn unpack_site(site: u64) -> (u32, u32) {
    ((site >> 32) as u32, (site & 0xFFFF_FFFF) as u32)
}

#[derive(Debug, Default, Clone, Copy)]
struct SiteCounters {
    allocs: u64,
    alloc_bytes: u64,
    live_objects: u64,
    live_bytes: u64,
}

static SITES: Mutex<Option<HashMap<u64, SiteCounters>>> = Mutex::new(None);

thread_local! {
    /// The (node, line) the current thread is executing, packed. For the
    /// VM every virtual thread dispatches on the scheduler's OS thread,
    /// which re-stamps this before each instruction, so it is still
    /// correct at allocation time.
    static CURRENT_SITE: Cell<u64> = const { Cell::new(0) };
}

fn with_sites<T>(f: impl FnOnce(&mut HashMap<u64, SiteCounters>) -> T) -> T {
    let mut guard = SITES.lock().unwrap_or_else(PoisonError::into_inner);
    f(guard.get_or_insert_with(HashMap::new))
}

/// Stamp the calling thread's current allocation site. Engines call this
/// from the statement/instruction prologue when heap profiling is on.
#[inline]
pub fn set_site(node: u32, line: u32) {
    CURRENT_SITE.with(|c| c.set(pack_site(node, line)));
}

/// Charge one allocation of `bytes` to the calling thread's current site
/// and return the packed site for the object's header. Returns 0 (and
/// records nothing) when heap profiling is off.
#[inline]
pub fn record_alloc(bytes: usize) -> u64 {
    if !crate::heap_profile_enabled() {
        return 0;
    }
    let site = CURRENT_SITE.with(|c| c.get());
    with_sites(|sites| {
        let s = sites.entry(site).or_default();
        s.allocs += 1;
        s.alloc_bytes += bytes as u64;
    });
    site
}

/// Record the survivors of one collection: `census` holds
/// `(packed site, live objects, live bytes)` rows gathered during sweep.
/// Replaces the previous census (live-after-*last*-GC).
pub fn record_census(census: &HashMap<u64, (u64, u64)>) {
    if !crate::heap_profile_enabled() {
        return;
    }
    with_sites(|sites| {
        for s in sites.values_mut() {
            s.live_objects = 0;
            s.live_bytes = 0;
        }
        for (site, (objects, bytes)) in census {
            let s = sites.entry(*site).or_default();
            s.live_objects = *objects;
            s.live_bytes = *bytes;
        }
    });
}

/// Clear all site counters (called by `session::begin`).
pub fn reset() {
    *SITES.lock().unwrap_or_else(PoisonError::into_inner) = None;
}

/// One allocation site in a snapshot.
#[derive(Debug, Clone)]
pub struct SiteSnapshot {
    /// Shadow call-stack node of the allocating path.
    pub node: u32,
    /// Source line of the allocating statement.
    pub line: u32,
    /// Total allocations charged to this site.
    pub allocs: u64,
    /// Total bytes charged to this site.
    pub alloc_bytes: u64,
    /// Objects from this site that survived the last collection.
    pub live_objects: u64,
    /// Bytes from this site that survived the last collection.
    pub live_bytes: u64,
}

impl SiteSnapshot {
    /// `function:line` label for the site (leaf frame of the call path).
    pub fn label(&self, names: &[String]) -> String {
        let func = stack::leaf_sym(self.node)
            .and_then(|s| names.get(s as usize).cloned())
            .unwrap_or_else(|| "(toplevel)".to_string());
        format!("{func}:{}", self.line)
    }

    /// Full `;`-joined call path of the site.
    pub fn path(&self, names: &[String]) -> String {
        stack::render(self.node, names)
    }
}

/// A point-in-time copy of the heap profile.
#[derive(Debug, Default, Clone)]
pub struct HeapProfile {
    pub sites: Vec<SiteSnapshot>,
}

impl HeapProfile {
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Sites ordered by bytes surviving the last collection.
    pub fn top_by_live_bytes(&self, n: usize) -> Vec<&SiteSnapshot> {
        let mut rows: Vec<&SiteSnapshot> = self.sites.iter().collect();
        rows.sort_by(|a, b| {
            b.live_bytes.cmp(&a.live_bytes).then(b.alloc_bytes.cmp(&a.alloc_bytes))
        });
        rows.truncate(n);
        rows
    }

    /// Sites ordered by total bytes allocated (churn).
    pub fn top_by_churn(&self, n: usize) -> Vec<&SiteSnapshot> {
        let mut rows: Vec<&SiteSnapshot> = self.sites.iter().collect();
        rows.sort_by(|a, b| b.alloc_bytes.cmp(&a.alloc_bytes).then(b.allocs.cmp(&a.allocs)));
        rows.truncate(n);
        rows
    }
}

/// Copy out the current site table.
pub fn snapshot() -> HeapProfile {
    let guard = SITES.lock().unwrap_or_else(PoisonError::into_inner);
    let sites = guard
        .as_ref()
        .map(|m| {
            let mut rows: Vec<SiteSnapshot> = m
                .iter()
                .map(|(site, s)| {
                    let (node, line) = unpack_site(*site);
                    SiteSnapshot {
                        node,
                        line,
                        allocs: s.allocs,
                        alloc_bytes: s.alloc_bytes,
                        live_objects: s.live_objects,
                        live_bytes: s.live_bytes,
                    }
                })
                .collect();
            rows.sort_by_key(|r| (r.node, r.line));
            rows
        })
        .unwrap_or_default();
    HeapProfile { sites }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_packing_roundtrips() {
        let site = pack_site(0xDEAD, 0xBEEF);
        assert_eq!(unpack_site(site), (0xDEAD, 0xBEEF));
    }

    #[test]
    fn disabled_records_nothing() {
        assert!(!crate::heap_profile_enabled());
        set_site(1, 2);
        assert_eq!(record_alloc(64), 0);
    }
}
