//! Tracing session lifecycle: begin/end, the session clock, ring
//! registration, and string interning.
//!
//! At most one session is active at a time (the CLI runs one program per
//! process; tests serialize via [`begin`]/[`end`]). A generation counter
//! invalidates thread-local ring handles from earlier sessions, so a
//! pooled or long-lived thread never writes into a stale buffer.

use crate::event::{Event, EventKind};
use crate::heapprof;
use crate::metrics;
use crate::ring::{Ring, DEFAULT_EVENTS_PER_THREAD};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Session configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Collect trace events.
    pub trace: bool,
    /// Collect metrics (counters/histograms). Independent of tracing.
    pub metrics: bool,
    /// Attribute heap allocations to (call path, line) sites.
    pub heap_profile: bool,
    /// Ring capacity per thread, in events.
    pub events_per_thread: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            trace: true,
            metrics: true,
            heap_profile: true,
            events_per_thread: DEFAULT_EVENTS_PER_THREAD,
        }
    }
}

struct Active {
    start_ns: u64,
    events_per_thread: usize,
    rings: Vec<Arc<Ring>>,
}

static ACTIVE: Mutex<Option<Active>> = Mutex::new(None);
static GENERATION: AtomicU64 = AtomicU64::new(0);
/// Session start, as nanoseconds since the process epoch. Read on every
/// timestamp; written only by `begin`.
static SESSION_START_NS: AtomicU64 = AtomicU64::new(0);

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

fn epoch_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Nanoseconds since the current session began.
#[inline]
pub fn elapsed_ns() -> u64 {
    epoch_ns().saturating_sub(SESSION_START_NS.load(Ordering::Relaxed))
}

/// Current session generation; bumped by [`begin`] and [`end`].
#[inline]
pub fn generation() -> u64 {
    GENERATION.load(Ordering::Acquire)
}

/// Start a session. Any prior session's unsnapshotted events are
/// discarded.
pub fn begin(config: Config) {
    // A thread that panicked while holding the session lock must not take
    // the whole observability layer down with it; the state it protects
    // stays structurally valid, so recover the guard.
    let mut active = ACTIVE.lock().unwrap_or_else(PoisonError::into_inner);
    GENERATION.fetch_add(1, Ordering::AcqRel);
    SESSION_START_NS.store(epoch_ns(), Ordering::SeqCst);
    metrics::reset();
    heapprof::reset();
    *active = Some(Active {
        start_ns: SESSION_START_NS.load(Ordering::SeqCst),
        events_per_thread: config.events_per_thread.max(16),
        rings: Vec::new(),
    });
    crate::set_enabled(config.trace, config.metrics, config.heap_profile);
}

/// Create and register a ring for the calling thread. Returns `None` when
/// no session is active. Called once per thread per session (slow path of
/// `ring::emit`).
pub fn register_ring() -> Option<Arc<Ring>> {
    let mut active = ACTIVE.lock().unwrap_or_else(PoisonError::into_inner);
    let state = active.as_mut()?;
    let ring = Arc::new(Ring::new(state.events_per_thread));
    state.rings.push(Arc::clone(&ring));
    Some(ring)
}

/// Stop the session and collect everything emitted so far. For an exact
/// snapshot, call after the traced program's threads have been joined.
pub fn end() -> Trace {
    crate::set_enabled(false, false, false);
    GENERATION.fetch_add(1, Ordering::AcqRel);
    let state = ACTIVE.lock().unwrap_or_else(PoisonError::into_inner).take();
    let Some(state) = state else {
        return Trace::default();
    };
    let mut events = Vec::new();
    let mut dropped = 0u64;
    let mut dropped_by_thread: BTreeMap<u32, u64> = BTreeMap::new();
    let mut corrupt = 0u64;
    for ring in &state.rings {
        let ring_dropped = ring.dropped();
        dropped += ring_dropped;
        if ring_dropped > 0 {
            // Attribute this ring's losses to the thread that owns it
            // (first event's tid; exact for the interpreter, where rings
            // map 1:1 to Tetra threads).
            let tid = ring.owner_tid().unwrap_or(0);
            *dropped_by_thread.entry(tid).or_insert(0) += ring_dropped;
        }
        let snap = ring.snapshot();
        corrupt += snap.corrupt;
        events.extend(snap.events);
    }
    events.sort_by_key(|e| (e.start_ns, e.tid));
    Trace {
        events,
        names: interner_names(),
        dropped_events: dropped,
        dropped_by_thread,
        corrupt_events: corrupt,
        duration_ns: epoch_ns().saturating_sub(state.start_ns),
        metrics: metrics::snapshot(),
        heap: heapprof::snapshot(),
    }
}

// ---------------------------------------------------------------------------
// String interning
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Interner {
    map: HashMap<String, u32>,
    names: Vec<String>,
}

static INTERNER: Mutex<Option<Interner>> = Mutex::new(None);

thread_local! {
    /// Per-thread symbol cache so repeated interning of hot names (every
    /// function call, every lock op) skips the global mutex.
    static INTERN_CACHE: std::cell::RefCell<HashMap<String, u32>> =
        std::cell::RefCell::new(HashMap::new());
}

/// Intern `name`, returning a stable symbol valid for the process
/// lifetime.
pub fn intern(name: &str) -> u32 {
    INTERN_CACHE.with(|cache| {
        if let Some(sym) = cache.borrow().get(name) {
            return *sym;
        }
        let mut guard = INTERNER.lock().unwrap_or_else(PoisonError::into_inner);
        let interner = guard.get_or_insert_with(Interner::default);
        let sym = match interner.map.get(name) {
            Some(s) => *s,
            None => {
                let s = interner.names.len() as u32;
                interner.names.push(name.to_string());
                interner.map.insert(name.to_string(), s);
                s
            }
        };
        cache.borrow_mut().insert(name.to_string(), sym);
        sym
    })
}

pub(crate) fn interner_names() -> Vec<String> {
    INTERNER
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
        .map(|i| i.names.clone())
        .unwrap_or_default()
}

// ---------------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------------

/// Everything one session collected: merged, time-sorted events plus the
/// symbol table and metrics snapshot needed to interpret them.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    /// All retained events, sorted by start time.
    pub events: Vec<Event>,
    /// Symbol table; event payloads holding symbols index into this.
    pub names: Vec<String>,
    /// Events lost to ring wraparound across all threads.
    pub dropped_events: u64,
    /// Ring-wraparound losses attributed per Tetra thread (the ring
    /// owner's tid; for the VM all scheduler rings attribute to the first
    /// thread dispatched).
    pub dropped_by_thread: BTreeMap<u32, u64>,
    /// Slots skipped because their kind byte failed to decode (torn
    /// wraparound reads).
    pub corrupt_events: u64,
    /// Wall-clock length of the session.
    pub duration_ns: u64,
    /// Metrics captured at session end.
    pub metrics: metrics::Snapshot,
    /// Allocation-site heap profile captured at session end.
    pub heap: heapprof::HeapProfile,
}

impl Trace {
    /// Resolve an interned symbol.
    pub fn name(&self, sym: u32) -> &str {
        self.names.get(sym as usize).map(String::as_str).unwrap_or("?")
    }

    /// Tetra thread ids present in the trace, with display names taken
    /// from `ThreadSpan` events (falling back to `thread-<id>`).
    pub fn thread_names(&self) -> BTreeMap<u32, String> {
        let mut out = BTreeMap::new();
        for e in &self.events {
            out.entry(e.tid).or_insert_with(|| {
                if e.tid == 0 {
                    "main".to_string()
                } else if e.tid == crate::GC_TID {
                    "gc".to_string()
                } else {
                    format!("thread-{}", e.tid)
                }
            });
        }
        for e in &self.events {
            if e.kind == EventKind::ThreadSpan {
                out.insert(e.tid, self.name(e.a).to_string());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable_and_cached() {
        let a = intern("alpha-session-test");
        let b = intern("beta-session-test");
        assert_ne!(a, b);
        assert_eq!(intern("alpha-session-test"), a);
    }
}
