//! Integration tests for the observability layer: sessions are
//! process-global, so every test that begins one takes `SESSION_GUARD`
//! first (the suite runs tests on parallel threads by default).

use std::sync::{Mutex, MutexGuard};
use tetra_obs::{chrome, profile, session, EventKind};

static SESSION_GUARD: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    SESSION_GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn disabled_mode_emits_nothing() {
    let _guard = exclusive();
    // No session: every emission must be a no-op.
    assert!(!tetra_obs::enabled());
    tetra_obs::stmt(0, 1, tetra_obs::stack::ROOT);
    tetra_obs::call(0, "f", 1, 0, tetra_obs::stack::ROOT);
    tetra_obs::thread_span(1, "t", 0);
    tetra_obs::lock_wait(0, "l", 2, 0, tetra_obs::stack::ROOT);
    tetra_obs::lock_hold(0, "l", 0, tetra_obs::stack::ROOT);
    tetra_obs::gc_phase(tetra_obs::GC_TID, tetra_obs::GcPhase::Pause, 1, 0, 0);
    tetra_obs::vm_dispatch(0, 256, 0, tetra_obs::stack::ROOT);
    tetra_obs::metrics::counter_add("c", 1);
    // Heap profiling off: allocations are not attributed to any site.
    assert!(!tetra_obs::heap_profile_enabled());
    assert!(!tetra_obs::attribution_enabled());
    assert_eq!(tetra_obs::heapprof::record_alloc(64), 0);
    // A session started afterwards must see none of it.
    session::begin(session::Config::default());
    let trace = session::end();
    assert!(trace.events.is_empty(), "pre-session events leaked: {:?}", trace.events);
    assert!(trace.metrics.counters.is_empty());
}

#[test]
fn concurrent_emit_from_many_threads() {
    let _guard = exclusive();
    const THREADS: u32 = 4;
    const EVENTS_PER_THREAD: u32 = 500;
    session::begin(session::Config::default());
    let handles: Vec<_> = (1..=THREADS)
        .map(|tid| {
            std::thread::spawn(move || {
                let start = tetra_obs::now_ns();
                for i in 0..EVENTS_PER_THREAD {
                    tetra_obs::stmt(tid, i + 1, tetra_obs::stack::ROOT);
                }
                tetra_obs::thread_span(tid, &format!("worker-{tid}"), start);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let trace = session::end();
    assert_eq!(trace.dropped_events, 0);
    for tid in 1..=THREADS {
        let stmts =
            trace.events.iter().filter(|e| e.tid == tid && e.kind == EventKind::Stmt).count();
        assert_eq!(stmts, EVENTS_PER_THREAD as usize, "thread {tid} lost events");
    }
    // end() sorts the merged stream by start time.
    assert!(trace.events.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
}

#[test]
fn chrome_export_has_one_track_per_tetra_thread() {
    let _guard = exclusive();
    session::begin(session::Config::default());
    let t0 = tetra_obs::now_ns();
    tetra_obs::call(0, "main", 1, t0, tetra_obs::stack::ROOT);
    tetra_obs::thread_span(0, "main", t0);
    tetra_obs::thread_span(1, "parallel-1", t0);
    tetra_obs::thread_span(2, "parallel-2", t0);
    tetra_obs::gc_phase(tetra_obs::GC_TID, tetra_obs::GcPhase::Pause, 1, t0, 0);
    let trace = session::end();
    let json = chrome::export(&trace);

    // Shape: Perfetto/chrome://tracing object form with a traceEvents array.
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.trim_end().ends_with('}'), "{json}");
    // One thread_name metadata record per Tetra thread, including the
    // synthetic GC track, each with a distinct tid.
    for name in ["\"main\"", "\"parallel-1\"", "\"parallel-2\"", "\"gc\""] {
        assert!(json.contains(name), "missing thread name {name} in {json}");
    }
    let meta_count = json.matches("\"thread_name\"").count();
    assert_eq!(meta_count, 4, "expected 4 thread_name records: {json}");
    for tid in ["\"tid\":0", "\"tid\":1", "\"tid\":2"] {
        assert!(json.contains(tid), "missing {tid} in {json}");
    }
    // Every event row is a complete span with microsecond timestamps.
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"ts\":"));
}

#[test]
fn profile_report_covers_locks_and_gc() {
    let _guard = exclusive();
    session::begin(session::Config::default());
    let t0 = tetra_obs::now_ns();
    tetra_obs::stmt(0, 3, tetra_obs::stack::ROOT);
    tetra_obs::lock_wait(0, "counter", 3, t0, tetra_obs::stack::ROOT);
    tetra_obs::lock_hold(0, "counter", t0, tetra_obs::stack::ROOT);
    tetra_obs::gc_phase(tetra_obs::GC_TID, tetra_obs::GcPhase::Pause, 1, t0, 0);
    let trace = session::end();
    let report = profile::report(&trace, None);
    assert!(report.contains("lock contention"), "{report}");
    assert!(report.contains("counter"), "{report}");
    assert!(report.contains("gc pauses"), "{report}");
}

#[test]
fn ring_wraparound_is_bounded_and_keeps_newest() {
    let _guard = exclusive();
    let capacity = 64;
    session::begin(session::Config { events_per_thread: capacity, ..session::Config::default() });
    let total = capacity as u32 * 3;
    for i in 0..total {
        tetra_obs::stmt(0, i + 1, tetra_obs::stack::ROOT);
    }
    let trace = session::end();
    assert_eq!(trace.events.len(), capacity, "ring must cap at its capacity");
    assert_eq!(trace.dropped_events, (total as usize - capacity) as u64);
    // Drops are attributed to the thread that owned the ring.
    assert_eq!(trace.dropped_by_thread.get(&0).copied(), Some(trace.dropped_events));
    // Survivors are exactly the newest `capacity` events, oldest first.
    let lines: Vec<u32> = trace.events.iter().map(|e| e.a).collect();
    let expected: Vec<u32> = (total - capacity as u32 + 1..=total).collect();
    assert_eq!(lines, expected);
}
