//! Eraser-style lockset race detection.
//!
//! Tetra exists to teach students about race conditions (paper §II/§III:
//! stepping threads helps "discover race conditions"). The detector
//! automates the discovery: it watches every shared read/write event and
//! applies the classic Eraser state machine (Savage et al., 1997):
//!
//! ```text
//! Virgin ──first access──▶ Exclusive(t)
//! Exclusive(t) ──access by u≠t──▶ Shared (read) / SharedModified (write)
//! Shared/SharedModified: candidate lockset ∩= locks held at the access
//! SharedModified with an empty lockset ⇒ data race
//! ```
//!
//! Locations are either named variables in a specific frame or whole heap
//! objects (array/dict element granularity is the object, which is the
//! right teaching granularity: "this array is shared without a lock").

use std::collections::{BTreeSet, HashMap, HashSet};
use tetra_intern::Symbol;
use tetra_interp::hooks::Loc;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    Exclusive(u32),
    Shared,
    SharedModified,
}

#[derive(Debug, Clone)]
struct VarState {
    phase: Phase,
    /// Candidate lockset (None until the variable becomes shared).
    lockset: Option<BTreeSet<Symbol>>,
    name: String,
}

/// A reported data race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// Source-level name (or `[element]` for container contents).
    pub name: String,
    /// Line of the access that emptied the lockset.
    pub line: u32,
    /// Thread performing that access.
    pub thread: u32,
    pub message: String,
}

/// The detector. Feed it every Read/Write event plus thread start/end
/// events (the latter give it a lightweight happens-before edge: when a
/// thread runs *alone* — e.g. main after joining a parallel block — its
/// accesses cannot race, avoiding Eraser's classic after-join false
/// positive).
#[derive(Default)]
pub struct LocksetDetector {
    vars: HashMap<Loc, VarState>,
    reported: HashSet<Loc>,
    reports: Vec<RaceReport>,
    live: HashSet<u32>,
}

impl LocksetDetector {
    pub fn new() -> LocksetDetector {
        LocksetDetector::default()
    }

    pub fn on_thread_start(&mut self, thread: u32) {
        self.live.insert(thread);
    }

    pub fn on_thread_end(&mut self, thread: u32) {
        self.live.remove(&thread);
    }

    pub fn on_access(
        &mut self,
        loc: &Loc,
        name: &str,
        thread: u32,
        line: u32,
        held: &[Symbol],
        is_write: bool,
    ) {
        self.live.insert(thread);
        if self.live.len() <= 1 {
            // The accessing thread runs alone: everything it touches is
            // (re-)owned by it — the join happens-before edge.
            self.vars.insert(
                *loc,
                VarState { phase: Phase::Exclusive(thread), lockset: None, name: name.to_string() },
            );
            return;
        }
        let state = self.vars.entry(*loc).or_insert_with(|| VarState {
            phase: Phase::Exclusive(thread),
            lockset: None,
            name: name.to_string(),
        });
        match state.phase.clone() {
            Phase::Exclusive(owner) if owner == thread => {
                // Still single-threaded: nothing to check.
            }
            Phase::Exclusive(_) => {
                // Second thread arrives: initialize the candidate lockset.
                state.phase = if is_write { Phase::SharedModified } else { Phase::Shared };
                state.lockset = Some(held.iter().cloned().collect());
            }
            Phase::Shared => {
                if is_write {
                    state.phase = Phase::SharedModified;
                }
                Self::intersect(state, held);
            }
            Phase::SharedModified => {
                Self::intersect(state, held);
            }
        }
        if state.phase == Phase::SharedModified
            && state.lockset.as_ref().is_some_and(|l| l.is_empty())
            && !self.reported.contains(loc)
        {
            self.reported.insert(*loc);
            let kind = if is_write { "written" } else { "read" };
            self.reports.push(RaceReport {
                name: state.name.clone(),
                line,
                thread,
                message: format!(
                    "possible data race: `{}` is {kind} by thread {thread} at line {line} \
                     with no lock consistently protecting it",
                    state.name
                ),
            });
        }
    }

    fn intersect(state: &mut VarState, held: &[Symbol]) {
        if let Some(lockset) = &mut state.lockset {
            lockset.retain(|l| held.contains(l));
        }
    }

    pub fn reports(&self) -> Vec<RaceReport> {
        self.reports.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var_loc() -> Loc {
        Loc::Frame(0x1000, 0)
    }

    #[test]
    fn single_thread_access_is_never_a_race() {
        let mut d = LocksetDetector::new();
        for i in 0..100 {
            d.on_access(&var_loc(), "counter", 0, i, &[], true);
        }
        assert!(d.reports().is_empty());
    }

    #[test]
    fn unlocked_shared_write_is_a_race() {
        let mut d = LocksetDetector::new();
        d.on_access(&var_loc(), "counter", 0, 3, &[], true);
        d.on_access(&var_loc(), "counter", 1, 5, &[], true);
        let reports = d.reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].name, "counter");
        assert_eq!(reports[0].line, 5);
        assert!(reports[0].message.contains("data race"));
    }

    #[test]
    fn consistently_locked_access_is_clean() {
        let mut d = LocksetDetector::new();
        let m: Vec<Symbol> = vec!["m".into()];
        d.on_access(&var_loc(), "counter", 0, 3, &m, true);
        d.on_access(&var_loc(), "counter", 1, 5, &m, true);
        d.on_access(&var_loc(), "counter", 2, 5, &m, false);
        assert!(d.reports().is_empty());
    }

    #[test]
    fn inconsistent_locks_are_a_race() {
        // Eraser semantics: the candidate lockset starts at the *second*
        // thread's access ({b}), so the race surfaces on the third access
        // when {b} ∩ {a} becomes empty.
        let mut d = LocksetDetector::new();
        d.on_thread_start(0);
        d.on_thread_start(1);
        d.on_access(&var_loc(), "counter", 0, 3, &["a".into()], true);
        d.on_access(&var_loc(), "counter", 1, 5, &["b".into()], true);
        assert!(d.reports().is_empty(), "not yet provably inconsistent");
        d.on_access(&var_loc(), "counter", 0, 7, &["a".into()], true);
        assert_eq!(d.reports().len(), 1);
    }

    #[test]
    fn after_join_reads_are_not_flagged() {
        let mut d = LocksetDetector::new();
        d.on_thread_start(0);
        d.on_thread_start(1);
        // Properly locked sharing while both threads live.
        d.on_access(&var_loc(), "counter", 0, 3, &["m".into()], true);
        d.on_access(&var_loc(), "counter", 1, 3, &["m".into()], true);
        // Worker finishes; main reads without the lock — fine after a join.
        d.on_thread_end(1);
        d.on_access(&var_loc(), "counter", 0, 9, &[], false);
        assert!(d.reports().is_empty(), "{:?}", d.reports());
    }

    #[test]
    fn shared_read_only_is_clean() {
        let mut d = LocksetDetector::new();
        d.on_access(&var_loc(), "counter", 0, 3, &[], true); // init by one thread
        d.on_access(&var_loc(), "counter", 1, 5, &[], false);
        d.on_access(&var_loc(), "counter", 2, 5, &[], false);
        assert!(d.reports().is_empty(), "read-sharing after init is the Eraser exception");
    }

    #[test]
    fn race_reported_once_per_location() {
        let mut d = LocksetDetector::new();
        d.on_access(&var_loc(), "counter", 0, 3, &[], true);
        for i in 0..10 {
            d.on_access(&var_loc(), "counter", 1, 5 + i, &[], true);
        }
        assert_eq!(d.reports().len(), 1);
    }

    #[test]
    fn distinct_locations_are_tracked_separately() {
        let mut d = LocksetDetector::new();
        let a = Loc::Frame(0x1, 0);
        let b = Loc::Obj(0x2);
        d.on_access(&a, "x", 0, 1, &[], true);
        d.on_access(&b, "[element]", 0, 2, &[], true);
        d.on_access(&a, "x", 1, 3, &[], true);
        d.on_access(&b, "[element]", 1, 4, &[], true);
        assert_eq!(d.reports().len(), 2);
    }

    #[test]
    fn double_checked_lock_pattern_is_flagged_on_the_unlocked_read() {
        // Fig. III's pattern: unlocked read, then locked re-check + write.
        // Eraser flags the unlocked read of `largest` — a true (benign-by-
        // design) race the paper itself discusses; great teaching output.
        let mut d = LocksetDetector::new();
        let m: Vec<Symbol> = vec!["largest".into()];
        d.on_access(&var_loc(), "largest", 1, 4, &[], false); // unlocked read
        d.on_access(&var_loc(), "largest", 2, 4, &[], false); // unlocked read
        d.on_access(&var_loc(), "largest", 1, 7, &m, true); // locked write
        let reports = d.reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].name, "largest");
    }
}
