//! Thread-timeline rendering: the textual version of the IDE's
//! "visualizing program execution across multiple threads" (paper abstract).
//!
//! Events are laid out in columns, one per thread, in the order they were
//! recorded:
//!
//! ```text
//! T0 (main)           | T1 (parallel)       | T2 (parallel)
//! line 12             |                     |
//! spawned T1          |                     |
//! spawned T2          |                     |
//!                     | line 5              |
//!                     |                     | line 5
//!                     | lock `largest` ✓    |
//! ```

use std::collections::BTreeMap;
use std::fmt::Write;
use tetra_interp::hooks::ExecEvent;

const COL_WIDTH: usize = 22;

/// Short cell text for one event.
fn cell(ev: &ExecEvent) -> String {
    match ev {
        ExecEvent::ThreadStart { parent: Some(p), .. } => format!("started by T{p}"),
        ExecEvent::ThreadStart { .. } => "started".to_string(),
        ExecEvent::ThreadEnd { .. } => "finished".to_string(),
        ExecEvent::Statement { line, .. } => format!("line {line}"),
        ExecEvent::LockWait { name, .. } => format!("wait lock `{name}`"),
        ExecEvent::LockAcquired { name, .. } => format!("lock `{name}` ✓"),
        ExecEvent::LockReleased { name, .. } => format!("unlock `{name}`"),
        ExecEvent::Read { name, .. } => format!("read {name}"),
        ExecEvent::Write { name, .. } => format!("write {name}"),
    }
}

/// Render events into a column-per-thread timeline.
pub fn render(events: &[ExecEvent]) -> String {
    // Column order: first appearance.
    let mut columns: BTreeMap<u32, usize> = BTreeMap::new();
    let mut kinds: BTreeMap<u32, String> = BTreeMap::new();
    for ev in events {
        let id = ev.thread();
        let next = columns.len();
        columns.entry(id).or_insert(next);
        if let ExecEvent::ThreadStart { kind, .. } = ev {
            kinds.insert(id, kind.label().to_string());
        }
    }
    if columns.is_empty() {
        return String::from("(no events recorded)\n");
    }
    let ncols = columns.len();
    let mut out = String::new();
    // Header.
    let mut header: Vec<String> = vec![String::new(); ncols];
    for (id, col) in &columns {
        let kind = kinds.get(id).cloned().unwrap_or_else(|| "main".to_string());
        header[*col] = format!("T{id} ({kind})");
    }
    writeln!(
        out,
        "{}",
        header.iter().map(|h| format!("{h:<COL_WIDTH$}")).collect::<Vec<_>>().join("| ")
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat((COL_WIDTH + 2) * ncols)).unwrap();
    // Rows.
    for ev in events {
        let col = columns[&ev.thread()];
        let mut row: Vec<String> = vec![String::new(); ncols];
        let mut text = cell(ev);
        text.truncate(COL_WIDTH);
        row[col] = text;
        writeln!(
            out,
            "{}",
            row.iter().map(|c| format!("{c:<COL_WIDTH$}")).collect::<Vec<_>>().join("| ")
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tetra_runtime::ThreadKind;

    #[test]
    fn renders_columns_per_thread() {
        let events = vec![
            ExecEvent::ThreadStart { id: 0, kind: ThreadKind::Main, parent: None, line: 1 },
            ExecEvent::Statement { id: 0, line: 2 },
            ExecEvent::ThreadStart { id: 1, kind: ThreadKind::Parallel, parent: Some(0), line: 3 },
            ExecEvent::Statement { id: 1, line: 4 },
            ExecEvent::LockAcquired { id: 1, name: "m".into(), line: 5 },
            ExecEvent::ThreadEnd { id: 1 },
        ];
        let text = render(&events);
        assert!(text.contains("T0 (main)"), "{text}");
        assert!(text.contains("T1 (parallel)"), "{text}");
        assert!(text.contains("lock `m`"), "{text}");
        // T1's events are in the second column (indented past col 1).
        let line4_row = text.lines().find(|l| l.contains("line 4")).unwrap();
        assert!(line4_row.find("line 4").unwrap() >= COL_WIDTH, "{text}");
    }

    #[test]
    fn empty_events_render_placeholder() {
        assert!(render(&[]).contains("no events"));
    }
}
