//! # tetra-debugger
//!
//! The parallel debugging engine behind the paper's IDE (§III):
//!
//! * [`Debugger`] — pause, **step each thread independently**, resume,
//!   breakpoints, and per-thread variable inspection, driven from any
//!   controller thread while the program runs under `tetra-interp`;
//! * [`race::LocksetDetector`] — Eraser-style data race detection over the
//!   interpreter's read/write events, so students *see* the race Fig. III
//!   guards against;
//! * [`timeline::render`] — a column-per-thread execution timeline, the
//!   textual form of the IDE's multi-thread visualization.

pub mod engine;
pub mod race;
pub mod timeline;

pub use engine::{Debugger, PausedThread};
pub use race::RaceReport;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;
    use tetra_interp::{Interp, InterpConfig};
    use tetra_runtime::BufferConsole;

    fn make_interp(src: &str, dbg: &Arc<Debugger>) -> (Interp, Arc<BufferConsole>) {
        let typed = tetra_types::check(tetra_parser::parse(src).unwrap()).unwrap();
        let console = BufferConsole::new();
        let interp = Interp::with_hook(
            typed,
            InterpConfig { worker_threads: 2, ..InterpConfig::default() },
            console.clone(),
            dbg.clone(),
        );
        (interp, console)
    }

    const TIMEOUT: Duration = Duration::from_secs(20);

    #[test]
    fn breakpoint_pauses_and_inspects_locals() {
        let src = "\
def main():
    x = 1
    y = x + 10
    print(y)
";
        let dbg = Debugger::new(false);
        dbg.set_breakpoint(3);
        let (interp, console) = make_interp(src, &dbg);
        let handle = std::thread::spawn(move || interp.run());
        assert!(
            dbg.wait_until(TIMEOUT, |paused| paused.iter().any(|p| p.line == 3)),
            "breakpoint never hit"
        );
        let paused = dbg.paused();
        let p = paused.iter().find(|p| p.line == 3).unwrap();
        // Stopped *before* line 3 runs: x is set, y is not.
        assert!(p.locals.iter().any(|(n, v)| n == "x" && v == "1"), "{:?}", p.locals);
        assert!(!p.locals.iter().any(|(n, _)| n == "y"), "{:?}", p.locals);
        assert_eq!(console.output(), "", "output before the breakpoint line");
        dbg.resume(p.thread);
        handle.join().unwrap().unwrap();
        assert_eq!(console.output(), "11\n");
    }

    #[test]
    fn start_paused_stops_main_at_first_statement() {
        let src = "def main():\n    print(\"never yet\")\n";
        let dbg = Debugger::new(true);
        let (interp, console) = make_interp(src, &dbg);
        let handle = std::thread::spawn(move || interp.run());
        assert!(dbg.wait_until(TIMEOUT, |p| !p.is_empty()));
        assert_eq!(console.output(), "");
        dbg.resume_all();
        handle.join().unwrap().unwrap();
        assert_eq!(console.output(), "never yet\n");
    }

    #[test]
    fn per_thread_independent_stepping() {
        // Two parallel children count in their own loops; we step ONE of
        // them several statements while the other stays frozen — the
        // capability the paper's IDE design centers on (§III).
        let src = "\
def count(out [int], slot int):
    i = 0
    while i < 5:
        i += 1
        out[slot] = i

def main():
    out = [0, 0]
    parallel:
        count(out, 0)
        count(out, 1)
    print(out)
";
        let dbg = Debugger::new(true);
        let (interp, console) = make_interp(src, &dbg);
        let handle = std::thread::spawn(move || interp.run());

        // Main pauses first; step it until both children exist and pause.
        assert!(dbg.wait_until(TIMEOUT, |p| !p.is_empty()), "main never paused");
        // Drive main until the parallel block spawns children. Main will
        // block joining; children pause at their first statements.
        let main_id = dbg.paused()[0].thread;
        for _ in 0..10 {
            dbg.step(main_id);
            if dbg.wait_until(Duration::from_millis(400), |p| {
                p.iter().filter(|t| t.thread != main_id).count() == 2
            }) {
                break;
            }
        }
        assert!(
            dbg.wait_until(TIMEOUT, |p| p.iter().filter(|t| t.thread != main_id).count() == 2),
            "children never paused: {:?}",
            dbg.paused()
        );
        let children: Vec<u32> =
            dbg.paused().iter().map(|p| p.thread).filter(|t| *t != main_id).collect();
        let (walked, frozen) = (children[0], children[1]);

        // Step `walked` through several statements; `frozen` must not move.
        let frozen_line_before = dbg.paused().iter().find(|p| p.thread == frozen).unwrap().line;
        let mut seen_lines = Vec::new();
        for _ in 0..4 {
            dbg.step(walked);
            assert!(
                dbg.wait_until(TIMEOUT, |p| p.iter().any(|t| t.thread == walked)),
                "stepped thread did not pause again"
            );
            seen_lines.push(dbg.paused().iter().find(|p| p.thread == walked).unwrap().line);
        }
        assert!(seen_lines.windows(2).any(|w| w[0] != w[1]), "stepping moved: {seen_lines:?}");
        let frozen_line_after = dbg.paused().iter().find(|p| p.thread == frozen).unwrap().line;
        assert_eq!(frozen_line_before, frozen_line_after, "frozen thread moved!");

        dbg.resume_all();
        handle.join().unwrap().unwrap();
        assert_eq!(console.output(), "[5, 5]\n");
    }

    #[test]
    fn stepping_shows_loop_variable_progress() {
        let src = "\
def main():
    total = 0
    for i in [1, 2, 3]:
        total += i
    print(total)
";
        let dbg = Debugger::new(true);
        let (interp, _console) = make_interp(src, &dbg);
        let handle = std::thread::spawn(move || interp.run());
        assert!(dbg.wait_until(TIMEOUT, |p| !p.is_empty()));
        let tid = dbg.paused()[0].thread;
        let mut seen_totals = Vec::new();
        for _ in 0..12 {
            if let Some(p) = dbg.paused().iter().find(|p| p.thread == tid) {
                if let Some((_, v)) = p.locals.iter().find(|(n, _)| n == "total") {
                    seen_totals.push(v.clone());
                }
            } else {
                break;
            }
            dbg.step(tid);
            if !dbg.wait_until(Duration::from_secs(5), |p| p.iter().any(|t| t.thread == tid)) {
                break; // program finished
            }
        }
        handle.join().unwrap().unwrap();
        assert!(seen_totals.contains(&"0".to_string()), "{seen_totals:?}");
        assert!(seen_totals.contains(&"3".to_string()), "{seen_totals:?}");
    }

    #[test]
    fn watchpoint_pauses_the_writing_thread() {
        let src = "\
def main():
    a = 1
    b = 2
    total = a + b
    c = 9
    print(total + c)
";
        let dbg = Debugger::new(false);
        dbg.watch("total");
        let (interp, console) = make_interp(src, &dbg);
        let handle = std::thread::spawn(move || interp.run());
        assert!(dbg.wait_until(TIMEOUT, |p| !p.is_empty()), "watch never paused the thread");
        let hits = dbg.watch_hits();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].1, "total");
        assert_eq!(hits[0].2, 4, "write happens on line 4");
        // The pause lands AFTER the write: total is visible with its value.
        let paused = dbg.paused();
        assert!(
            paused[0].locals.iter().any(|(n, v)| n == "total" && v == "3"),
            "{:?}",
            paused[0].locals
        );
        dbg.resume_all();
        handle.join().unwrap().unwrap();
        assert_eq!(console.output(), "12\n");
    }

    #[test]
    fn watchpoints_catch_cross_thread_writers() {
        let src = "\
def main():
    shared = 0
    parallel:
        shared = 10
    print(shared)
";
        let dbg = Debugger::new(false);
        dbg.watch("shared");
        let (interp, _console) = make_interp(src, &dbg);
        let handle = std::thread::spawn(move || interp.run());
        // Both main's initialization and the child's write are hits; keep
        // resuming pauses until the cross-thread hit arrives.
        let deadline = std::time::Instant::now() + TIMEOUT;
        while !dbg.watch_hits().iter().any(|(tid, _, _)| *tid != 0) {
            assert!(std::time::Instant::now() < deadline, "{:?}", dbg.watch_hits());
            dbg.wait_until(Duration::from_millis(100), |p| !p.is_empty());
            dbg.resume_all();
        }
        dbg.unwatch("shared");
        dbg.resume_all();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn stop_cancels_the_program() {
        let src = "\
def main():
    i = 0
    while true:
        i += 1
";
        let dbg = Debugger::new(false);
        let (interp, _console) = make_interp(src, &dbg);
        let dbg2 = dbg.clone();
        let handle = std::thread::spawn(move || interp.run());
        std::thread::sleep(Duration::from_millis(50));
        dbg2.stop();
        let err = handle.join().unwrap().unwrap_err();
        assert_eq!(err.kind, tetra_runtime::ErrorKind::Cancelled);
    }

    #[test]
    fn race_detector_flags_unlocked_counter() {
        let src = "\
def main():
    count = 0
    parallel for i in [1 ... 50]:
        count += 1
    print(count)
";
        let dbg = Debugger::tracer();
        let (interp, _console) = make_interp(src, &dbg);
        // Result may be racy; we only care about detection.
        let _ = interp.run();
        let races = dbg.races();
        assert!(races.iter().any(|r| r.name == "count"), "expected a race on `count`: {races:?}");
    }

    #[test]
    fn race_detector_quiet_on_locked_counter() {
        let src = "\
def main():
    count = 0
    parallel for i in [1 ... 50]:
        lock c:
            count += 1
    print(count)
";
        let dbg = Debugger::tracer();
        let (interp, console) = make_interp(src, &dbg);
        interp.run().unwrap();
        assert_eq!(console.output(), "50\n");
        let races: Vec<_> = dbg.races().into_iter().filter(|r| r.name == "count").collect();
        assert!(races.is_empty(), "locked counter flagged: {races:?}");
    }

    #[test]
    fn race_detector_flags_unlocked_array_element_writes() {
        // Both workers hammer the same element with no lock.
        let src = "\
def main():
    a = [0]
    parallel for i in [1 ... 40]:
        a[0] += 1
    print(len(a))
";
        let dbg = Debugger::tracer();
        let (interp, _console) = make_interp(src, &dbg);
        let _ = interp.run();
        assert!(
            dbg.races().iter().any(|r| r.name == "[element]"),
            "expected an element race: {:?}",
            dbg.races()
        );
    }

    #[test]
    fn timeline_records_paper_figure_3() {
        let src = "\
def max(nums [int]) int:
    largest = 0
    parallel for num in nums:
        if num > largest:
            lock largest:
                if num > largest:
                    largest = num
    return largest

def main():
    print(max([18, 32, 96, 48, 60]))
";
        let dbg = Debugger::tracer();
        let (interp, console) = make_interp(src, &dbg);
        interp.run().unwrap();
        assert_eq!(console.output(), "96\n");
        let events = dbg.events();
        let text = timeline::render(&events);
        assert!(text.contains("T0 (main)"), "{text}");
        assert!(text.contains("parallel-for"), "{text}");
        assert!(text.contains("lock `largest`"), "{text}");
    }

    #[test]
    fn events_include_thread_lifecycle() {
        let src = "\
def main():
    parallel:
        pass
        pass
";
        let dbg = Debugger::tracer();
        let (interp, _console) = make_interp(src, &dbg);
        interp.run().unwrap();
        let events = dbg.events();
        use tetra_interp::hooks::ExecEvent;
        let starts = events.iter().filter(|e| matches!(e, ExecEvent::ThreadStart { .. })).count();
        let ends = events.iter().filter(|e| matches!(e, ExecEvent::ThreadEnd { .. })).count();
        assert_eq!(starts, 2, "two parallel children");
        assert_eq!(ends, 3, "two children + main finish events");
    }
}
